//! Time-ordered event queues behind the kernel's scheduling core.
//!
//! The shipping structure is [`TimeWheel`], a hierarchical timer wheel:
//! near-future entries live in a bucketed wheel of power-of-two slots
//! (64 slots per level, 2^23 fs ≈ 8.4 ns level-0 slot width), each
//! coarser level covering 64× the span of the one below, and entries
//! beyond the whole wheel horizon (≈ 141 ms of simulated time ahead of
//! the wheel origin) park in an unordered overflow list with a cached
//! minimum. Insertion and removal are O(1); advancing time re-files
//! ("cascades") the coarse slot containing the new origin into finer
//! levels, which amortizes to O(1) per entry because every entry
//! cascades at most once per level.
//!
//! Determinism contract: entries are keyed `(at, seq)` exactly like the
//! binary heaps this module replaces, due entries are drained per
//! instant and sorted by that key, so pop order — and therefore every
//! downstream observable — is bit-identical to the heap kernel.
//!
//! [`HeapQueues`] is the retired binary-heap implementation (lazy timer
//! cancellation, tombstone purges at the top). It is kept only as a
//! differential oracle for tests and as the ablation baseline for the
//! `beat_storm` benchmark; the wheel is the one shipping path.

use crate::kernel::{ProcessId, SimStats};
use crate::signal::SignalId;
use crate::time::SimTime;
use cosma_core::Value;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Level-0 slot width: `2^SLOT_SHIFT` femtoseconds (≈ 8.4 ns).
const SLOT_SHIFT: u32 = 23;
/// log2 of the slots per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel levels. Level `l` slots span `2^(SLOT_SHIFT + 6l)` fs, so the
/// whole wheel covers `2^(SLOT_SHIFT + 6·LEVELS)` fs ≈ 141 ms beyond
/// the origin; anything farther parks in the overflow list.
const LEVELS: usize = 4;
/// `timer_loc` level marker for entries parked in the overflow list.
const OVERFLOW_LEVEL: u8 = LEVELS as u8;
/// Floor for slot-vector growth (entries). See [`TimeWheel::insert`].
const MIN_SLOT_CAP: usize = 32;

/// What a scheduled entry does when its instant arrives.
#[derive(Debug, Clone)]
pub(crate) enum EntryKind {
    /// Apply `value` to `sig` (a timed drive, `sig <= v after d`).
    Drive {
        /// Target signal.
        sig: SignalId,
        /// Value to apply.
        value: Value,
    },
    /// Wake a process (`wait for d`), valid while its token matches.
    Timer {
        /// Process to wake.
        pid: ProcessId,
        /// Arm token recorded at insert; the heap backend validates it
        /// lazily, the wheel removes entries eagerly so it always
        /// matches there.
        token: u64,
    },
}

/// One scheduled entry, totally ordered by `(at, seq)`.
#[derive(Debug, Clone)]
pub(crate) struct QueueEntry {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EntryKind,
}

/// Where a process's armed timer entry currently lives, for O(1)
/// cancellation. `level == OVERFLOW_LEVEL` means the overflow list
/// (`slot` unused).
#[derive(Debug, Clone, Copy)]
struct TimerLoc {
    level: u8,
    slot: u8,
    idx: u32,
}

/// One wheel slot: its entries plus a cached `(at, seq)` minimum.
/// `min` is `Some` only when it is known-exact; removal of the cached
/// minimum dirties it (`None`) and the next query recomputes it.
#[derive(Debug, Default)]
struct Slot {
    entries: Vec<QueueEntry>,
    min: Option<(SimTime, u64)>,
}

/// One wheel level: 64 slots and an occupancy bitmap (bit `i` set iff
/// slot `i` is non-empty), so the first occupied slot at or beyond the
/// origin is a mask-and-`trailing_zeros` away.
#[derive(Debug)]
struct WheelLevel {
    occupied: u64,
    slots: Vec<Slot>,
}

impl WheelLevel {
    fn new() -> Self {
        WheelLevel {
            occupied: 0,
            // Pre-size every slot vector: traffic drifts across slots
            // as the cursor laps, so a "virgin" slot's first touch can
            // land arbitrarily deep into a run — long after any warm-up
            // — and a first-touch reservation there would break the
            // zero-allocation steady state. ~393KB per simulator.
            slots: (0..SLOTS)
                .map(|_| Slot {
                    entries: Vec::with_capacity(MIN_SLOT_CAP),
                    min: None,
                })
                .collect(),
        }
    }
}

/// The hierarchical timer wheel. See the module docs for the layout and
/// the determinism contract.
///
/// # Invariants
///
/// * Every stored entry satisfies `at >= pos` (the origin).
/// * An entry files at the level of the highest bit (above
///   `SLOT_SHIFT`) where its time differs from `pos`; consequently a
///   level-`l ≥ 1` entry shares the origin's level-`l+1` superslot and
///   its slot index is strictly greater than the origin's, so the
///   per-level "first occupied slot" scan never wraps.
/// * The kernel only advances the origin to the exact global minimum
///   (`next_at`), so slots between the old and new origin are empty and
///   a cascade only ever drains the one slot containing the new origin
///   per level; re-filed entries provably land at a finer level.
/// * Timers are removed eagerly on cancellation via their recorded
///   `(level, slot, idx)` — the wheel never holds tombstones.
#[derive(Debug)]
pub(crate) struct TimeWheel {
    levels: Vec<WheelLevel>,
    /// Entries beyond the wheel horizon, unordered.
    overflow: Vec<QueueEntry>,
    /// Cached overflow minimum; `None` = dirty or empty.
    overflow_min: Option<(SimTime, u64)>,
    /// Wheel origin in femtoseconds.
    pos: u64,
    /// Per-process location of its armed timer entry, indexed by
    /// process id.
    timer_loc: Vec<Option<TimerLoc>>,
    /// Recycled scratch for cascade drains and overflow re-ingest.
    cascade_buf: Vec<QueueEntry>,
    /// Total stored entries.
    len: usize,
}

impl TimeWheel {
    pub(crate) fn new() -> Self {
        TimeWheel {
            levels: (0..LEVELS).map(|_| WheelLevel::new()).collect(),
            overflow: vec![],
            overflow_min: None,
            pos: 0,
            timer_loc: vec![],
            cascade_buf: vec![],
            len: 0,
        }
    }

    /// The `(level, slot)` an instant files under, relative to the
    /// current origin, or `None` when it lies beyond the wheel horizon.
    fn level_and_slot(&self, at_fs: u64) -> Option<(usize, usize)> {
        let x = (at_fs >> SLOT_SHIFT) ^ (self.pos >> SLOT_SHIFT);
        let level = if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / LEVEL_BITS) as usize
        };
        if level >= LEVELS {
            return None;
        }
        let shift = SLOT_SHIFT + LEVEL_BITS * level as u32;
        Some((level, ((at_fs >> shift) & (SLOTS as u64 - 1)) as usize))
    }

    fn set_timer_loc(&mut self, pid: ProcessId, loc: TimerLoc) {
        let i = pid.index();
        if self.timer_loc.len() <= i {
            self.timer_loc.resize(i + 1, None);
        }
        self.timer_loc[i] = Some(loc);
    }

    pub(crate) fn insert(&mut self, e: QueueEntry, stats: &mut SimStats) {
        self.insert_inner(e, stats, true);
    }

    fn insert_inner(&mut self, e: QueueEntry, stats: &mut SimStats, count_overflow: bool) {
        let at_fs = e.at.as_fs();
        debug_assert!(at_fs >= self.pos, "insert behind the wheel origin");
        self.len += 1;
        let key = (e.at, e.seq);
        let timer_pid = match e.kind {
            EntryKind::Timer { pid, .. } => Some(pid),
            EntryKind::Drive { .. } => None,
        };
        match self.level_and_slot(at_fs) {
            Some((lvl, si)) => {
                let slot = &mut self.levels[lvl].slots[si];
                if slot.entries.is_empty() {
                    slot.min = Some(key);
                } else if let Some(m) = &mut slot.min {
                    if key < *m {
                        *m = key;
                    }
                }
                let idx = slot.entries.len() as u32;
                if slot.entries.len() == slot.entries.capacity() {
                    // Grow with a generous floor: a slot's occupancy
                    // high-water drifts up slowly (bursts land on
                    // different slots each lap), and creeping 4→8→16
                    // doublings would trickle allocations deep into
                    // warm runs. One sized reservation per slot makes
                    // the zero-allocation steady state converge at
                    // first touch.
                    slot.entries.reserve(MIN_SLOT_CAP.max(slot.entries.len()));
                }
                slot.entries.push(e);
                let occupancy = slot.entries.len() as u64;
                self.levels[lvl].occupied |= 1 << si;
                if let Some(pid) = timer_pid {
                    self.set_timer_loc(
                        pid,
                        TimerLoc {
                            level: lvl as u8,
                            slot: si as u8,
                            idx,
                        },
                    );
                }
                stats.wheel_slot_peak = stats.wheel_slot_peak.max(occupancy);
            }
            None => {
                if self.overflow.is_empty() {
                    self.overflow_min = Some(key);
                } else if let Some(m) = &mut self.overflow_min {
                    if key < *m {
                        *m = key;
                    }
                }
                let idx = self.overflow.len() as u32;
                self.overflow.push(e);
                if let Some(pid) = timer_pid {
                    self.set_timer_loc(
                        pid,
                        TimerLoc {
                            level: OVERFLOW_LEVEL,
                            slot: 0,
                            idx,
                        },
                    );
                }
                if count_overflow {
                    stats.overflow_parked += 1;
                }
            }
        }
    }

    /// O(1) timer cancellation: swap-remove the entry at its recorded
    /// location, fixing up the displaced entry's back-pointer (if it was
    /// a timer) and dirtying the slot's cached minimum when needed.
    /// Returns whether an entry was removed.
    pub(crate) fn remove_timer(&mut self, pid: ProcessId) -> bool {
        let Some(loc) = self.timer_loc.get_mut(pid.index()).and_then(Option::take) else {
            return false;
        };
        self.len -= 1;
        let idx = loc.idx as usize;
        if loc.level == OVERFLOW_LEVEL {
            let removed = self.overflow.swap_remove(idx);
            debug_assert!(matches!(removed.kind, EntryKind::Timer { .. }));
            if let Some(moved) = self.overflow.get(idx) {
                if let EntryKind::Timer { pid: mp, .. } = moved.kind {
                    self.timer_loc[mp.index()] = Some(TimerLoc {
                        level: OVERFLOW_LEVEL,
                        slot: 0,
                        idx: loc.idx,
                    });
                }
            }
            if self.overflow_min == Some((removed.at, removed.seq)) {
                self.overflow_min = None;
            }
            return true;
        }
        let (lvl, si) = (loc.level as usize, loc.slot as usize);
        let slot = &mut self.levels[lvl].slots[si];
        let removed = slot.entries.swap_remove(idx);
        debug_assert!(matches!(removed.kind, EntryKind::Timer { .. }));
        if slot.min == Some((removed.at, removed.seq)) {
            slot.min = None;
        }
        if slot.entries.is_empty() {
            slot.min = None;
            self.levels[lvl].occupied &= !(1u64 << si);
        } else if let Some(moved) = self.levels[lvl].slots[si].entries.get(idx) {
            if let EntryKind::Timer { pid: mp, .. } = moved.kind {
                self.timer_loc[mp.index()] = Some(TimerLoc {
                    level: loc.level,
                    slot: loc.slot,
                    idx: loc.idx,
                });
            }
        }
        true
    }

    /// Advances the origin to `to`, cascading the coarse slot containing
    /// `to` at each level into finer levels and re-ingesting overflow
    /// entries that now fit inside the wheel horizon. The kernel only
    /// calls this with `to` equal to the exact global minimum, so every
    /// slot strictly between the old and new origin is empty.
    pub(crate) fn advance(&mut self, to: SimTime, stats: &mut SimStats) {
        let to_fs = to.as_fs();
        debug_assert!(to_fs >= self.pos, "time reversal in wheel advance");
        if to_fs == self.pos {
            return;
        }
        let old = self.pos;
        self.pos = to_fs;
        if (to_fs ^ old) >> (SLOT_SHIFT + LEVEL_BITS) == 0 {
            // The origin stayed inside its level-1 slot, so no coarse
            // slot boundary was crossed at any level — the common case
            // for instant-to-instant steps, which skips the cascade
            // scan entirely.
            self.reingest_overflow(stats);
            return;
        }
        for lvl in (1..LEVELS).rev() {
            let shift = SLOT_SHIFT + LEVEL_BITS * lvl as u32;
            if (to_fs >> shift) == (old >> shift) {
                // Same slot at this level (and every coarser one):
                // nothing filed here can have become due or re-fileable.
                continue;
            }
            let si = ((to_fs >> shift) & (SLOTS as u64 - 1)) as usize;
            let level = &mut self.levels[lvl];
            if level.occupied & (1 << si) == 0 {
                continue;
            }
            level.occupied &= !(1u64 << si);
            let slot = &mut level.slots[si];
            slot.min = None;
            // `append` keeps the drained slot's capacity, so a warm
            // steady state recycles slot storage without allocating.
            self.cascade_buf.append(&mut slot.entries);
            stats.wheel_cascades += self.cascade_buf.len() as u64;
            let mut buf = std::mem::take(&mut self.cascade_buf);
            for e in buf.drain(..) {
                debug_assert!(e.at.as_fs() >= to_fs, "cascade past a due entry");
                self.len -= 1;
                self.insert_inner(e, stats, false);
            }
            self.cascade_buf = buf;
        }
        self.reingest_overflow(stats);
    }

    /// Moves overflow entries back into the wheel once the overflow
    /// minimum fits inside the horizon. The fit check on the minimum is
    /// exact: for a fixed origin the filing level is monotone in the
    /// entry time, so if the minimum does not fit, nothing does.
    fn reingest_overflow(&mut self, stats: &mut SimStats) {
        if self.overflow.is_empty() {
            return;
        }
        let (min_at, _) = self.overflow_min_key();
        if self.level_and_slot(min_at.as_fs()).is_none() {
            return;
        }
        debug_assert!(self.cascade_buf.is_empty());
        self.cascade_buf.append(&mut self.overflow);
        self.overflow_min = None;
        stats.wheel_cascades += self.cascade_buf.len() as u64;
        let mut buf = std::mem::take(&mut self.cascade_buf);
        for e in buf.drain(..) {
            self.len -= 1;
            self.insert_inner(e, stats, false);
        }
        self.cascade_buf = buf;
    }

    fn overflow_min_key(&mut self) -> (SimTime, u64) {
        if let Some(m) = self.overflow_min {
            return m;
        }
        let m = self
            .overflow
            .iter()
            .map(|e| (e.at, e.seq))
            .min()
            .expect("non-empty overflow");
        self.overflow_min = Some(m);
        m
    }

    fn slot_min_key(&mut self, lvl: usize, si: usize) -> (SimTime, u64) {
        let slot = &mut self.levels[lvl].slots[si];
        if let Some(m) = slot.min {
            return m;
        }
        let m = slot
            .entries
            .iter()
            .map(|e| (e.at, e.seq))
            .min()
            .expect("occupied slot");
        slot.min = Some(m);
        m
    }

    /// Exact earliest scheduled instant. Levels are totally ordered in
    /// time: a level-`l` entry shares the origin's bits above level `l`'s
    /// span while a level-`l+1` entry is strictly beyond them, so *every*
    /// level-`l` entry precedes every coarser-level entry, and the first
    /// non-empty level (finest first; overflow last) holds the global
    /// minimum in its first occupied slot. One bitmap scan per empty
    /// level plus one cached slot minimum. Non-destructive (only
    /// refreshes a dirty cached minimum).
    pub(crate) fn next_at(&mut self) -> Option<SimTime> {
        for lvl in 0..LEVELS {
            let shift = SLOT_SHIFT + LEVEL_BITS * lvl as u32;
            let cur = ((self.pos >> shift) & (SLOTS as u64 - 1)) as u32;
            let mut mask = u64::MAX << cur;
            if lvl != 0 {
                // Level ≥ 1 entries always sit strictly beyond the
                // origin's slot (see the filing invariant).
                mask <<= 1;
            }
            let occ = self.levels[lvl].occupied & mask;
            if occ == 0 {
                continue;
            }
            let si = occ.trailing_zeros() as usize;
            return Some(self.slot_min_key(lvl, si).0);
        }
        if !self.overflow.is_empty() {
            return Some(self.overflow_min_key().0);
        }
        None
    }

    /// Drains every entry due exactly at `now` (the level-0 slot at the
    /// origin) into `due`, leaving later same-slot entries behind. One
    /// stable partition pass through a recycled scratch buffer: kept
    /// entries have their timer locations and the slot's cached minimum
    /// maintained on the way, so the following [`Self::next_at`] never
    /// rescans the slot. `due` is appended in arbitrary order; the
    /// caller sorts by `(at, seq)`.
    pub(crate) fn take_due(&mut self, now: SimTime, due: &mut Vec<QueueEntry>) {
        let now_fs = now.as_fs();
        debug_assert_eq!(now_fs, self.pos, "take_due before advance");
        let si = ((now_fs >> SLOT_SHIFT) & (SLOTS as u64 - 1)) as usize;
        if self.levels[0].occupied & (1 << si) == 0 {
            return;
        }
        let before = due.len();
        // Split borrows: the slot vector is iterated mutably while the
        // timer back-pointer table updates alongside it.
        let Self {
            levels, timer_loc, ..
        } = self;
        let slot = &mut levels[0].slots[si];
        // Extract due entries in place, preserving both the due order
        // and the survivors' order. The slot keeps its own vector, so
        // per-slot capacities are sticky — once a slot has grown to its
        // working set it never reallocates again (the zero-allocation
        // steady-state contract pins this).
        for e in slot.entries.extract_if(.., |e| e.at == now) {
            if let EntryKind::Timer { pid, .. } = e.kind {
                timer_loc[pid.index()] = None;
            }
            due.push(e);
        }
        self.len -= due.len() - before;
        if slot.entries.is_empty() {
            slot.min = None;
            self.levels[0].occupied &= !(1u64 << si);
        } else {
            // Future laps share this slot: the extraction shifted the
            // survivors down, so re-point their timer locations and
            // refresh the cached min in one short pass — the following
            // `next_at` never rescans.
            let mut min: Option<(SimTime, u64)> = None;
            for (idx, e) in slot.entries.iter().enumerate() {
                debug_assert!(e.at > now, "stale entry in due slot");
                let key = (e.at, e.seq);
                if min.is_none_or(|m| key < m) {
                    min = Some(key);
                }
                if let EntryKind::Timer { pid, .. } = e.kind {
                    timer_loc[pid.index()] = Some(TimerLoc {
                        level: 0,
                        slot: si as u8,
                        idx: idx as u32,
                    });
                }
            }
            slot.min = min;
        }
    }

    /// Visits every stored entry in arbitrary order.
    pub(crate) fn for_each(&self, mut f: impl FnMut(&QueueEntry)) {
        for level in &self.levels {
            for slot in &level.slots {
                for e in &slot.entries {
                    f(e);
                }
            }
        }
        for e in &self.overflow {
            f(e);
        }
    }

    /// Clears all entries and re-bases the origin (state restore).
    pub(crate) fn reset(&mut self, pos: SimTime) {
        for level in &mut self.levels {
            level.occupied = 0;
            for slot in &mut level.slots {
                slot.entries.clear();
                slot.min = None;
            }
        }
        self.overflow.clear();
        self.overflow_min = None;
        self.timer_loc.iter_mut().for_each(|l| *l = None);
        self.len = 0;
        self.pos = pos.as_fs();
    }
}

/// A future drive in the retired heap backend, ordered by `(at, seq)`.
#[derive(Debug, Clone)]
struct HeapDrive {
    at: SimTime,
    seq: u64,
    sig: SignalId,
    value: Value,
}

impl PartialEq for HeapDrive {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for HeapDrive {}

impl PartialOrd for HeapDrive {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapDrive {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A pending timeout in the retired heap backend. Stale entries (token
/// mismatch) are discarded lazily when they reach the top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapTimer {
    at: SimTime,
    seq: u64,
    pid: ProcessId,
    token: u64,
}

/// The retired binary-heap backend: two min-heaps on `(at, seq)` with
/// lazy timer cancellation. Kept verbatim as the differential oracle
/// and the benchmark ablation baseline.
#[derive(Debug, Default)]
pub(crate) struct HeapQueues {
    drive_heap: BinaryHeap<Reverse<HeapDrive>>,
    timer_heap: BinaryHeap<Reverse<HeapTimer>>,
}

/// The kernel's time-queue backend. [`TimeQueues::Wheel`] is the one
/// shipping path; [`TimeQueues::Heaps`] exists for differential tests
/// and the benchmark's heap-baseline ablation
/// ([`Simulator::use_heap_queues`](crate::Simulator::use_heap_queues)).
///
/// `live` closures passed below answer "is this timer entry the one its
/// process is actually waiting on" — the heap backend needs it to skip
/// lazily cancelled tombstones; the wheel never stores dead entries.
#[derive(Debug)]
pub(crate) enum TimeQueues {
    Wheel(TimeWheel),
    Heaps(HeapQueues),
}

impl TimeQueues {
    pub(crate) fn new_wheel() -> Self {
        TimeQueues::Wheel(TimeWheel::new())
    }

    pub(crate) fn new_heaps() -> Self {
        TimeQueues::Heaps(HeapQueues::default())
    }

    pub(crate) fn is_wheel(&self) -> bool {
        matches!(self, TimeQueues::Wheel(_))
    }

    pub(crate) fn insert_drive(
        &mut self,
        at: SimTime,
        seq: u64,
        sig: SignalId,
        value: Value,
        stats: &mut SimStats,
    ) {
        match self {
            TimeQueues::Wheel(w) => w.insert(
                QueueEntry {
                    at,
                    seq,
                    kind: EntryKind::Drive { sig, value },
                },
                stats,
            ),
            TimeQueues::Heaps(h) => h.drive_heap.push(Reverse(HeapDrive {
                at,
                seq,
                sig,
                value,
            })),
        }
    }

    pub(crate) fn insert_timer(
        &mut self,
        at: SimTime,
        seq: u64,
        pid: ProcessId,
        token: u64,
        stats: &mut SimStats,
    ) {
        match self {
            TimeQueues::Wheel(w) => w.insert(
                QueueEntry {
                    at,
                    seq,
                    kind: EntryKind::Timer { pid, token },
                },
                stats,
            ),
            TimeQueues::Heaps(h) => h.timer_heap.push(Reverse(HeapTimer {
                at,
                seq,
                pid,
                token,
            })),
        }
    }

    /// Removes a process's armed timer entry. O(1) in the wheel; a
    /// no-op in the heap backend, whose entry dies lazily by token.
    pub(crate) fn cancel_timer(&mut self, pid: ProcessId) {
        match self {
            TimeQueues::Wheel(w) => {
                let removed = w.remove_timer(pid);
                debug_assert!(removed, "cancel of a timer the wheel does not hold");
            }
            TimeQueues::Heaps(_) => {}
        }
    }

    /// Moves the queue origin to `to` (wheel cascade; heap no-op).
    pub(crate) fn advance(&mut self, to: SimTime, stats: &mut SimStats) {
        match self {
            TimeQueues::Wheel(w) => w.advance(to, stats),
            TimeQueues::Heaps(_) => {}
        }
    }

    /// The earliest scheduled live instant. The heap backend discards
    /// lazily cancelled timer tombstones from the top as a side effect,
    /// counting them in [`SimStats::stale_timers_skipped`].
    pub(crate) fn next_at(
        &mut self,
        live: impl Fn(ProcessId, u64, SimTime) -> bool,
        stats: &mut SimStats,
    ) -> Option<SimTime> {
        match self {
            TimeQueues::Wheel(w) => w.next_at(),
            TimeQueues::Heaps(h) => {
                while let Some(Reverse(e)) = h.timer_heap.peek() {
                    if live(e.pid, e.token, e.at) {
                        break;
                    }
                    h.timer_heap.pop();
                    stats.stale_timers_skipped += 1;
                }
                let a = h.drive_heap.peek().map(|Reverse(d)| d.at);
                let b = h.timer_heap.peek().map(|Reverse(t)| t.at);
                match (a, b) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, None) => x,
                    (None, y) => y,
                }
            }
        }
    }

    /// Drains every live entry due at or before `now` into `due`
    /// (arbitrary order; the caller sorts by `(at, seq)`). Stale heap
    /// timers are dropped and counted; the wheel holds none.
    pub(crate) fn take_due(
        &mut self,
        now: SimTime,
        due: &mut Vec<QueueEntry>,
        live: impl Fn(ProcessId, u64, SimTime) -> bool,
        stats: &mut SimStats,
    ) {
        match self {
            TimeQueues::Wheel(w) => w.take_due(now, due),
            TimeQueues::Heaps(h) => {
                while let Some(Reverse(td)) = h.drive_heap.peek() {
                    if td.at > now {
                        break;
                    }
                    let Reverse(td) = h.drive_heap.pop().expect("peeked entry exists");
                    due.push(QueueEntry {
                        at: td.at,
                        seq: td.seq,
                        kind: EntryKind::Drive {
                            sig: td.sig,
                            value: td.value,
                        },
                    });
                }
                while let Some(Reverse(te)) = h.timer_heap.peek() {
                    if te.at > now {
                        break;
                    }
                    let Reverse(te) = h.timer_heap.pop().expect("peeked entry exists");
                    if live(te.pid, te.token, te.at) {
                        due.push(QueueEntry {
                            at: te.at,
                            seq: te.seq,
                            kind: EntryKind::Timer {
                                pid: te.pid,
                                token: te.token,
                            },
                        });
                    } else {
                        stats.stale_timers_skipped += 1;
                    }
                }
            }
        }
    }

    /// Canonical capture: all live entries split by kind, each sorted by
    /// `(at, seq)`. This is the serialized form shared by both backends
    /// (and the cross-backend migration path), so captures compare and
    /// restore identically regardless of internal layout.
    #[allow(clippy::type_complexity)]
    pub(crate) fn canonical(
        &self,
        live: impl Fn(ProcessId, u64, SimTime) -> bool,
    ) -> (
        Vec<(SimTime, u64, SignalId, Value)>,
        Vec<(SimTime, u64, ProcessId, u64)>,
    ) {
        let mut drives = vec![];
        let mut timers = vec![];
        let mut visit = |e: &QueueEntry| match &e.kind {
            EntryKind::Drive { sig, value } => drives.push((e.at, e.seq, *sig, value.clone())),
            EntryKind::Timer { pid, token } => {
                if live(*pid, *token, e.at) {
                    timers.push((e.at, e.seq, *pid, *token));
                } else {
                    debug_assert!(!self.is_wheel(), "the wheel must not hold cancelled timers");
                }
            }
        };
        match self {
            TimeQueues::Wheel(w) => w.for_each(&mut visit),
            TimeQueues::Heaps(h) => {
                for Reverse(d) in &h.drive_heap {
                    visit(&QueueEntry {
                        at: d.at,
                        seq: d.seq,
                        kind: EntryKind::Drive {
                            sig: d.sig,
                            value: d.value.clone(),
                        },
                    });
                }
                for Reverse(t) in &h.timer_heap {
                    visit(&QueueEntry {
                        at: t.at,
                        seq: t.seq,
                        kind: EntryKind::Timer {
                            pid: t.pid,
                            token: t.token,
                        },
                    });
                }
            }
        }
        drives.sort_unstable_by_key(|&(at, seq, ..)| (at, seq));
        timers.sort_unstable_by_key(|&(at, seq, ..)| (at, seq));
        (drives, timers)
    }

    /// Rebuilds the backend from a canonical capture, re-basing the
    /// wheel origin at `now` (every captured entry satisfies
    /// `at >= now`). Stats side effects of the rebuild inserts are
    /// written to `stats`; a state restore overwrites them afterwards.
    pub(crate) fn rebuild(
        &mut self,
        now: SimTime,
        drives: &[(SimTime, u64, SignalId, Value)],
        timers: &[(SimTime, u64, ProcessId, u64)],
        stats: &mut SimStats,
    ) {
        match self {
            TimeQueues::Wheel(w) => w.reset(now),
            TimeQueues::Heaps(h) => {
                h.drive_heap.clear();
                h.timer_heap.clear();
            }
        }
        for (at, seq, sig, value) in drives {
            self.insert_drive(*at, *seq, *sig, value.clone(), stats);
        }
        for &(at, seq, pid, token) in timers {
            self.insert_timer(at, seq, pid, token, stats);
        }
    }
}
