//! # cosma-sim — discrete-event simulation kernel
//!
//! A VHDL-semantics event-driven simulator: femtosecond time, two-phase
//! delta cycles, processes with `wait on` / `wait for` / `wait until`
//! semantics, and a VCD trace writer.
//!
//! This crate substitutes for the commercial VHDL simulator (Synopsys VSS)
//! the paper's co-simulation environment was built on. The co-simulation
//! backplane (`cosma-cosim`) instantiates hardware modules and
//! communication units as [`Process`]es over [`Simulator`] signals.
//!
//! Future activity lives in a hierarchical timer wheel (64 power-of-two
//! slots per level, four levels, far-future overflow list) keyed by
//! `(time, sequence)`, giving O(1) insertion, O(1) timer cancellation
//! and an amortized-O(1) bulk path for pre-computed beat trains
//! ([`Simulator::schedule_drive_train`] / [`ProcCtx::drive_train`]).
//!
//! The kernel is checkpointable: [`Simulator::save_state`] captures
//! everything the kernel owns (signals, per-process scheduling state,
//! time queues, time, statistics) into a [`SimState`] and
//! [`Simulator::load_state`] resumes bit-identically. Process-*closure*
//! state is deliberately outside the contract — whoever registers a
//! process owns whatever its closure captures and must checkpoint it
//! alongside the kernel state (as the co-simulation backplane does).
//!
//! ## Example
//!
//! ```
//! use cosma_sim::{Simulator, FnProcess, Wait, Duration};
//! use cosma_core::{Type, Value, Bit};
//!
//! let mut sim = Simulator::new();
//! let clk = sim.add_bit("CLK");
//! let q = sim.add_signal("Q", Type::INT16, Value::Int(0));
//! sim.add_clock("clkgen", clk, Duration::from_ns(100));
//! // A counter clocked on the rising edge.
//! sim.add_process("counter", FnProcess::new(move |ctx| {
//!     if ctx.rose(clk) {
//!         let v = ctx.read_int(q);
//!         ctx.drive(q, Value::Int(v + 1));
//!     }
//!     Wait::Event(vec![clk])
//! }));
//! sim.run_for(Duration::from_ns(1000))?;
//! assert!(matches!(sim.value(q), Value::Int(n) if *n >= 9));
//! # Ok::<(), cosma_sim::SimError>(())
//! ```

#![warn(missing_docs)]

mod kernel;
mod queue;
pub mod reference;
mod signal;
mod time;
mod vcd;

pub use kernel::{
    ClockControl, ClockProcess, ClockedProcess, Edge, FnProcess, ProcCtx, Process, ProcessId,
    SimError, SimState, SimStats, Simulator, Wait,
};
pub use signal::{SignalId, SignalInfo};
pub use time::{ClockRatio, Duration, SimTime};
pub use vcd::VcdRecorder;
