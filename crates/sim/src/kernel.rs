//! The discrete-event kernel with VHDL semantics.
//!
//! # Semantics
//!
//! Two-phase delta cycles: processes never see their own drives until the
//! next delta, signal updates that change a value produce *events*, events
//! wake sensitive processes, and simulated time only advances when the
//! current instant is quiescent. This mirrors the semantics of the
//! commercial VHDL simulator the paper's co-simulation environment was
//! built on. The kernel guarantees, observably:
//!
//! * **Two-phase deltas** — a drive scheduled in delta *d* becomes visible
//!   in delta *d+1*; a process reading a signal it just drove sees the old
//!   value.
//! * **Last-writer-wins within a delta** — pending drives are applied in
//!   schedule order (process-id order within a delta, poke order for
//!   testbench pokes), so the last scheduled drive determines the settled
//!   value, exactly like sequential updates of one VHDL driver.
//! * **Deterministic process ordering** — the processes woken in one delta
//!   run in ascending [`ProcessId`] order, regardless of how they were
//!   woken (event or timeout).
//! * **Timeout cancellation on event wake** — a process in
//!   [`Wait::EventOrTimeout`] that is woken by an event has its pending
//!   timeout cancelled before it can fire.
//!
//! # Scheduling core
//!
//! The kernel never scans the full process table on the hot path:
//!
//! * **Inverted sensitivity index** — every signal carries a watcher list
//!   of `(process, epoch)` entries. A process that changes its wait set
//!   bumps its epoch, which lazily invalidates its old entries; stale
//!   entries are dropped when their list is next traversed (or compacted
//!   when a list becomes mostly stale). Waking the watchers of an event
//!   therefore costs `O(watchers of signals with events)`, not
//!   `O(processes)`. Clocked processes that return [`Wait::Same`] (or an
//!   equal wait set) never touch the index at all.
//! * **Hierarchical timer-wheel time queues** — timed drives (`sig <= v
//!   after d`) and process timeouts (`wait for d`) live in one unified
//!   hierarchical timer wheel: 4 levels of 64 power-of-two slots each
//!   (level-0 slot width 2^23 fs ≈ 8.4 ns, each level 64× coarser, a
//!   wheel horizon of ≈ 141 ms), with a far-future overflow list beyond
//!   the horizon. Insertion and timeout cancellation are `O(1)` (the
//!   wheel records each timer's slot index, so cancellation removes the
//!   entry eagerly — no tombstones, no lazy purges), the next-activity
//!   query reads per-level occupancy bitmaps and cached slot minima,
//!   and advancing time cascades at most one coarse slot per level into
//!   finer slots — amortized `O(1)` per entry. Entries stay keyed by
//!   `(time, sequence)` and due entries are drained per instant in that
//!   order, so pop order is bit-identical to the retired binary-heap
//!   queues (which survive privately as a differential test oracle and
//!   the benchmark ablation behind [`Simulator::use_heap_queues`]).
//! * **Bulk burst insertion** — a pre-computed beat train (the payload
//!   beats of a batched bus transaction) lands in the wheel in one pass
//!   through [`Simulator::schedule_drive_train`] / [`ProcCtx::drive_train`]
//!   instead of one scheduling call per beat.
//! * **Batched drive application** — pending drives are applied in one
//!   pass with no value clones (the old value is moved into the signal's
//!   `prev` slot as the new one moves in).
//!
//! [`SimStats`] exposes counters for all of this — wakeups by kind, the
//! scans avoided versus a full-scan kernel, per-structure queue
//! high-water marks, wheel cascades and bulk-insert volumes — so
//! scheduler regressions are measurable. The pre-index full-scan kernel
//! survives as [`reference::RefSimulator`](crate::reference::RefSimulator)
//! and the two are held equivalent by randomized property tests.

use crate::queue::{EntryKind, QueueEntry, TimeQueues};

use crate::signal::{Signal, SignalId, SignalInfo};
use crate::time::{Duration, SimTime};
use crate::vcd::VcdRecorder;
use cosma_core::{Bit, Type, Value};
use std::fmt;

/// Identifies a process within a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

/// What a process waits for after returning from a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Wait {
    /// Resume when any listed signal has an event (`wait on a, b;`).
    Event(Vec<SignalId>),
    /// Resume when any listed signal has a *rising* event: an event
    /// whose new value is `Bit::One` (`wait until rising_edge(clk);`).
    /// The filter applies to the whole list; falling edges leave the
    /// process asleep without an activation, which halves the wake
    /// traffic of purely clock-driven processes.
    Rising(Vec<SignalId>),
    /// Resume after a span (`wait for 10 ns;`).
    Timeout(Duration),
    /// Resume on event or after the span, whichever first.
    EventOrTimeout(Vec<SignalId>, Duration),
    /// Never resume (`wait;`).
    Forever,
    /// Keep the previous *event* sensitivity unchanged (the idiom for
    /// clocked processes: register once, then return `Same` forever).
    ///
    /// Timeouts are one-shot and are **not** re-armed by `Same`. A
    /// process that has never declared a sensitivity and returns `Same`
    /// waits forever.
    Same,
}

/// A simulation process. The kernel calls [`run`](Process::run) at
/// elaboration (time zero) and then whenever the returned [`Wait`]
/// condition is met.
pub trait Process {
    /// Executes until the next wait point; reads and drives signals
    /// through `ctx`.
    fn run(&mut self, ctx: &mut ProcCtx<'_>) -> Wait;
}

impl<P: Process + ?Sized> Process for Box<P> {
    fn run(&mut self, ctx: &mut ProcCtx<'_>) -> Wait {
        (**self).run(ctx)
    }
}

/// Wraps a closure as a [`Process`].
///
/// # Examples
///
/// ```
/// use cosma_sim::{FnProcess, Wait, Simulator, Duration};
/// use cosma_core::{Type, Value, Bit};
///
/// let mut sim = Simulator::new();
/// let led = sim.add_signal("LED", Type::Bit, Value::Bit(Bit::Zero));
/// sim.add_process("driver", FnProcess::new(move |ctx| {
///     ctx.drive(led, Value::Bit(Bit::One));
///     Wait::Forever
/// }));
/// sim.run_for(Duration::from_ns(1))?;
/// assert_eq!(sim.value(led), &Value::Bit(Bit::One));
/// # Ok::<(), cosma_sim::SimError>(())
/// ```
pub struct FnProcess<F>(F);

impl<F: FnMut(&mut ProcCtx<'_>) -> Wait> FnProcess<F> {
    /// Wraps the closure.
    pub fn new(f: F) -> Self {
        FnProcess(f)
    }
}

impl<F> fmt::Debug for FnProcess<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnProcess")
    }
}

impl<F: FnMut(&mut ProcCtx<'_>) -> Wait> Process for FnProcess<F> {
    fn run(&mut self, ctx: &mut ProcCtx<'_>) -> Wait {
        (self.0)(ctx)
    }
}

/// Which clock transition activates a [`ClockedProcess`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Activate on events where the clock becomes `'1'`.
    Rising,
    /// Activate on events where the clock becomes `'0'`.
    Falling,
    /// Activate on any event of the clock signal.
    Any,
}

/// What a clocked body tells the kernel after an activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockControl {
    /// Stay registered for the next matching edge.
    Continue,
    /// Unregister permanently (the process never runs again).
    Halt,
}

/// A process activated on a clock edge, registered through the kernel's
/// sensitivity API: it declares its clock once and returns
/// [`Wait::Same`] afterwards, so steady-state activations allocate
/// nothing and never touch the sensitivity index.
///
/// Built by [`Simulator::add_clocked`].
pub struct ClockedProcess<F> {
    clk: SignalId,
    edge: Edge,
    body: F,
    registered: bool,
}

impl<F: FnMut(&mut ProcCtx<'_>) -> ClockControl> ClockedProcess<F> {
    /// Creates a clocked process around `body`.
    pub fn new(clk: SignalId, edge: Edge, body: F) -> Self {
        ClockedProcess {
            clk,
            edge,
            body,
            registered: false,
        }
    }
}

impl<F> fmt::Debug for ClockedProcess<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClockedProcess({}, {:?})", self.clk, self.edge)
    }
}

impl<F: FnMut(&mut ProcCtx<'_>) -> ClockControl> Process for ClockedProcess<F> {
    fn run(&mut self, ctx: &mut ProcCtx<'_>) -> Wait {
        let fire = match self.edge {
            Edge::Rising => ctx.rose(self.clk),
            Edge::Falling => ctx.fell(self.clk),
            Edge::Any => ctx.event(self.clk),
        };
        if fire {
            if let ClockControl::Halt = (self.body)(ctx) {
                return Wait::Forever;
            }
        }
        if self.registered {
            Wait::Same
        } else {
            self.registered = true;
            Wait::Event(vec![self.clk])
        }
    }
}

/// A free-running clock generator toggling a bit signal.
#[derive(Debug)]
pub struct ClockProcess {
    signal: SignalId,
    half_period: Duration,
}

impl ClockProcess {
    /// Creates a clock driving `signal` with the given full `period`.
    #[must_use]
    pub fn new(signal: SignalId, period: Duration) -> Self {
        ClockProcess {
            signal,
            half_period: period.halved(),
        }
    }
}

impl Process for ClockProcess {
    fn run(&mut self, ctx: &mut ProcCtx<'_>) -> Wait {
        let cur = ctx.read(self.signal).clone();
        let next = match cur {
            Value::Bit(Bit::One) => Bit::Zero,
            _ => Bit::One,
        };
        ctx.drive(self.signal, Value::Bit(next));
        Wait::Timeout(self.half_period)
    }
}

/// One entry in a signal's watcher list. Valid while the watching
/// process's epoch still equals the recorded one.
type Watcher = (ProcessId, u64);

/// Per-signal inverted sensitivity index entry.
#[derive(Debug, Default)]
struct WatchList {
    entries: Vec<Watcher>,
    /// Lower bound on invalidated entries, bumped when a watcher leaves;
    /// triggers compaction when most of the list is stale.
    stale: u32,
}

struct ProcSlot {
    name: String,
    body: Option<Box<dyn Process>>,
    /// Current event sensitivity (mirrored in the watcher lists).
    sensitivity: Vec<SignalId>,
    /// Whether `sensitivity` is rising-edge filtered ([`Wait::Rising`]):
    /// events that leave the signal at anything but `Bit::One` do not
    /// wake this process.
    rising: bool,
    /// Bumped whenever `sensitivity` is replaced; watcher-list entries
    /// recorded under older epochs are dead. `u64` so it cannot wrap
    /// into a stale entry's epoch within any realistic run.
    epoch: u64,
    /// Pending timeout instant, if armed.
    wake_at: Option<SimTime>,
    /// Bumped on every timer arm/cancel/fire; timer-heap entries with an
    /// older token are dead.
    timer_token: u64,
    /// Wake-dedup stamp for the current delta.
    wake_stamp: u64,
    runs: u64,
}

/// A buffered drive train recorded by [`ProcCtx::drive_train`]: `values`
/// land on `sig` at `start`, `start + stride`, `start + 2·stride`, …
/// relative to the activation instant. Expanded into ordinary timed
/// drives by the kernel (bulk wheel insert) and by the reference kernel
/// (per-beat map inserts), in recording order after the activation's
/// individual drives — the shared sequence counter keeps pop order
/// identical between the two.
#[derive(Debug)]
pub(crate) struct DriveTrain {
    pub(crate) sig: SignalId,
    pub(crate) start: Duration,
    pub(crate) stride: Duration,
    pub(crate) values: Vec<Value>,
}

/// Execution context passed to processes: read signals, schedule drives,
/// query time and events.
#[derive(Debug)]
pub struct ProcCtx<'a> {
    signals: &'a [Signal],
    /// Packed one-bit-per-signal mirror of the `event_now` flags, so
    /// event probes ([`Self::event`] / [`Self::rose`] / [`Self::fell`])
    /// hit a dense bitmap instead of pulling a whole [`Signal`] cache
    /// line per query — backplane schedulers probe thousands of watch
    /// wires per wake.
    event_bits: &'a [u64],
    now: SimTime,
    delta: u32,
    /// Drives scheduled by the running process: (signal, value, delay).
    drives: Vec<(SignalId, Value, Duration)>,
    /// Bulk drive trains scheduled by the running process (see
    /// [`Self::drive_train`]); pooled like `drives`.
    trains: Vec<DriveTrain>,
    /// Pooled empty value buffers backing `trains`, lent by the kernel
    /// so a warm steady state records trains without allocating.
    train_shells: Vec<Vec<Value>>,
    /// Pooled buffer lent to the process for building a
    /// [`Wait::Event`] list without allocating (see [`Self::wait_buf`]).
    wait_buf: Vec<SignalId>,
}

impl<'a> ProcCtx<'a> {
    /// Kernel-internal constructor, shared with the reference kernel.
    pub(crate) fn new(
        signals: &'a [Signal],
        event_bits: &'a [u64],
        now: SimTime,
        delta: u32,
    ) -> Self {
        ProcCtx {
            signals,
            event_bits,
            now,
            delta,
            drives: vec![],
            trains: vec![],
            train_shells: vec![],
            wait_buf: vec![],
        }
    }

    /// Consumes the context, yielding the individual drives and the
    /// drive trains the process scheduled.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(self) -> (Vec<(SignalId, Value, Duration)>, Vec<DriveTrain>) {
        (self.drives, self.trains)
    }

    /// An empty, pooled buffer for building a [`Wait::Event`] (or
    /// [`Wait::EventOrTimeout`]) wait list without allocating in the
    /// steady state: the kernel recycles displaced sensitivity vectors
    /// through a pool and lends one out per run. Call at most once per
    /// activation — further calls return a fresh zero-capacity vector,
    /// which is correct but allocates once pushed to.
    #[must_use]
    pub fn wait_buf(&mut self) -> Vec<SignalId> {
        std::mem::take(&mut self.wait_buf)
    }

    /// Current signal value.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this simulator.
    #[must_use]
    pub fn read(&self, s: SignalId) -> &Value {
        &self.signals[s.index()].value
    }

    /// Current value as a [`Bit`].
    ///
    /// # Panics
    ///
    /// Panics if the signal is not bit-typed.
    #[must_use]
    pub fn read_bit(&self, s: SignalId) -> Bit {
        match self.read(s) {
            Value::Bit(b) => *b,
            other => panic!(
                "signal {} is not a bit: {other:?}",
                self.signals[s.index()].name
            ),
        }
    }

    /// Current value as an integer.
    ///
    /// # Panics
    ///
    /// Panics if the signal is not integer-typed.
    #[must_use]
    pub fn read_int(&self, s: SignalId) -> i64 {
        match self.read(s) {
            Value::Int(i) => *i,
            other => panic!(
                "signal {} is not an int: {other:?}",
                self.signals[s.index()].name
            ),
        }
    }

    /// Schedules a drive for the next delta cycle (`sig <= v;`).
    ///
    /// # Panics
    ///
    /// Panics if the value's kind does not match the signal's type — a
    /// wiring bug equivalent to a VHDL type error.
    pub fn drive(&mut self, s: SignalId, v: Value) {
        self.drive_after(s, v, Duration::ZERO);
    }

    /// Schedules a drive after a delay (`sig <= v after d;`).
    ///
    /// # Panics
    ///
    /// Panics on type mismatch (see [`ProcCtx::drive`]).
    pub fn drive_after(&mut self, s: SignalId, v: Value, d: Duration) {
        let sig = &self.signals[s.index()];
        let v = sig.ty.clamp(v);
        assert!(
            sig.ty.admits(&v),
            "drive of signal {} ({}) with incompatible value {v:?}",
            sig.name,
            sig.ty
        );
        self.drives.push((s, v, d));
    }

    /// Schedules a whole drive train in one call: `values[k]` lands on
    /// `s` at `start + k·stride` after the current instant. The kernel
    /// bulk-inserts the train into its timer wheel in one pass, so a
    /// pre-computed burst of known shape (e.g. the payload beats of a
    /// batched bus transaction) costs O(1) per beat instead of one
    /// scheduling call each.
    ///
    /// Train entries are ordered after this activation's individual
    /// drives; within the train, beats keep slice order. Offsets of
    /// `Duration::ZERO` schedule at the current instant (processed at
    /// the next instant boundary, like any timed drive), **not** in the
    /// current delta — use [`ProcCtx::drive`] for delta-cycle drives.
    ///
    /// # Panics
    ///
    /// Panics on type mismatch of any value (see [`ProcCtx::drive`]).
    pub fn drive_train(
        &mut self,
        s: SignalId,
        start: Duration,
        stride: Duration,
        values: &[Value],
    ) {
        if values.is_empty() {
            return;
        }
        let sig = &self.signals[s.index()];
        let mut buf = self.train_shells.pop().unwrap_or_default();
        debug_assert!(buf.is_empty());
        buf.reserve(values.len());
        for v in values {
            let v = sig.ty.clamp(v.clone());
            assert!(
                sig.ty.admits(&v),
                "drive train on signal {} ({}) with incompatible value {v:?}",
                sig.name,
                sig.ty
            );
            buf.push(v);
        }
        self.trains.push(DriveTrain {
            sig: s,
            start,
            stride,
            values: buf,
        });
    }

    /// Whether the signal had an event in the delta that woke this run.
    #[must_use]
    pub fn event(&self, s: SignalId) -> bool {
        let i = s.index();
        self.event_bits[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Rising-edge detector: event in this delta and the new value is
    /// `'1'`.
    #[must_use]
    pub fn rose(&self, s: SignalId) -> bool {
        self.event(s) && matches!(self.signals[s.index()].value, Value::Bit(Bit::One))
    }

    /// Falling-edge detector.
    #[must_use]
    pub fn fell(&self, s: SignalId) -> bool {
        self.event(s) && matches!(self.signals[s.index()].value, Value::Bit(Bit::Zero))
    }

    /// Lifetime event count of a signal — a monotone activity serial, so
    /// a process can detect "changed since I last looked" across deltas
    /// and instants (used by the backplane to gate idle unit
    /// controllers).
    #[must_use]
    pub fn event_count(&self, s: SignalId) -> u64 {
        self.signals[s.index()].event_count
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Delta-cycle index within the current instant.
    #[must_use]
    pub fn delta(&self) -> u32 {
        self.delta
    }
}

/// Errors from simulation runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The delta-cycle loop at one instant exceeded the configured bound
    /// (combinational oscillation).
    DeltaOverflow {
        /// Instant at which the oscillation occurred.
        time: SimTime,
        /// The configured bound.
        limit: u32,
    },
    /// A [`Simulator::load_state`] target does not structurally match the
    /// snapshot (different signal or process tables): restoring would
    /// scramble ids, so nothing was changed.
    StateMismatch {
        /// What failed to line up.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DeltaOverflow { time, limit } => {
                write!(
                    f,
                    "delta-cycle oscillation at {time} (more than {limit} deltas)"
                )
            }
            SimError::StateMismatch { reason } => {
                write!(f, "snapshot does not match this simulator: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Aggregate kernel statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Total process activations.
    pub process_runs: u64,
    /// Total signal events.
    pub events: u64,
    /// Total delta cycles executed.
    pub deltas: u64,
    /// Distinct simulated instants visited.
    pub instants: u64,
    /// Processes woken through the inverted sensitivity index.
    pub event_wakeups: u64,
    /// Processes woken by an expiring `wait for` timeout.
    pub timer_wakeups: u64,
    /// Process inspections a full-scan kernel would have performed that
    /// the sensitivity index skipped (per event delta: process count
    /// minus watcher entries traversed).
    pub scans_avoided: u64,
    /// Dead watcher-list entries dropped during wake traversal or
    /// compaction.
    pub stale_watchers_purged: u64,
    /// Timeouts cancelled before firing (event wake of a
    /// [`Wait::EventOrTimeout`] process). On the shipping wheel path
    /// each cancellation removes its entry in O(1) via the recorded
    /// slot index.
    pub timers_cancelled: u64,
    /// Stale (lazily cancelled) entries discarded from the *timer*
    /// structure. Only the retired heap backend
    /// ([`Simulator::use_heap_queues`]) produces these; the wheel
    /// removes cancelled timers eagerly, so this stays 0 on the
    /// shipping path.
    pub stale_timers_skipped: u64,
    /// High-water mark of live armed timeouts (the *timer* structure
    /// only; timed drives are counted by
    /// [`drive_queue_peak`](Self::drive_queue_peak)).
    pub timer_queue_peak: u64,
    /// High-water mark of live future timed drives (the *drive*
    /// structure only).
    pub drive_queue_peak: u64,
    /// Wheel entries re-filed into a finer level (or re-ingested from
    /// the overflow list) as time advanced.
    pub wheel_cascades: u64,
    /// High-water mark of entries sharing one wheel slot.
    pub wheel_slot_peak: u64,
    /// Entries parked in the far-future overflow list (scheduled beyond
    /// the wheel horizon of ≈ 141 ms ahead of the wheel origin).
    pub overflow_parked: u64,
    /// Bulk drive-train insertions ([`Simulator::schedule_drive_train`]
    /// / [`ProcCtx::drive_train`] calls that landed at least one entry).
    pub bulk_inserts: u64,
    /// Total entries landed by bulk drive-train insertions.
    pub bulk_entries: u64,
}

/// Captured scheduling state of one process. The process *body* (the
/// closure or trait object) is deliberately excluded — see
/// [`Simulator::save_state`] for the ownership contract.
#[derive(Debug, Clone)]
struct ProcState {
    name: String,
    sensitivity: Vec<SignalId>,
    /// Rising-edge filter flag of the captured sensitivity
    /// ([`Wait::Rising`]).
    rising: bool,
    epoch: u64,
    wake_at: Option<SimTime>,
    timer_token: u64,
    wake_stamp: u64,
    runs: u64,
}

/// A point-in-time capture of all kernel-owned simulator state, produced
/// by [`Simulator::save_state`] and consumed by [`Simulator::load_state`].
///
/// The capture is *canonical*: the timed-drive heap is stored sorted by
/// `(time, sequence)` and lazily-cancelled timer entries are purged, so
/// two captures of identical logical states compare and restore
/// identically regardless of internal heap layout or how many dead
/// entries each heap happened to carry.
///
/// What is **in** the state: signal values (with previous values, event
/// marks and event counts), per-process sensitivity sets, epochs, timer
/// tokens, wake stamps and run counts, pending same-instant drives,
/// future timed drives, live timeouts, the sequence/stamp counters, the
/// current time, the elaboration flag, the delta bound, and [`SimStats`].
///
/// What is **out**: process bodies (restored into the same simulator or
/// a structurally identical clone, whose bodies stand in for the
/// captured ones) and any active VCD recorder.
#[derive(Debug, Clone)]
pub struct SimState {
    signals: Vec<Signal>,
    procs: Vec<ProcState>,
    delta_drives: Vec<(SignalId, Value)>,
    /// Future timed drives as `(at, seq, signal, value)`, sorted.
    timed_drives: Vec<(SimTime, u64, SignalId, Value)>,
    /// Live timeouts as `(at, seq, process, token)`, sorted.
    timers: Vec<(SimTime, u64, ProcessId, u64)>,
    fresh_events: Vec<SignalId>,
    seq: u64,
    stamp: u64,
    now: SimTime,
    initialized: bool,
    max_deltas: u32,
    stats: SimStats,
}

impl SimState {
    /// Simulated time at which the state was captured.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Kernel statistics at capture time.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Number of captured signals.
    #[must_use]
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Number of captured processes.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }
}

/// The discrete-event simulator.
///
/// # Examples
///
/// A 10 MHz clock observed for one microsecond:
///
/// ```
/// use cosma_sim::{Simulator, ClockProcess, Duration};
/// use cosma_core::{Type, Value, Bit};
///
/// let mut sim = Simulator::new();
/// let clk = sim.add_signal("CLK", Type::Bit, Value::Bit(Bit::Zero));
/// let period = Duration::from_freq_hz(10_000_000);
/// sim.add_clock("CLKGEN", clk, period);
/// sim.run_for(Duration::from_ns(999))?;
/// assert_eq!(sim.signal_info(clk).event_count, 20); // edges at 0,50,...,950 ns
/// # Ok::<(), cosma_sim::SimError>(())
/// ```
pub struct Simulator {
    signals: Vec<Signal>,
    /// Inverted sensitivity index, parallel to `signals`.
    watchers: Vec<WatchList>,
    processes: Vec<ProcSlot>,
    /// Drives awaiting the next delta at the current instant.
    delta_drives: Vec<(SignalId, Value)>,
    /// Timed drives and `wait for` timeouts, keyed `(at, seq)`. The
    /// shipping backend is the hierarchical timer wheel; the retired
    /// heaps remain selectable as a test oracle / ablation baseline.
    queues: TimeQueues,
    /// Monotone sequence for `(at, seq)` tie-breaking (FIFO within an
    /// instant).
    seq: u64,
    /// Number of live future timed drives (backend-independent; backs
    /// [`Simulator::pending_activity`] exactly).
    live_drives: usize,
    /// Number of *live* (non-cancelled) timer entries.
    armed_timers: usize,
    /// Delta-global wake-dedup stamp.
    stamp: u64,
    now: SimTime,
    initialized: bool,
    max_deltas: u32,
    stats: SimStats,
    /// Signals with `event_now` set, to be cleared before the next delta.
    fresh_events: Vec<SignalId>,
    /// Packed mirror of the signals' `event_now` flags (one bit per
    /// signal), lent to [`ProcCtx`] so event probes stay cache-dense.
    /// Maintained in lockstep with `fresh_events`; rebuilt on restore.
    event_bits: Vec<u64>,
    vcd: Option<VcdRecorder>,
    /// Pooled run-queue buffer recycled across deltas and instants, so a
    /// warm steady state never reallocates the wake list. Pure scratch:
    /// always empty between public calls, never enters a snapshot.
    run_queue_pool: Vec<ProcessId>,
    /// Pooled drive buffer threaded through each `ProcCtx`, recycled
    /// across process runs. Same scratch discipline as `run_queue_pool`.
    proc_drives_pool: Vec<(SignalId, Value, Duration)>,
    /// Recycled sensitivity vectors: displaced wait lists come back
    /// here and are lent out again via [`ProcCtx::wait_buf`]. Bounded,
    /// so pathological churn cannot hoard memory.
    sens_pool: Vec<Vec<SignalId>>,
    /// Pooled due-entry buffer recycled across instants. Pure scratch.
    due_buf: Vec<QueueEntry>,
    /// Pooled drive-train buffer threaded through each `ProcCtx`,
    /// recycled across process runs. Pure scratch.
    proc_trains_pool: Vec<DriveTrain>,
    /// Recycled drive-train value buffers lent out through
    /// [`ProcCtx::drive_train`] and reclaimed after bulk insertion.
    /// Bounded, like `sens_pool`.
    train_shell_pool: Vec<Vec<Value>>,
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("signals", &self.signals.len())
            .field("processes", &self.processes.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Creates an empty simulator.
    #[must_use]
    pub fn new() -> Self {
        Simulator {
            signals: vec![],
            watchers: vec![],
            processes: vec![],
            delta_drives: vec![],
            queues: TimeQueues::new_wheel(),
            seq: 0,
            live_drives: 0,
            armed_timers: 0,
            stamp: 0,
            now: SimTime::ZERO,
            initialized: false,
            max_deltas: 1000,
            stats: SimStats::default(),
            fresh_events: vec![],
            event_bits: vec![],
            vcd: None,
            run_queue_pool: vec![],
            proc_drives_pool: vec![],
            sens_pool: vec![],
            due_buf: vec![],
            proc_trains_pool: vec![],
            train_shell_pool: vec![],
        }
    }

    /// Sets the delta-cycle oscillation bound (default 1000).
    pub fn set_max_deltas(&mut self, limit: u32) {
        self.max_deltas = limit.max(1);
    }

    /// Declares a signal.
    pub fn add_signal(&mut self, name: impl Into<String>, ty: Type, init: Value) -> SignalId {
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(Signal::new(name.into(), ty, init));
        self.watchers.push(WatchList::default());
        self.event_bits.resize(self.signals.len().div_ceil(64), 0);
        id
    }

    /// Declares a bit signal initialized to `'0'`.
    pub fn add_bit(&mut self, name: impl Into<String>) -> SignalId {
        self.add_signal(name, Type::Bit, Value::Bit(Bit::Zero))
    }

    /// Registers a process.
    pub fn add_process(&mut self, name: impl Into<String>, p: impl Process + 'static) -> ProcessId {
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(ProcSlot {
            name: name.into(),
            body: Some(Box::new(p)),
            sensitivity: vec![],
            rising: false,
            epoch: 0,
            wake_at: None,
            timer_token: 0,
            wake_stamp: 0,
            runs: 0,
        });
        id
    }

    /// Registers a [`ClockedProcess`]: `body` runs on every matching
    /// `edge` of `clk`. This is the preferred way for upper layers
    /// (backplane controllers, module activations, platform adapters) to
    /// register clock sensitivity — the kernel keeps the registration
    /// alive without per-activation allocation or index churn.
    ///
    /// # Examples
    ///
    /// ```
    /// use cosma_sim::{Simulator, Duration, Edge, ClockControl};
    /// use cosma_core::{Type, Value};
    ///
    /// let mut sim = Simulator::new();
    /// let clk = sim.add_bit("CLK");
    /// let q = sim.add_signal("Q", Type::INT16, Value::Int(0));
    /// sim.add_clock("gen", clk, Duration::from_ns(100));
    /// sim.add_clocked("counter", clk, Edge::Rising, move |ctx| {
    ///     let v = ctx.read_int(q);
    ///     ctx.drive(q, Value::Int(v + 1));
    ///     ClockControl::Continue
    /// });
    /// sim.run_for(Duration::from_ns(999))?;
    /// assert_eq!(sim.value(q), &Value::Int(10)); // rising edges at 0,100,...,900
    /// # Ok::<(), cosma_sim::SimError>(())
    /// ```
    pub fn add_clocked<F>(
        &mut self,
        name: impl Into<String>,
        clk: SignalId,
        edge: Edge,
        body: F,
    ) -> ProcessId
    where
        F: FnMut(&mut ProcCtx<'_>) -> ClockControl + 'static,
    {
        self.add_process(name, ClockedProcess::new(clk, edge, body))
    }

    /// Convenience: registers a [`ClockProcess`].
    pub fn add_clock(
        &mut self,
        name: impl Into<String>,
        signal: SignalId,
        period: Duration,
    ) -> ProcessId {
        self.add_process(name, ClockProcess::new(signal, period))
    }

    /// Enables VCD recording of all currently declared signals.
    pub fn record_vcd(&mut self) {
        let mut rec = VcdRecorder::new();
        for (i, s) in self.signals.iter().enumerate() {
            rec.declare(SignalId(i as u32), &s.name, &s.ty, &s.value);
        }
        self.vcd = Some(rec);
    }

    /// Finishes VCD recording and returns the file contents, if recording
    /// was enabled.
    pub fn take_vcd(&mut self) -> Option<String> {
        self.vcd.take().map(|r| r.finish(self.now))
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Kernel statistics.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Current value of a signal.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this simulator.
    #[must_use]
    pub fn value(&self, s: SignalId) -> &Value {
        &self.signals[s.index()].value
    }

    /// Read-only snapshot of a signal.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this simulator.
    #[must_use]
    pub fn signal_info(&self, s: SignalId) -> SignalInfo {
        let sig = &self.signals[s.index()];
        SignalInfo {
            name: sig.name.clone(),
            ty: sig.ty.clone(),
            value: sig.value.clone(),
            last_event: sig.last_event,
            event_count: sig.event_count,
        }
    }

    /// Number of activations of a process so far.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this simulator.
    #[must_use]
    pub fn process_runs(&self, p: ProcessId) -> u64 {
        self.processes[p.index()].runs
    }

    /// Looks up a signal id by name.
    #[must_use]
    pub fn find_signal(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(|i| SignalId(i as u32))
    }

    /// Injects a value onto a signal from outside any process (testbench
    /// poke); takes effect at the next delta of the current instant.
    ///
    /// # Panics
    ///
    /// Panics on type mismatch.
    pub fn poke(&mut self, s: SignalId, v: Value) {
        let sig = &self.signals[s.index()];
        let v = sig.ty.clamp(v);
        assert!(
            sig.ty.admits(&v),
            "poke of {} with incompatible {v:?}",
            sig.name
        );
        self.delta_drives.push((s, v));
    }

    /// Whether any activity is scheduled: elaboration still owed to
    /// registered processes, pending same-instant drives, future timed
    /// drives, or armed timeouts. `O(1)` and exact (the kernel counts
    /// live entries per structure, independent of queue backend).
    ///
    /// A `false` answer means further [`Simulator::run_for`] calls can
    /// never change any signal — used by run-to-quiescence loops.
    #[must_use]
    pub fn pending_activity(&self) -> bool {
        (!self.initialized && !self.processes.is_empty())
            || !self.delta_drives.is_empty()
            || self.live_drives > 0
            || self.armed_timers > 0
    }

    /// Runs until `deadline` (inclusive of activity at the deadline
    /// instant).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DeltaOverflow`] on combinational oscillation.
    pub fn run_until(&mut self, deadline: SimTime) -> Result<(), SimError> {
        if !self.initialized {
            self.initialize()?;
        }
        // Settle any externally poked activity at the current instant.
        self.settle(vec![])?;
        while let Some(t) = self.next_instant() {
            if t > deadline {
                break;
            }
            self.now = t;
            self.stats.instants += 1;
            let woken = self.begin_instant();
            self.settle(woken)?;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        Ok(())
    }

    /// Runs for a span from the current time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DeltaOverflow`] on combinational oscillation.
    pub fn run_for(&mut self, d: Duration) -> Result<(), SimError> {
        let deadline = self.now.saturating_add(d);
        self.run_until(deadline)
    }

    /// The next instant with scheduled activity, if any. On the wheel
    /// this reads per-level occupancy bitmaps and cached slot minima;
    /// on the heap oracle it is the classic peek that discards lazily
    /// cancelled timer entries from the top as a side effect.
    pub fn next_instant(&mut self) -> Option<SimTime> {
        let processes = &self.processes;
        self.queues.next_at(
            |pid, token, at| {
                let slot = &processes[pid.index()];
                slot.timer_token == token && slot.wake_at == Some(at)
            },
            &mut self.stats,
        )
    }

    /// Elaboration: every process runs once at time zero.
    fn initialize(&mut self) -> Result<(), SimError> {
        self.initialized = true;
        let all: Vec<ProcessId> = (0..self.processes.len() as u32).map(ProcessId).collect();
        self.run_processes_delta(&all, 0);
        self.settle(vec![])
    }

    /// At a new instant: move due timed drives into the delta queue and
    /// collect timer-woken processes in schedule order. Due entries pop
    /// from the active queue backend and are re-sorted by `(at, seq)`,
    /// reproducing the heaps' exact ascending pop order.
    fn begin_instant(&mut self) -> Vec<ProcessId> {
        let mut due = std::mem::take(&mut self.due_buf);
        debug_assert!(due.is_empty());
        self.queues.advance(self.now, &mut self.stats);
        {
            let processes = &self.processes;
            self.queues.take_due(
                self.now,
                &mut due,
                |pid, token, at| {
                    let slot = &processes[pid.index()];
                    slot.timer_token == token && slot.wake_at == Some(at)
                },
                &mut self.stats,
            );
        }
        due.sort_unstable_by_key(|e| (e.at, e.seq));
        let mut woken = std::mem::take(&mut self.run_queue_pool);
        woken.clear();
        for e in due.drain(..) {
            debug_assert!(e.at <= self.now);
            match e.kind {
                EntryKind::Drive { sig, value } => {
                    self.live_drives -= 1;
                    self.delta_drives.push((sig, value));
                }
                EntryKind::Timer { pid, .. } => {
                    // `take_due` already validated liveness; dead
                    // entries never reach this loop on either backend.
                    let slot = &mut self.processes[pid.index()];
                    slot.wake_at = None;
                    slot.timer_token += 1;
                    self.armed_timers -= 1;
                    self.stats.timer_wakeups += 1;
                    woken.push(pid);
                }
            }
        }
        self.due_buf = due;
        woken
    }

    /// Delta loop at the current instant until quiescent. `pending` are
    /// the timer-woken processes to run in the first delta.
    fn settle(&mut self, mut pending: Vec<ProcessId>) -> Result<(), SimError> {
        // Callers that have no first-delta wake list pass `vec![]`; adopt
        // the pooled buffer so the loop below runs allocation-free.
        if pending.capacity() == 0 {
            pending = std::mem::take(&mut self.run_queue_pool);
            pending.clear();
        }
        let mut delta: u32 = 0;
        loop {
            // Clear last delta's event marks (flag and packed bit).
            for s in self.fresh_events.drain(..) {
                self.signals[s.index()].event_now = false;
                self.event_bits[s.index() >> 6] &= !(1u64 << (s.index() & 63));
            }
            // Apply pending drives in one pass; last writer wins within a
            // delta (sequential overwrite, like a VHDL driver updated
            // twice). The old value moves into `prev` — no clones.
            let mut drives = std::mem::take(&mut self.delta_drives);
            for (sid, v) in drives.drain(..) {
                let sig = &mut self.signals[sid.index()];
                if sig.value != v {
                    sig.prev = std::mem::replace(&mut sig.value, v);
                    sig.last_event = Some(self.now);
                    sig.event_count += 1;
                    if let Some(vcd) = &mut self.vcd {
                        vcd.change(self.now, sid, &sig.value);
                    }
                    if !sig.event_now {
                        sig.event_now = true;
                        self.event_bits[sid.index() >> 6] |= 1u64 << (sid.index() & 63);
                        self.stats.events += 1;
                        self.fresh_events.push(sid);
                    }
                }
            }
            // Return the drained buffer so its capacity survives the
            // delta (nothing pushed `delta_drives` during the loop).
            self.delta_drives = drives;

            // Wake the watchers of this delta's events through the
            // inverted index, purging stale entries as we pass.
            let mut to_run = std::mem::take(&mut pending);
            if !self.fresh_events.is_empty() {
                let timer_woken = to_run.len();
                self.stamp += 1;
                let stamp = self.stamp;
                let processes = &mut self.processes;
                let watchers = &mut self.watchers;
                for &p in &to_run {
                    processes[p.index()].wake_stamp = stamp;
                }
                let mut inspected = 0u64;
                for &sid in &self.fresh_events {
                    // A rising-filtered watcher only wakes when the event
                    // left the signal at `Bit::One`.
                    let is_one = matches!(self.signals[sid.index()].value, Value::Bit(Bit::One));
                    let wl = &mut watchers[sid.index()];
                    let before = wl.entries.len();
                    wl.entries.retain(|&(pid, epoch)| {
                        let slot = &mut processes[pid.index()];
                        if slot.epoch != epoch {
                            return false;
                        }
                        if (!slot.rising || is_one) && slot.wake_stamp != stamp {
                            slot.wake_stamp = stamp;
                            to_run.push(pid);
                        }
                        true
                    });
                    inspected += before as u64;
                    self.stats.stale_watchers_purged += (before - wl.entries.len()) as u64;
                    wl.stale = 0;
                }
                self.stats.event_wakeups += (to_run.len() - timer_woken) as u64;
                self.stats.scans_avoided += (self.processes.len() as u64).saturating_sub(inspected);
            }
            if to_run.is_empty() {
                self.run_queue_pool = to_run;
                return Ok(());
            }
            // Deterministic activation order: ascending process id, the
            // same order the reference full-scan kernel produces.
            to_run.sort_unstable();
            // Cancel pending timeouts of woken processes. The wheel
            // removes the entry in O(1) via its recorded slot location;
            // the heap oracle's entry dies lazily by token.
            for &p in &to_run {
                let slot = &mut self.processes[p.index()];
                if slot.wake_at.take().is_some() {
                    slot.timer_token += 1;
                    self.armed_timers -= 1;
                    self.stats.timers_cancelled += 1;
                    self.queues.cancel_timer(p);
                }
            }
            self.stats.deltas += 1;
            delta += 1;
            if delta > self.max_deltas {
                return Err(SimError::DeltaOverflow {
                    time: self.now,
                    limit: self.max_deltas,
                });
            }
            self.run_processes_delta(&to_run, delta);
            // Recycle the wake list for the next delta's watcher sweep.
            to_run.clear();
            pending = to_run;
        }
    }

    fn run_processes_delta(&mut self, list: &[ProcessId], delta: u32) {
        let mut drives = std::mem::take(&mut self.proc_drives_pool);
        let mut trains = std::mem::take(&mut self.proc_trains_pool);
        for &pid in list {
            let mut body = match self.processes[pid.index()].body.take() {
                Some(b) => b,
                None => continue,
            };
            drives.clear();
            trains.clear();
            let mut ctx = ProcCtx {
                signals: &self.signals,
                event_bits: &self.event_bits,
                now: self.now,
                delta,
                drives,
                trains,
                train_shells: std::mem::take(&mut self.train_shell_pool),
                wait_buf: self.sens_pool.pop().unwrap_or_default(),
            };
            let wait = body.run(&mut ctx);
            drives = ctx.drives;
            trains = ctx.trains;
            self.train_shell_pool = ctx.train_shells;
            // Reclaim the lent wait buffer if the process didn't take
            // it; taken buffers come home through `set_sensitivity`.
            let lent = ctx.wait_buf;
            self.recycle_sens(lent);
            self.processes[pid.index()].runs += 1;
            self.stats.process_runs += 1;
            for (sid, v, d) in drives.drain(..) {
                if d == Duration::ZERO {
                    self.delta_drives.push((sid, v));
                } else {
                    self.seq += 1;
                    self.queues
                        .insert_drive(self.now + d, self.seq, sid, v, &mut self.stats);
                    self.live_drives += 1;
                    self.stats.drive_queue_peak =
                        self.stats.drive_queue_peak.max(self.live_drives as u64);
                }
            }
            // Trains expand after the individual drives of the same
            // activation, beats in order — the shared `seq` counter
            // makes this ordering part of the determinism contract
            // (mirrored by `RefSimulator`).
            for train in trains.drain(..) {
                self.insert_train(train);
            }
            match wait {
                Wait::Event(sigs) => self.set_sensitivity(pid, sigs, false),
                Wait::Rising(sigs) => self.set_sensitivity(pid, sigs, true),
                Wait::Timeout(d) => {
                    self.set_sensitivity(pid, vec![], false);
                    self.arm_timer(pid, d);
                }
                Wait::EventOrTimeout(sigs, d) => {
                    self.set_sensitivity(pid, sigs, false);
                    self.arm_timer(pid, d);
                }
                Wait::Forever => self.set_sensitivity(pid, vec![], false),
                Wait::Same => {}
            }
            self.processes[pid.index()].body = Some(body);
        }
        self.proc_drives_pool = drives;
        self.proc_trains_pool = trains;
    }

    /// Lands a whole pre-computed drive train in one pass: beat `k`
    /// (0-based) schedules at `now + start + k·stride`, each beat taking
    /// the next `seq`, so the expansion is observationally identical to
    /// scheduling the beats one by one — at amortized O(1) per beat on
    /// the wheel instead of O(log n) heap sifts. A `start` of zero
    /// schedules the first beat at the current instant's boundary (it
    /// applies on a same-time queue iteration, not in the current
    /// delta — unlike a zero-delay [`ProcCtx::drive`]).
    fn insert_train(&mut self, train: DriveTrain) {
        let DriveTrain {
            sig,
            start,
            stride,
            mut values,
        } = train;
        self.stats.bulk_inserts += 1;
        self.stats.bulk_entries += values.len() as u64;
        let mut at = self.now + start;
        for v in values.drain(..) {
            self.seq += 1;
            self.queues
                .insert_drive(at, self.seq, sig, v, &mut self.stats);
            self.live_drives += 1;
            at += stride;
        }
        self.stats.drive_queue_peak = self.stats.drive_queue_peak.max(self.live_drives as u64);
        self.recycle_train_shell(values);
    }

    /// Returns a drained train-value buffer to the bounded shell pool
    /// feeding [`ProcCtx::drive_train`].
    fn recycle_train_shell(&mut self, v: Vec<Value>) {
        debug_assert!(v.is_empty());
        if v.capacity() > 0 && self.train_shell_pool.len() < 32 {
            self.train_shell_pool.push(v);
        }
    }

    /// Replaces a process's event sensitivity, maintaining the inverted
    /// index incrementally. Equal wait sets (the clocked-process steady
    /// state) are a no-op; otherwise old entries are invalidated by an
    /// epoch bump and mostly-stale lists are compacted.
    fn set_sensitivity(&mut self, pid: ProcessId, sigs: Vec<SignalId>, rising: bool) {
        let slot = &mut self.processes[pid.index()];
        if slot.sensitivity == sigs && slot.rising == rising {
            self.recycle_sens(sigs);
            return;
        }
        slot.rising = rising;
        let old = std::mem::replace(&mut slot.sensitivity, sigs);
        slot.epoch += 1;
        let epoch = slot.epoch;
        for &s in &old {
            let wl = &mut self.watchers[s.index()];
            wl.stale += 1;
            if wl.entries.len() >= 16 && wl.stale as usize * 2 >= wl.entries.len() {
                let processes = &self.processes;
                let before = wl.entries.len();
                wl.entries
                    .retain(|&(p, ep)| processes[p.index()].epoch == ep);
                self.stats.stale_watchers_purged += (before - wl.entries.len()) as u64;
                wl.stale = 0;
            }
        }
        self.recycle_sens(old);
        let slot = &self.processes[pid.index()];
        for &s in &slot.sensitivity {
            self.watchers[s.index()].entries.push((pid, epoch));
        }
    }

    /// Returns a displaced or unused wait-list buffer to the bounded
    /// sensitivity pool feeding [`ProcCtx::wait_buf`].
    fn recycle_sens(&mut self, mut v: Vec<SignalId>) {
        if v.capacity() > 0 && self.sens_pool.len() < 32 {
            v.clear();
            self.sens_pool.push(v);
        }
    }

    /// Arms a one-shot timeout for a process.
    fn arm_timer(&mut self, pid: ProcessId, d: Duration) {
        let at = self.now + d;
        let slot = &mut self.processes[pid.index()];
        // The kernel never re-arms over a live timer: `begin_instant`
        // and the settle cancel path both clear `wake_at` (and remove
        // the queue entry) before the process runs again.
        debug_assert!(slot.wake_at.is_none(), "re-arming a live timer");
        slot.timer_token += 1;
        slot.wake_at = Some(at);
        let token = slot.timer_token;
        self.seq += 1;
        self.queues
            .insert_timer(at, self.seq, pid, token, &mut self.stats);
        self.armed_timers += 1;
        self.stats.timer_queue_peak = self.stats.timer_queue_peak.max(self.armed_timers as u64);
    }

    /// Schedules a pre-computed value train onto a signal from outside
    /// any process (testbench-level, like [`Simulator::poke`]): beat `k`
    /// (0-based) applies at `now + start + k·stride`. One bulk pass over
    /// the time wheel — amortized O(1) per beat. A zero `start` (or
    /// stride) is legal; such beats apply at the current instant's
    /// boundary rather than in the current delta.
    ///
    /// # Panics
    ///
    /// Panics if any value is incompatible with the signal's type.
    pub fn schedule_drive_train(
        &mut self,
        s: SignalId,
        start: Duration,
        stride: Duration,
        values: &[Value],
    ) {
        if values.is_empty() {
            return;
        }
        let sig = &self.signals[s.index()];
        let mut buf = self.train_shell_pool.pop().unwrap_or_default();
        debug_assert!(buf.is_empty());
        buf.reserve(values.len());
        for v in values {
            let v = sig.ty.clamp(v.clone());
            assert!(
                sig.ty.admits(&v),
                "drive train on {} with incompatible {v:?}",
                sig.name
            );
            buf.push(v);
        }
        self.insert_train(DriveTrain {
            sig: s,
            start,
            stride,
            values: buf,
        });
    }

    /// Swaps the time-queue backend to the retired binary heaps,
    /// migrating all live entries through the canonical capture form.
    /// Test/benchmark ablation only — the wheel is the shipping path.
    #[doc(hidden)]
    pub fn use_heap_queues(&mut self) {
        if !self.queues.is_wheel() {
            return;
        }
        self.swap_backend(TimeQueues::new_heaps());
    }

    /// Swaps the time-queue backend back to the hierarchical timer
    /// wheel (see [`Simulator::use_heap_queues`]).
    #[doc(hidden)]
    pub fn use_wheel_queues(&mut self) {
        if self.queues.is_wheel() {
            return;
        }
        self.swap_backend(TimeQueues::new_wheel());
    }

    fn swap_backend(&mut self, mut next: TimeQueues) {
        let processes = &self.processes;
        let (drives, timers) = self.queues.canonical(|pid, token, at| {
            let slot = &processes[pid.index()];
            slot.timer_token == token && slot.wake_at == Some(at)
        });
        debug_assert_eq!(drives.len(), self.live_drives);
        debug_assert_eq!(timers.len(), self.armed_timers);
        // Migration inserts must not perturb the observable counters:
        // stash and restore stats around the rebuild.
        let stats = self.stats;
        next.rebuild(self.now, &drives, &timers, &mut self.stats);
        self.stats = stats;
        self.queues = next;
    }

    /// Name of a process (for reports).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this simulator.
    #[must_use]
    pub fn process_name(&self, p: ProcessId) -> &str {
        &self.processes[p.index()].name
    }

    /// Captures all kernel-owned state into a [`SimState`].
    ///
    /// # State-ownership contract
    ///
    /// The kernel owns and captures everything needed to resume the
    /// event schedule bit-identically: signals, per-process scheduling
    /// state (sensitivity, epoch, timer token, wake stamp, run count),
    /// the time queues (canonicalized — drives and timers each sorted by
    /// `(at, seq)`, dead timer entries purged — so the serialized form
    /// is identical whichever queue backend produced it and the wheel is
    /// simply rebuilt on load), pending delta drives, fresh-event marks, the
    /// `seq`/`stamp` counters, time, the elaboration flag, the delta
    /// bound, and statistics. It does **not** own process bodies:
    /// any state a body keeps inside its closure is invisible here and
    /// must be captured by whoever registered the process (the
    /// backplane externalizes all such state for exactly this reason).
    /// An active VCD recorder is likewise not part of the state;
    /// recording across a restore that rewinds time produces a
    /// non-monotone file.
    #[must_use]
    pub fn save_state(&self) -> SimState {
        let procs = self
            .processes
            .iter()
            .map(|p| ProcState {
                name: p.name.clone(),
                sensitivity: p.sensitivity.clone(),
                rising: p.rising,
                epoch: p.epoch,
                wake_at: p.wake_at,
                timer_token: p.timer_token,
                wake_stamp: p.wake_stamp,
                runs: p.runs,
            })
            .collect();
        // Canonical queue capture: live entries only, each kind sorted
        // by `(at, seq)` — dead heap-oracle timers are purged here, and
        // the wheel never holds any.
        let (timed_drives, timers) = self.queues.canonical(|pid, token, at| {
            let slot = &self.processes[pid.index()];
            slot.timer_token == token && slot.wake_at == Some(at)
        });
        debug_assert_eq!(timed_drives.len(), self.live_drives);
        debug_assert_eq!(timers.len(), self.armed_timers);
        SimState {
            signals: self.signals.clone(),
            procs,
            delta_drives: self.delta_drives.clone(),
            timed_drives,
            timers,
            fresh_events: self.fresh_events.clone(),
            seq: self.seq,
            stamp: self.stamp,
            now: self.now,
            initialized: self.initialized,
            max_deltas: self.max_deltas,
            stats: self.stats,
        }
    }

    /// Restores a previously captured [`SimState`], making this
    /// simulator resume bit-identically to the captured one (provided
    /// its process bodies are in an equivalent state — see
    /// [`Simulator::save_state`]). The inverted sensitivity index is
    /// rebuilt from the captured sensitivity sets, so no stale watcher
    /// entries survive a restore.
    ///
    /// The target must be structurally identical to the simulator that
    /// produced the state: same signals (by name, in order) and same
    /// processes (by name, in order). Signal *values* may differ — that
    /// is the point.
    ///
    /// The snapshot is backend-portable: the canonical `(at, seq)`
    /// capture re-files into whichever queue backend this simulator
    /// uses (wheel or heap oracle), and the replay is bit-identical
    /// either way. One caveat follows from the re-filing: the wheel's
    /// *filing* telemetry ([`SimStats::wheel_cascades`],
    /// [`SimStats::wheel_slot_peak`], [`SimStats::overflow_parked`])
    /// is path-dependent — an entry originally filed at a coarse level
    /// (paying cascades on the way down) may file directly at a fine
    /// level relative to the restore-time cursor — so those three
    /// counters may diverge from an uninterrupted run even though
    /// every observable event does not.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StateMismatch`] (leaving this simulator
    /// untouched) if the tables don't line up.
    pub fn load_state(&mut self, state: &SimState) -> Result<(), SimError> {
        if state.signals.len() != self.signals.len() {
            return Err(SimError::StateMismatch {
                reason: format!(
                    "snapshot has {} signals, simulator has {}",
                    state.signals.len(),
                    self.signals.len()
                ),
            });
        }
        if state.procs.len() != self.processes.len() {
            return Err(SimError::StateMismatch {
                reason: format!(
                    "snapshot has {} processes, simulator has {}",
                    state.procs.len(),
                    self.processes.len()
                ),
            });
        }
        for (i, (have, want)) in self.signals.iter().zip(&state.signals).enumerate() {
            if have.name != want.name {
                return Err(SimError::StateMismatch {
                    reason: format!(
                        "signal {i} is {:?}, snapshot expects {:?}",
                        have.name, want.name
                    ),
                });
            }
        }
        for (i, (have, want)) in self.processes.iter().zip(&state.procs).enumerate() {
            if have.name != want.name {
                return Err(SimError::StateMismatch {
                    reason: format!(
                        "process {i} is {:?}, snapshot expects {:?}",
                        have.name, want.name
                    ),
                });
            }
        }

        self.signals.clone_from(&state.signals);
        // Rebuild the packed event mirror from the restored flags.
        self.event_bits.iter_mut().for_each(|w| *w = 0);
        for (i, sig) in self.signals.iter().enumerate() {
            if sig.event_now {
                self.event_bits[i >> 6] |= 1u64 << (i & 63);
            }
        }
        for (slot, ps) in self.processes.iter_mut().zip(&state.procs) {
            slot.sensitivity.clone_from(&ps.sensitivity);
            slot.rising = ps.rising;
            slot.epoch = ps.epoch;
            slot.wake_at = ps.wake_at;
            slot.timer_token = ps.timer_token;
            slot.wake_stamp = ps.wake_stamp;
            slot.runs = ps.runs;
        }
        // Rebuild the inverted index from scratch: one live entry per
        // (process, watched signal) under the restored epoch.
        for wl in &mut self.watchers {
            wl.entries.clear();
            wl.stale = 0;
        }
        for (i, ps) in state.procs.iter().enumerate() {
            let pid = ProcessId(i as u32);
            for s in &ps.sensitivity {
                self.watchers[s.index()].entries.push((pid, ps.epoch));
            }
        }
        self.delta_drives.clone_from(&state.delta_drives);
        self.fresh_events.clone_from(&state.fresh_events);
        // Rebuild the active queue backend from the canonical capture
        // (the wheel re-bases its origin at the restored time; every
        // captured entry satisfies `at >= now`). The stats overwrite
        // below erases the rebuild's insert side effects.
        self.queues.rebuild(
            state.now,
            &state.timed_drives,
            &state.timers,
            &mut self.stats,
        );
        self.live_drives = state.timed_drives.len();
        self.armed_timers = state.timers.len();
        self.seq = state.seq;
        self.stamp = state.stamp;
        self.now = state.now;
        self.initialized = state.initialized;
        self.max_deltas = state.max_deltas;
        self.stats = state.stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::RefSimulator;

    #[test]
    fn clock_toggles_at_period() {
        let mut sim = Simulator::new();
        let clk = sim.add_bit("CLK");
        sim.add_clock("gen", clk, Duration::from_ns(100));
        sim.run_for(Duration::from_ns(249)).unwrap();
        // t=0: ->1 (init), t=50: ->0, t=100: ->1, t=150: ->0, t=200: ->1.
        let info = sim.signal_info(clk);
        assert_eq!(info.event_count, 5);
        assert_eq!(info.value, Value::Bit(Bit::One));
    }

    #[test]
    fn delta_cycle_two_phase_semantics() {
        // A process that swaps two signals must observe the *old* values:
        // after one exchange a=old_b and b=old_a simultaneously.
        let mut sim = Simulator::new();
        let a = sim.add_signal("A", Type::INT16, Value::Int(1));
        let b = sim.add_signal("B", Type::INT16, Value::Int(2));
        let go = sim.add_bit("GO");
        sim.add_process(
            "swap",
            FnProcess::new(move |ctx| {
                if ctx.rose(go) {
                    let va = ctx.read(a).clone();
                    let vb = ctx.read(b).clone();
                    ctx.drive(a, vb);
                    ctx.drive(b, va);
                }
                Wait::Event(vec![go])
            }),
        );
        sim.run_until(SimTime::ZERO).unwrap();
        sim.poke(go, Value::Bit(Bit::One));
        sim.run_for(Duration::from_ns(1)).unwrap();
        assert_eq!(sim.value(a), &Value::Int(2));
        assert_eq!(sim.value(b), &Value::Int(1));
    }

    #[test]
    fn chained_deltas_converge_in_same_instant() {
        // inverter chain: x -> y -> z, all at time 0 via deltas.
        let mut sim = Simulator::new();
        let x = sim.add_bit("X");
        let y = sim.add_bit("Y");
        let z = sim.add_bit("Z");
        sim.add_process(
            "inv1",
            FnProcess::new(move |ctx| {
                let v = ctx.read_bit(x);
                ctx.drive(y, Value::Bit(!v));
                Wait::Event(vec![x])
            }),
        );
        sim.add_process(
            "inv2",
            FnProcess::new(move |ctx| {
                let v = ctx.read_bit(y);
                ctx.drive(z, Value::Bit(!v));
                Wait::Event(vec![y])
            }),
        );
        sim.run_until(SimTime::ZERO).unwrap();
        assert_eq!(sim.value(y), &Value::Bit(Bit::One));
        assert_eq!(sim.value(z), &Value::Bit(Bit::Zero));
        assert_eq!(
            sim.now(),
            SimTime::ZERO,
            "all settled without advancing time"
        );
        sim.poke(x, Value::Bit(Bit::One));
        sim.run_until(SimTime::ZERO).unwrap();
        assert_eq!(sim.value(y), &Value::Bit(Bit::Zero));
        assert_eq!(sim.value(z), &Value::Bit(Bit::One));
    }

    #[test]
    fn oscillation_detected() {
        let mut sim = Simulator::new();
        let x = sim.add_bit("X");
        sim.add_process(
            "ringosc",
            FnProcess::new(move |ctx| {
                let v = ctx.read_bit(x);
                ctx.drive(x, Value::Bit(!v));
                Wait::Event(vec![x])
            }),
        );
        sim.set_max_deltas(50);
        let err = sim.run_until(SimTime::ZERO).unwrap_err();
        assert!(matches!(err, SimError::DeltaOverflow { limit: 50, .. }));
        assert!(err.to_string().contains("oscillation"));
    }

    #[test]
    fn drive_after_schedules_in_future() {
        let mut sim = Simulator::new();
        let d = sim.add_signal("D", Type::INT16, Value::Int(0));
        sim.add_process(
            "pulse",
            FnProcess::new(move |ctx| {
                ctx.drive_after(d, Value::Int(7), Duration::from_ns(30));
                Wait::Forever
            }),
        );
        sim.run_until(SimTime::from_ns(29)).unwrap();
        assert_eq!(sim.value(d), &Value::Int(0));
        sim.run_until(SimTime::from_ns(30)).unwrap();
        assert_eq!(sim.value(d), &Value::Int(7));
        assert_eq!(sim.signal_info(d).last_event, Some(SimTime::from_ns(30)));
    }

    #[test]
    fn timeout_wakes_process() {
        let mut sim = Simulator::new();
        let n = sim.add_signal("N", Type::INT16, Value::Int(0));
        sim.add_process(
            "ticker",
            FnProcess::new(move |ctx| {
                let v = ctx.read_int(n);
                ctx.drive(n, Value::Int(v + 1));
                Wait::Timeout(Duration::from_ns(10))
            }),
        );
        sim.run_until(SimTime::from_ns(45)).unwrap();
        // Runs at 0,10,20,30,40 -> N goes to 5.
        assert_eq!(sim.value(n), &Value::Int(5));
    }

    #[test]
    fn event_cancels_timeout() {
        let mut sim = Simulator::new();
        let kick = sim.add_bit("KICK");
        let n = sim.add_signal("N", Type::INT16, Value::Int(0));
        sim.add_process(
            "waiter",
            FnProcess::new(move |ctx| {
                if ctx.event(kick) || ctx.now() > SimTime::ZERO {
                    let v = ctx.read_int(n);
                    ctx.drive(n, Value::Int(v + 1));
                }
                Wait::EventOrTimeout(vec![kick], Duration::from_ns(100))
            }),
        );
        sim.run_until(SimTime::ZERO).unwrap();
        sim.poke(kick, Value::Bit(Bit::One));
        sim.run_until(SimTime::from_ns(10)).unwrap();
        assert_eq!(sim.value(n), &Value::Int(1), "woken by event");
        // The 100ns timeout from the first wait must have been cancelled;
        // next wake is at ~100ns after the event wake (time 0) -> at 100.
        sim.run_until(SimTime::from_ns(120)).unwrap();
        assert_eq!(sim.value(n), &Value::Int(2), "woken once more by timeout");
        // The cancelled entry was removed from the wheel in O(1).
        assert!(sim.stats().timers_cancelled >= 1);
        assert_eq!(
            sim.stats().stale_timers_skipped,
            0,
            "the wheel never holds tombstones"
        );
    }

    #[test]
    fn no_event_when_same_value_driven() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("S", Type::INT16, Value::Int(5));
        sim.run_until(SimTime::ZERO).unwrap();
        sim.poke(s, Value::Int(5));
        sim.run_for(Duration::from_ns(1)).unwrap();
        assert_eq!(sim.signal_info(s).event_count, 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut sim = Simulator::new();
        let clk = sim.add_bit("CLK");
        sim.add_clock("gen", clk, Duration::from_ns(10));
        sim.run_for(Duration::from_ns(100)).unwrap();
        let st = sim.stats();
        assert!(st.process_runs >= 20);
        assert!(st.events >= 20);
        assert!(st.deltas >= 20);
        assert!(st.instants >= 20);
        assert!(
            st.timer_wakeups >= 20,
            "clock reschedules via the timer queue"
        );
        assert!(st.timer_queue_peak >= 1);
    }

    #[test]
    fn find_signal_by_name() {
        let mut sim = Simulator::new();
        let a = sim.add_bit("ALPHA");
        assert_eq!(sim.find_signal("ALPHA"), Some(a));
        assert_eq!(sim.find_signal("BETA"), None);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn type_mismatch_poke_panics() {
        let mut sim = Simulator::new();
        let s = sim.add_bit("S");
        sim.poke(s, Value::Int(3));
    }

    #[test]
    fn deterministic_process_order() {
        // Two processes drive the same signal in the same delta; the later
        // process id wins (document the deterministic rule).
        let mut sim = Simulator::new();
        let s = sim.add_signal("S", Type::INT16, Value::Int(0));
        let go = sim.add_bit("GO");
        sim.add_process(
            "p1",
            FnProcess::new(move |ctx| {
                if ctx.event(go) {
                    ctx.drive(s, Value::Int(1));
                }
                Wait::Event(vec![go])
            }),
        );
        sim.add_process(
            "p2",
            FnProcess::new(move |ctx| {
                if ctx.event(go) {
                    ctx.drive(s, Value::Int(2));
                }
                Wait::Event(vec![go])
            }),
        );
        sim.run_until(SimTime::ZERO).unwrap();
        sim.poke(go, Value::Bit(Bit::One));
        sim.run_for(Duration::from_ns(1)).unwrap();
        assert_eq!(sim.value(s), &Value::Int(2));
    }

    #[test]
    fn forever_wait_never_resumes() {
        let mut sim = Simulator::new();
        let n = sim.add_signal("N", Type::INT16, Value::Int(0));
        sim.add_process(
            "once",
            FnProcess::new(move |ctx| {
                let v = ctx.read_int(n);
                ctx.drive(n, Value::Int(v + 1));
                Wait::Forever
            }),
        );
        let clk = sim.add_bit("CLK");
        sim.add_clock("gen", clk, Duration::from_ns(10));
        sim.run_for(Duration::from_ns(200)).unwrap();
        assert_eq!(
            sim.value(n),
            &Value::Int(1),
            "ran exactly once at elaboration"
        );
    }

    #[test]
    fn run_until_is_resumable() {
        let mut sim = Simulator::new();
        let clk = sim.add_bit("CLK");
        sim.add_clock("gen", clk, Duration::from_ns(10));
        sim.run_until(SimTime::from_ns(20)).unwrap();
        let c1 = sim.signal_info(clk).event_count;
        sim.run_until(SimTime::from_ns(40)).unwrap();
        let c2 = sim.signal_info(clk).event_count;
        assert!(c2 > c1);
        assert_eq!(sim.now(), SimTime::from_ns(40));
    }

    // -----------------------------------------------------------------
    // New scheduler-core invariants.
    // -----------------------------------------------------------------

    #[test]
    fn wakeup_cost_is_proportional_to_watchers_not_processes() {
        // 1000 idle processes each watch a private, never-driven signal;
        // one counter watches the single active clock. Wakeup work per
        // delta must be O(watchers of the active signal), not O(1001).
        const IDLE: usize = 1000;
        let mut sim = Simulator::new();
        let clk = sim.add_bit("CLK");
        sim.add_clock("gen", clk, Duration::from_ns(100));
        let q = sim.add_signal("Q", Type::INT16, Value::Int(0));
        sim.add_process(
            "ctr",
            FnProcess::new(move |ctx| {
                if ctx.rose(clk) {
                    let v = ctx.read_int(q);
                    ctx.drive(q, Value::Int(v + 1));
                }
                Wait::Event(vec![clk])
            }),
        );
        let mut idle_ids = vec![];
        for i in 0..IDLE {
            let quiet = sim.add_bit(format!("QUIET{i}"));
            idle_ids.push(sim.add_process(
                format!("idle{i}"),
                FnProcess::new(move |_ctx| Wait::Event(vec![quiet])),
            ));
        }
        sim.run_for(Duration::from_us(10)).unwrap();
        let st = sim.stats();
        // Clock toggles every 50ns: edges at 0,50,...,10000 inclusive.
        let clk_events = sim.signal_info(clk).event_count;
        assert_eq!(clk_events, 201);
        // Idle processes ran exactly once, at elaboration.
        for &p in &idle_ids {
            assert_eq!(sim.process_runs(p), 1);
        }
        // Only the counter watches an active signal, so event wakeups
        // equal the clock's event count — the 1000 idle processes are
        // never even inspected.
        assert_eq!(
            st.event_wakeups, clk_events,
            "only the counter wakes on events"
        );
        // Every event delta carries exactly one signal event here, and a
        // full-scan kernel would have inspected all 1002 processes in
        // each; the index inspects at most one watcher instead.
        assert!(
            st.scans_avoided >= st.events * (IDLE as u64 + 1),
            "scans_avoided {} must dwarf the full-scan cost ({} event deltas x {} processes)",
            st.scans_avoided,
            st.events,
            IDLE + 2
        );
    }

    #[test]
    fn wait_same_preserves_sensitivity() {
        let mut sim = Simulator::new();
        let clk = sim.add_bit("CLK");
        sim.add_clock("gen", clk, Duration::from_ns(10));
        let n = sim.add_signal("N", Type::INT16, Value::Int(0));
        let mut first = true;
        sim.add_process(
            "same",
            FnProcess::new(move |ctx| {
                if ctx.rose(clk) {
                    let v = ctx.read_int(n);
                    ctx.drive(n, Value::Int(v + 1));
                }
                if first {
                    first = false;
                    Wait::Event(vec![clk])
                } else {
                    Wait::Same
                }
            }),
        );
        sim.run_for(Duration::from_ns(95)).unwrap();
        // Rising edges at 0,10,...,90 -> 10 increments.
        assert_eq!(sim.value(n), &Value::Int(10));
    }

    #[test]
    fn same_without_prior_sensitivity_waits_forever() {
        let mut sim = Simulator::new();
        let n = sim.add_signal("N", Type::INT16, Value::Int(0));
        sim.add_process(
            "noop",
            FnProcess::new(move |ctx| {
                let v = ctx.read_int(n);
                ctx.drive(n, Value::Int(v + 1));
                Wait::Same
            }),
        );
        let clk = sim.add_bit("CLK");
        sim.add_clock("gen", clk, Duration::from_ns(10));
        sim.run_for(Duration::from_ns(100)).unwrap();
        assert_eq!(sim.value(n), &Value::Int(1), "elaboration only");
    }

    #[test]
    fn clocked_process_runs_per_edge_and_halts() {
        let mut sim = Simulator::new();
        let clk = sim.add_bit("CLK");
        sim.add_clock("gen", clk, Duration::from_ns(10));
        let n = sim.add_signal("N", Type::INT16, Value::Int(0));
        let rising = sim.add_clocked("rise", clk, Edge::Rising, move |ctx| {
            let v = ctx.read_int(n);
            ctx.drive(n, Value::Int(v + 1));
            if v + 1 >= 3 {
                ClockControl::Halt
            } else {
                ClockControl::Continue
            }
        });
        let m = sim.add_signal("M", Type::INT16, Value::Int(0));
        sim.add_clocked("fall", clk, Edge::Falling, move |ctx| {
            let v = ctx.read_int(m);
            ctx.drive(m, Value::Int(v + 1));
            ClockControl::Continue
        });
        sim.run_for(Duration::from_ns(200)).unwrap();
        // Rising counter halted itself after 3 edges.
        assert_eq!(sim.value(n), &Value::Int(3));
        // Falling edges at 5,15,...: 20 of them in 200ns.
        assert_eq!(sim.value(m), &Value::Int(20));
        // After the halt the rising process stops being activated.
        let runs_at_halt = sim.process_runs(rising);
        sim.run_for(Duration::from_ns(200)).unwrap();
        assert_eq!(sim.process_runs(rising), runs_at_halt);
    }

    #[test]
    fn pending_activity_reflects_queues() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("S", Type::INT16, Value::Int(0));
        sim.add_process("once", FnProcess::new(move |_| Wait::Forever));
        assert!(
            sim.pending_activity(),
            "elaboration is still owed before init"
        );
        sim.run_until(SimTime::ZERO).unwrap();
        assert!(!sim.pending_activity(), "quiescent after elaboration");
        sim.poke(s, Value::Int(1));
        assert!(sim.pending_activity(), "poke schedules a delta drive");
        sim.run_for(Duration::from_ns(1)).unwrap();
        assert!(!sim.pending_activity(), "drained again");

        let mut sim = Simulator::new();
        let clk = sim.add_bit("CLK");
        sim.add_clock("gen", clk, Duration::from_ns(10));
        sim.run_for(Duration::from_ns(25)).unwrap();
        assert!(
            sim.pending_activity(),
            "free-running clock keeps a timer armed"
        );
    }

    #[test]
    fn next_instant_skips_cancelled_timers() {
        let mut sim = Simulator::new();
        let kick = sim.add_bit("KICK");
        sim.add_process(
            "waiter",
            FnProcess::new(move |_ctx| Wait::EventOrTimeout(vec![kick], Duration::from_ns(50))),
        );
        sim.run_until(SimTime::ZERO).unwrap();
        assert_eq!(sim.next_instant(), Some(SimTime::from_ns(50)));
        // Event wake cancels the 50ns timeout and re-arms at now+50.
        sim.poke(kick, Value::Bit(Bit::One));
        sim.run_until(SimTime::from_ns(10)).unwrap();
        assert_eq!(sim.next_instant(), Some(SimTime::from_ns(50)));
        sim.run_until(SimTime::from_ns(60)).unwrap();
        assert_eq!(sim.next_instant(), Some(SimTime::from_ns(100)));
    }

    #[test]
    fn next_instant_interleaves_rational_ratio_clock_domains() {
        // Two clock domains on one global femtosecond axis: a base
        // 10ns-period clock and a slow domain at ClockRatio 5:2 (25ns
        // period). next_instant must walk the union of both half-period
        // toggle streams — 5ns, 10ns, 12.5ns(=12500ps), 15ns, ... — and
        // the timer wheel must deliver every edge of both periods, so a
        // slow domain takes proportionally fewer edges with no kernel
        // special-casing.
        use crate::time::ClockRatio;
        use std::cell::Cell;
        use std::rc::Rc;
        let mut sim = Simulator::new();
        let base_period = Duration::from_ns(10);
        let slow_period = ClockRatio::new(5, 2).scale(base_period);
        assert_eq!(slow_period, Duration::from_ps(25_000));
        let fast = sim.add_bit("FAST_CLK");
        let slow = sim.add_bit("SLOW_CLK");
        sim.add_clock("fast_gen", fast, base_period);
        sim.add_clock("slow_gen", slow, slow_period);
        let fast_rises = Rc::new(Cell::new(0u64));
        let slow_rises = Rc::new(Cell::new(0u64));
        let (fr, sr) = (Rc::clone(&fast_rises), Rc::clone(&slow_rises));
        sim.add_process(
            "edge_counter",
            FnProcess::new(move |ctx| {
                if ctx.rose(fast) {
                    fr.set(fr.get() + 1);
                }
                if ctx.rose(slow) {
                    sr.set(sr.get() + 1);
                }
                Wait::Event(vec![fast, slow])
            }),
        );
        sim.run_until(SimTime::ZERO).unwrap();
        // The next instants are the interleaved half-period toggles.
        for expect_fs in [5_000_000u64, 10_000_000, 12_500_000, 15_000_000] {
            let next = sim.next_instant().expect("clock toggle scheduled");
            assert_eq!(next, SimTime::from_fs(expect_fs));
            sim.run_until(next).unwrap();
        }
        // Through 495ns: the fast clock rose 50 times (t = 0, 10, ...,
        // 490), the slow clock exactly 2/5 as often (t = 0, 25, ...,
        // 475) — proportionally fewer edges at the rational ratio.
        sim.run_until(SimTime::from_ns(495)).unwrap();
        assert_eq!(fast_rises.get(), 50);
        assert_eq!(slow_rises.get(), 20);
        assert_eq!(fast_rises.get() * 2, slow_rises.get() * 5);
    }

    #[test]
    fn cancelled_last_timer_reports_no_phantom_pending_work() {
        // A process holds the ONLY live timer (EventOrTimeout). An event
        // wake cancels that timer — the wheel removes the entry eagerly
        // in O(1) — and the process parks forever. Nothing must make
        // pending_activity report phantom work, and next_instant must
        // report no scheduled instant.
        let mut sim = Simulator::new();
        let kick = sim.add_bit("KICK");
        let mut woken = false;
        sim.add_process(
            "waiter",
            FnProcess::new(move |ctx| {
                if ctx.event(kick) {
                    woken = true;
                }
                if woken {
                    Wait::Forever
                } else {
                    Wait::EventOrTimeout(vec![kick], Duration::from_ns(500))
                }
            }),
        );
        sim.run_until(SimTime::ZERO).unwrap();
        assert!(sim.pending_activity(), "timer armed");
        assert_eq!(sim.next_instant(), Some(SimTime::from_ns(500)));
        sim.poke(kick, Value::Bit(Bit::One));
        sim.run_for(Duration::from_ns(1)).unwrap();
        // The 500ns entry is gone. No live timers, no drives, nothing
        // pending anywhere in the wheel.
        assert!(
            !sim.pending_activity(),
            "a cancelled timer must not count as pending work"
        );
        assert_eq!(
            sim.next_instant(),
            None,
            "next_instant must not report the cancelled entry"
        );
        assert!(sim.stats().timers_cancelled >= 1);
        // And running past the dead deadline changes nothing.
        let events_before = sim.stats().events;
        sim.run_until(SimTime::from_ns(1000)).unwrap();
        assert_eq!(sim.stats().events, events_before);
    }

    #[test]
    fn repeated_cancellations_keep_armed_timer_count_exact() {
        // Ten event wakes cancel ten armed timers; the live-timer
        // count backing pending_activity must stay exact throughout.
        let mut sim = Simulator::new();
        let kick = sim.add_bit("KICK");
        sim.add_process(
            "rearm",
            FnProcess::new(move |_ctx| Wait::EventOrTimeout(vec![kick], Duration::from_us(10))),
        );
        sim.run_until(SimTime::ZERO).unwrap();
        for i in 0..10i64 {
            let v = if i % 2 == 0 { Bit::One } else { Bit::Zero };
            sim.poke(kick, Value::Bit(v));
            sim.run_for(Duration::from_ns(1)).unwrap();
            assert!(
                sim.pending_activity(),
                "re-armed timer after wake {i} is live"
            );
        }
        // Only the most recent re-arm is live: next_instant must land on
        // the latest deadline — the last wake happened at 9ns (just
        // before the final 1ns advance to 10ns).
        let next = sim.next_instant().expect("one live timer");
        assert_eq!(next, SimTime::from_ns(9) + Duration::from_us(10));
    }

    #[test]
    fn rapid_sensitivity_churn_stays_consistent() {
        // A process alternates its watch set between A and B after every
        // wake, while pokes land in the pattern A,A,B,B,A,A,... with an
        // always-changing value. The wake schedule is then fully
        // deterministic: after elaboration the process watches B, so
        // exactly the pokes at even i >= 2 hit the watched signal (19 of
        // 40), and every hit flips the watch set. A kernel that leaks
        // stale watcher entries (waking the process on a signal it no
        // longer watches) produces strictly more wakes and fails the
        // exact counts below.
        let mut sim = Simulator::new();
        let a = sim.add_signal("A", Type::INT16, Value::Int(-1));
        let b = sim.add_signal("B", Type::INT16, Value::Int(-1));
        let n = sim.add_signal("N", Type::INT16, Value::Int(0));
        let mut watch_a = true;
        let pid = sim.add_process(
            "flip",
            FnProcess::new(move |ctx| {
                if ctx.event(a) || ctx.event(b) {
                    let v = ctx.read_int(n);
                    ctx.drive(n, Value::Int(v + 1));
                }
                watch_a = !watch_a;
                if watch_a {
                    Wait::Event(vec![a])
                } else {
                    Wait::Event(vec![b])
                }
            }),
        );
        sim.run_until(SimTime::ZERO).unwrap();
        assert_eq!(sim.process_runs(pid), 1, "elaboration only so far");
        for i in 0..40i64 {
            let sig = if (i / 2) % 2 == 0 { a } else { b };
            sim.poke(sig, Value::Int(i));
            sim.run_for(Duration::from_ns(1)).unwrap();
        }
        assert_eq!(sim.value(n), &Value::Int(19), "hits at i = 2, 4, ..., 38");
        assert_eq!(sim.process_runs(pid), 20, "one elaboration run + 19 wakes");
        // The churn left stale entries behind and traversal reclaimed
        // them — the index does not grow without bound.
        assert!(
            sim.stats().stale_watchers_purged > 0,
            "stale watcher entries must be purged during wake traversal"
        );
    }

    /// Netlist used by the save/load round-trip tests. All process state
    /// lives in signals (closures are stateless), so a kernel-level
    /// [`SimState`] alone is enough to resume bit-identically.
    fn checkpoint_netlist(sim: &mut Simulator) -> (SignalId, SignalId, SignalId, ProcessId) {
        let clk = sim.add_bit("CLK");
        let n = sim.add_signal("N", Type::INT16, Value::Int(0));
        let d = sim.add_signal("D", Type::INT16, Value::Int(0));
        sim.add_clock("gen", clk, Duration::from_ns(100));
        let count = sim.add_process(
            "count",
            FnProcess::new(move |ctx| {
                if ctx.rose(clk) {
                    let v = ctx.read_int(n);
                    ctx.drive(n, Value::Int(v + 1));
                }
                Wait::Event(vec![clk])
            }),
        );
        sim.add_process(
            "pulse",
            FnProcess::new(move |ctx| {
                let v = ctx.read_int(n);
                ctx.drive_after(d, Value::Int(v + 100), Duration::from_ns(30));
                Wait::Timeout(Duration::from_ns(70))
            }),
        );
        (clk, n, d, count)
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        // Uninterrupted oracle run on the full-scan reference kernel.
        let mut oracle = RefSimulator::new();
        let oclk = oracle.add_bit("CLK");
        let on = oracle.add_signal("N", Type::INT16, Value::Int(0));
        let od = oracle.add_signal("D", Type::INT16, Value::Int(0));
        oracle.add_clock(oclk, Duration::from_ns(100));
        oracle.add_process(FnProcess::new(move |ctx| {
            if ctx.rose(oclk) {
                let v = ctx.read_int(on);
                ctx.drive(on, Value::Int(v + 1));
            }
            Wait::Event(vec![oclk])
        }));
        oracle.add_process(FnProcess::new(move |ctx| {
            let v = ctx.read_int(on);
            ctx.drive_after(od, Value::Int(v + 100), Duration::from_ns(30));
            Wait::Timeout(Duration::from_ns(70))
        }));
        oracle.run_until(SimTime::from_ns(1000)).unwrap();

        let mut sim = Simulator::new();
        let (clk, n, d, count) = checkpoint_netlist(&mut sim);
        // Stop between the clock edge at 400 and the pulse timer at 420,
        // so the saved state carries live heaps: an armed clock timer, an
        // armed pulse timer, and an in-flight timed drive.
        sim.run_until(SimTime::from_ns(415)).unwrap();
        let saved = sim.save_state();
        let mid = (
            sim.value(n).clone(),
            sim.value(d).clone(),
            sim.process_runs(count),
            sim.stats(),
        );

        sim.run_until(SimTime::from_ns(1000)).unwrap();
        let first = (
            sim.signal_info(clk),
            sim.signal_info(n),
            sim.signal_info(d),
            sim.process_runs(count),
            sim.stats(),
        );
        for (have, want) in [(clk, oclk), (n, on), (d, od)] {
            assert_eq!(sim.signal_info(have).value, oracle.signal_info(want).value);
            assert_eq!(
                sim.signal_info(have).event_count,
                oracle.signal_info(want).event_count
            );
            assert_eq!(
                sim.signal_info(have).last_event,
                oracle.signal_info(want).last_event
            );
        }

        // Rewind and replay: every observable — values, event counts,
        // process run counters, kernel statistics — must re-converge to
        // the first continuation exactly.
        sim.load_state(&saved).unwrap();
        assert_eq!(sim.now(), SimTime::from_ns(415));
        assert_eq!(sim.value(n), &mid.0);
        assert_eq!(sim.value(d), &mid.1);
        assert_eq!(sim.process_runs(count), mid.2);
        assert_eq!(sim.stats(), mid.3, "stats restore verbatim");
        sim.run_until(SimTime::from_ns(1000)).unwrap();
        let second = (
            sim.signal_info(clk),
            sim.signal_info(n),
            sim.signal_info(d),
            sim.process_runs(count),
            sim.stats(),
        );
        assert_eq!(second.0.value, first.0.value);
        assert_eq!(second.0.event_count, first.0.event_count);
        assert_eq!(second.1.value, first.1.value);
        assert_eq!(second.1.event_count, first.1.event_count);
        assert_eq!(second.1.last_event, first.1.last_event);
        assert_eq!(second.2.value, first.2.value);
        assert_eq!(second.2.event_count, first.2.event_count);
        assert_eq!(second.2.last_event, first.2.last_event);
        assert_eq!(second.3, first.3, "process run counts replay identically");
        assert_eq!(second.4, first.4, "kernel stats replay identically");
    }

    #[test]
    fn load_state_mismatch_leaves_target_untouched() {
        let mut src = Simulator::new();
        checkpoint_netlist(&mut src);
        src.run_until(SimTime::from_ns(415)).unwrap();
        let saved = src.save_state();

        // Same shape, one renamed signal: rejected, target untouched.
        let mut other = Simulator::new();
        let clk = other.add_bit("CLK");
        let n = other.add_signal("M", Type::INT16, Value::Int(0));
        other.add_signal("D", Type::INT16, Value::Int(0));
        other.add_clock("gen", clk, Duration::from_ns(100));
        other.add_process(
            "count",
            FnProcess::new(move |ctx| {
                if ctx.rose(clk) {
                    let v = ctx.read_int(n);
                    ctx.drive(n, Value::Int(v + 1));
                }
                Wait::Event(vec![clk])
            }),
        );
        other.add_process("pulse", FnProcess::new(move |_| Wait::Forever));
        other.run_until(SimTime::from_ns(100)).unwrap();
        let before = (other.now(), other.value(n).clone(), other.stats());
        let err = other.load_state(&saved).unwrap_err();
        assert!(matches!(err, SimError::StateMismatch { .. }));
        assert!(err.to_string().contains("signal"), "names the mismatch");
        assert_eq!(other.now(), before.0);
        assert_eq!(other.value(n), &before.1);
        assert_eq!(other.stats(), before.2);
        // Still runnable after the refused load.
        other.run_until(SimTime::from_ns(200)).unwrap();

        // Different process count: also rejected.
        let mut short = Simulator::new();
        short.add_bit("CLK");
        short.add_signal("N", Type::INT16, Value::Int(0));
        short.add_signal("D", Type::INT16, Value::Int(0));
        let err = short.load_state(&saved).unwrap_err();
        assert!(matches!(err, SimError::StateMismatch { .. }));
    }
}
