//! The discrete-event kernel with VHDL semantics.
//!
//! Two-phase delta cycles: processes never see their own drives until the
//! next delta, signal updates that change a value produce *events*, events
//! wake sensitive processes, and simulated time only advances when the
//! current instant is quiescent. This mirrors the semantics of the
//! commercial VHDL simulator the paper's co-simulation environment was
//! built on.

use crate::signal::{Signal, SignalId, SignalInfo};
use crate::time::{Duration, SimTime};
use crate::vcd::VcdRecorder;
use cosma_core::{Bit, Type, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifies a process within a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

/// What a process waits for after returning from a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Wait {
    /// Resume when any listed signal has an event (`wait on a, b;`).
    Event(Vec<SignalId>),
    /// Resume after a span (`wait for 10 ns;`).
    Timeout(Duration),
    /// Resume on event or after the span, whichever first.
    EventOrTimeout(Vec<SignalId>, Duration),
    /// Never resume (`wait;`).
    Forever,
}

/// A simulation process. The kernel calls [`run`](Process::run) at
/// elaboration (time zero) and then whenever the returned [`Wait`]
/// condition is met.
pub trait Process {
    /// Executes until the next wait point; reads and drives signals
    /// through `ctx`.
    fn run(&mut self, ctx: &mut ProcCtx<'_>) -> Wait;
}

/// Wraps a closure as a [`Process`].
///
/// # Examples
///
/// ```
/// use cosma_sim::{FnProcess, Wait, Simulator, Duration};
/// use cosma_core::{Type, Value, Bit};
///
/// let mut sim = Simulator::new();
/// let led = sim.add_signal("LED", Type::Bit, Value::Bit(Bit::Zero));
/// sim.add_process("driver", FnProcess::new(move |ctx| {
///     ctx.drive(led, Value::Bit(Bit::One));
///     Wait::Forever
/// }));
/// sim.run_for(Duration::from_ns(1))?;
/// assert_eq!(sim.value(led), &Value::Bit(Bit::One));
/// # Ok::<(), cosma_sim::SimError>(())
/// ```
pub struct FnProcess<F>(F);

impl<F: FnMut(&mut ProcCtx<'_>) -> Wait> FnProcess<F> {
    /// Wraps the closure.
    pub fn new(f: F) -> Self {
        FnProcess(f)
    }
}

impl<F> fmt::Debug for FnProcess<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnProcess")
    }
}

impl<F: FnMut(&mut ProcCtx<'_>) -> Wait> Process for FnProcess<F> {
    fn run(&mut self, ctx: &mut ProcCtx<'_>) -> Wait {
        (self.0)(ctx)
    }
}

/// A free-running clock generator toggling a bit signal.
#[derive(Debug)]
pub struct ClockProcess {
    signal: SignalId,
    half_period: Duration,
}

impl ClockProcess {
    /// Creates a clock driving `signal` with the given full `period`.
    #[must_use]
    pub fn new(signal: SignalId, period: Duration) -> Self {
        ClockProcess { signal, half_period: period.halved() }
    }
}

impl Process for ClockProcess {
    fn run(&mut self, ctx: &mut ProcCtx<'_>) -> Wait {
        let cur = ctx.read(self.signal).clone();
        let next = match cur {
            Value::Bit(Bit::One) => Bit::Zero,
            _ => Bit::One,
        };
        ctx.drive(self.signal, Value::Bit(next));
        Wait::Timeout(self.half_period)
    }
}

struct ProcSlot {
    name: String,
    body: Option<Box<dyn Process>>,
    sensitivity: Vec<SignalId>,
    wake_at: Option<SimTime>,
    runs: u64,
}

/// Execution context passed to processes: read signals, schedule drives,
/// query time and events.
#[derive(Debug)]
pub struct ProcCtx<'a> {
    signals: &'a [Signal],
    now: SimTime,
    delta: u32,
    /// Drives scheduled by the running process: (signal, value, delay).
    drives: Vec<(SignalId, Value, Duration)>,
}

impl<'a> ProcCtx<'a> {
    /// Current signal value.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this simulator.
    #[must_use]
    pub fn read(&self, s: SignalId) -> &Value {
        &self.signals[s.index()].value
    }

    /// Current value as a [`Bit`].
    ///
    /// # Panics
    ///
    /// Panics if the signal is not bit-typed.
    #[must_use]
    pub fn read_bit(&self, s: SignalId) -> Bit {
        match self.read(s) {
            Value::Bit(b) => *b,
            other => panic!("signal {} is not a bit: {other:?}", self.signals[s.index()].name),
        }
    }

    /// Current value as an integer.
    ///
    /// # Panics
    ///
    /// Panics if the signal is not integer-typed.
    #[must_use]
    pub fn read_int(&self, s: SignalId) -> i64 {
        match self.read(s) {
            Value::Int(i) => *i,
            other => panic!("signal {} is not an int: {other:?}", self.signals[s.index()].name),
        }
    }

    /// Schedules a drive for the next delta cycle (`sig <= v;`).
    ///
    /// # Panics
    ///
    /// Panics if the value's kind does not match the signal's type — a
    /// wiring bug equivalent to a VHDL type error.
    pub fn drive(&mut self, s: SignalId, v: Value) {
        self.drive_after(s, v, Duration::ZERO);
    }

    /// Schedules a drive after a delay (`sig <= v after d;`).
    ///
    /// # Panics
    ///
    /// Panics on type mismatch (see [`ProcCtx::drive`]).
    pub fn drive_after(&mut self, s: SignalId, v: Value, d: Duration) {
        let sig = &self.signals[s.index()];
        let v = sig.ty.clamp(v);
        assert!(
            sig.ty.admits(&v),
            "drive of signal {} ({}) with incompatible value {v:?}",
            sig.name,
            sig.ty
        );
        self.drives.push((s, v, d));
    }

    /// Whether the signal had an event in the delta that woke this run.
    #[must_use]
    pub fn event(&self, s: SignalId) -> bool {
        self.signals[s.index()].event_now
    }

    /// Rising-edge detector: event in this delta and the new value is
    /// `'1'`.
    #[must_use]
    pub fn rose(&self, s: SignalId) -> bool {
        self.event(s) && matches!(self.signals[s.index()].value, Value::Bit(Bit::One))
    }

    /// Falling-edge detector.
    #[must_use]
    pub fn fell(&self, s: SignalId) -> bool {
        self.event(s) && matches!(self.signals[s.index()].value, Value::Bit(Bit::Zero))
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Delta-cycle index within the current instant.
    #[must_use]
    pub fn delta(&self) -> u32 {
        self.delta
    }
}

/// Errors from simulation runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The delta-cycle loop at one instant exceeded the configured bound
    /// (combinational oscillation).
    DeltaOverflow {
        /// Instant at which the oscillation occurred.
        time: SimTime,
        /// The configured bound.
        limit: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DeltaOverflow { time, limit } => {
                write!(f, "delta-cycle oscillation at {time} (more than {limit} deltas)")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Aggregate kernel statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Total process activations.
    pub process_runs: u64,
    /// Total signal events.
    pub events: u64,
    /// Total delta cycles executed.
    pub deltas: u64,
    /// Distinct simulated instants visited.
    pub instants: u64,
}

/// The discrete-event simulator.
///
/// # Examples
///
/// A 10 MHz clock observed for one microsecond:
///
/// ```
/// use cosma_sim::{Simulator, ClockProcess, Duration};
/// use cosma_core::{Type, Value, Bit};
///
/// let mut sim = Simulator::new();
/// let clk = sim.add_signal("CLK", Type::Bit, Value::Bit(Bit::Zero));
/// let period = Duration::from_freq_hz(10_000_000);
/// sim.add_clock("CLKGEN", clk, period);
/// sim.run_for(Duration::from_ns(999))?;
/// assert_eq!(sim.signal_info(clk).event_count, 20); // edges at 0,50,...,950 ns
/// # Ok::<(), cosma_sim::SimError>(())
/// ```
pub struct Simulator {
    signals: Vec<Signal>,
    processes: Vec<ProcSlot>,
    /// Drives awaiting the next delta at the current instant.
    delta_drives: Vec<(SignalId, Value)>,
    /// Drives scheduled for future instants.
    timed_drives: BTreeMap<SimTime, Vec<(SignalId, Value)>>,
    /// Processes waiting on timeouts.
    timer_queue: BTreeMap<SimTime, Vec<ProcessId>>,
    now: SimTime,
    initialized: bool,
    max_deltas: u32,
    stats: SimStats,
    /// Signals with `event_now` set, to be cleared before the next delta.
    fresh_events: Vec<SignalId>,
    vcd: Option<VcdRecorder>,
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("signals", &self.signals.len())
            .field("processes", &self.processes.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Creates an empty simulator.
    #[must_use]
    pub fn new() -> Self {
        Simulator {
            signals: vec![],
            processes: vec![],
            delta_drives: vec![],
            timed_drives: BTreeMap::new(),
            timer_queue: BTreeMap::new(),
            now: SimTime::ZERO,
            initialized: false,
            max_deltas: 1000,
            stats: SimStats::default(),
            fresh_events: vec![],
            vcd: None,
        }
    }

    /// Sets the delta-cycle oscillation bound (default 1000).
    pub fn set_max_deltas(&mut self, limit: u32) {
        self.max_deltas = limit.max(1);
    }

    /// Declares a signal.
    pub fn add_signal(&mut self, name: impl Into<String>, ty: Type, init: Value) -> SignalId {
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(Signal::new(name.into(), ty, init));
        id
    }

    /// Declares a bit signal initialized to `'0'`.
    pub fn add_bit(&mut self, name: impl Into<String>) -> SignalId {
        self.add_signal(name, Type::Bit, Value::Bit(Bit::Zero))
    }

    /// Registers a process.
    pub fn add_process(&mut self, name: impl Into<String>, p: impl Process + 'static) -> ProcessId {
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(ProcSlot {
            name: name.into(),
            body: Some(Box::new(p)),
            sensitivity: vec![],
            wake_at: None,
            runs: 0,
        });
        id
    }

    /// Convenience: registers a [`ClockProcess`].
    pub fn add_clock(&mut self, name: impl Into<String>, signal: SignalId, period: Duration) -> ProcessId {
        self.add_process(name, ClockProcess::new(signal, period))
    }

    /// Enables VCD recording of all currently declared signals.
    pub fn record_vcd(&mut self) {
        let mut rec = VcdRecorder::new();
        for (i, s) in self.signals.iter().enumerate() {
            rec.declare(SignalId(i as u32), &s.name, &s.ty, &s.value);
        }
        self.vcd = Some(rec);
    }

    /// Finishes VCD recording and returns the file contents, if recording
    /// was enabled.
    pub fn take_vcd(&mut self) -> Option<String> {
        self.vcd.take().map(|r| r.finish(self.now))
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Kernel statistics.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Current value of a signal.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this simulator.
    #[must_use]
    pub fn value(&self, s: SignalId) -> &Value {
        &self.signals[s.index()].value
    }

    /// Read-only snapshot of a signal.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this simulator.
    #[must_use]
    pub fn signal_info(&self, s: SignalId) -> SignalInfo {
        let sig = &self.signals[s.index()];
        SignalInfo {
            name: sig.name.clone(),
            ty: sig.ty.clone(),
            value: sig.value.clone(),
            last_event: sig.last_event,
            event_count: sig.event_count,
        }
    }

    /// Number of activations of a process so far.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this simulator.
    #[must_use]
    pub fn process_runs(&self, p: ProcessId) -> u64 {
        self.processes[p.index()].runs
    }

    /// Looks up a signal id by name.
    #[must_use]
    pub fn find_signal(&self, name: &str) -> Option<SignalId> {
        self.signals.iter().position(|s| s.name == name).map(|i| SignalId(i as u32))
    }

    /// Injects a value onto a signal from outside any process (testbench
    /// poke); takes effect at the next delta of the current instant.
    ///
    /// # Panics
    ///
    /// Panics on type mismatch.
    pub fn poke(&mut self, s: SignalId, v: Value) {
        let sig = &self.signals[s.index()];
        let v = sig.ty.clamp(v);
        assert!(sig.ty.admits(&v), "poke of {} with incompatible {v:?}", sig.name);
        self.delta_drives.push((s, v));
    }

    /// Runs until `deadline` (inclusive of activity at the deadline
    /// instant).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DeltaOverflow`] on combinational oscillation.
    pub fn run_until(&mut self, deadline: SimTime) -> Result<(), SimError> {
        if !self.initialized {
            self.initialize()?;
        }
        // Settle any externally poked activity at the current instant.
        self.settle(vec![])?;
        while let Some(t) = self.next_instant() {
            if t > deadline {
                break;
            }
            self.now = t;
            self.stats.instants += 1;
            let woken = self.begin_instant();
            self.settle(woken)?;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        Ok(())
    }

    /// Runs for a span from the current time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DeltaOverflow`] on combinational oscillation.
    pub fn run_for(&mut self, d: Duration) -> Result<(), SimError> {
        let deadline = self.now.saturating_add(d);
        self.run_until(deadline)
    }

    /// The next instant with scheduled activity, if any.
    #[must_use]
    pub fn next_instant(&self) -> Option<SimTime> {
        let a = self.timed_drives.keys().next().copied();
        let b = self.timer_queue.keys().next().copied();
        match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, None) => x,
            (None, y) => y,
        }
    }

    /// Elaboration: every process runs once at time zero.
    fn initialize(&mut self) -> Result<(), SimError> {
        self.initialized = true;
        let all: Vec<ProcessId> = (0..self.processes.len() as u32).map(ProcessId).collect();
        self.run_processes(&all);
        self.settle(vec![])
    }

    /// At a new instant: move due timed drives into the delta queue and
    /// collect timer-woken processes.
    fn begin_instant(&mut self) -> Vec<ProcessId> {
        let mut due_drives = vec![];
        while let Some(&t) = self.timed_drives.keys().next() {
            if t > self.now {
                break;
            }
            due_drives.extend(self.timed_drives.remove(&t).unwrap());
        }
        self.delta_drives.extend(due_drives);
        let mut woken = vec![];
        while let Some(&t) = self.timer_queue.keys().next() {
            if t > self.now {
                break;
            }
            woken.extend(self.timer_queue.remove(&t).unwrap());
        }
        for &p in &woken {
            self.processes[p.index()].wake_at = None;
        }
        woken
    }

    /// Delta loop at the current instant until quiescent.
    fn settle(&mut self, mut woken: Vec<ProcessId>) -> Result<(), SimError> {
        let mut delta: u32 = 0;
        loop {
            // Clear last delta's event marks.
            for s in self.fresh_events.drain(..) {
                self.signals[s.index()].event_now = false;
            }
            // Apply pending drives; last writer wins within a delta
            // (sequential overwrite, like a VHDL driver updated twice).
            let drives = std::mem::take(&mut self.delta_drives);
            let mut event_set: BTreeSet<SignalId> = BTreeSet::new();
            for (sid, v) in drives {
                let sig = &mut self.signals[sid.index()];
                if sig.value != v {
                    sig.prev = sig.value.clone();
                    sig.value = v.clone();
                    sig.event_now = true;
                    sig.last_event = Some(self.now);
                    sig.event_count += 1;
                    event_set.insert(sid);
                    if let Some(vcd) = &mut self.vcd {
                        vcd.change(self.now, sid, &sig.value);
                    }
                }
            }
            self.stats.events += event_set.len() as u64;
            self.fresh_events.extend(event_set.iter().copied());

            // Wake processes sensitive to these events.
            let mut to_run: BTreeSet<ProcessId> = woken.drain(..).collect();
            if !event_set.is_empty() {
                for (i, p) in self.processes.iter().enumerate() {
                    if p.body.is_some() && p.sensitivity.iter().any(|s| event_set.contains(s)) {
                        to_run.insert(ProcessId(i as u32));
                    }
                }
            }
            if to_run.is_empty() {
                return Ok(());
            }
            // Cancel timeouts of processes woken by events.
            let run_list: Vec<ProcessId> = to_run.into_iter().collect();
            for &p in &run_list {
                if let Some(t) = self.processes[p.index()].wake_at.take() {
                    if let Some(q) = self.timer_queue.get_mut(&t) {
                        q.retain(|&x| x != p);
                        if q.is_empty() {
                            self.timer_queue.remove(&t);
                        }
                    }
                }
            }
            self.stats.deltas += 1;
            delta += 1;
            if delta > self.max_deltas {
                return Err(SimError::DeltaOverflow { time: self.now, limit: self.max_deltas });
            }
            self.run_processes_delta(&run_list, delta);
        }
    }

    fn run_processes(&mut self, list: &[ProcessId]) {
        self.run_processes_delta(list, 0);
    }

    fn run_processes_delta(&mut self, list: &[ProcessId], delta: u32) {
        for &pid in list {
            let mut body = match self.processes[pid.index()].body.take() {
                Some(b) => b,
                None => continue,
            };
            let mut ctx =
                ProcCtx { signals: &self.signals, now: self.now, delta, drives: vec![] };
            let wait = body.run(&mut ctx);
            let drives = ctx.drives;
            self.processes[pid.index()].runs += 1;
            self.stats.process_runs += 1;
            for (sid, v, d) in drives {
                if d == Duration::ZERO {
                    self.delta_drives.push((sid, v));
                } else {
                    self.timed_drives.entry(self.now + d).or_default().push((sid, v));
                }
            }
            let slot = &mut self.processes[pid.index()];
            slot.sensitivity.clear();
            match wait {
                Wait::Event(sigs) => slot.sensitivity = sigs,
                Wait::Timeout(d) => {
                    let at = self.now + d;
                    slot.wake_at = Some(at);
                    self.timer_queue.entry(at).or_default().push(pid);
                }
                Wait::EventOrTimeout(sigs, d) => {
                    slot.sensitivity = sigs;
                    let at = self.now + d;
                    slot.wake_at = Some(at);
                    self.timer_queue.entry(at).or_default().push(pid);
                }
                Wait::Forever => {}
            }
            self.processes[pid.index()].body = Some(body);
        }
    }

    /// Name of a process (for reports).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this simulator.
    #[must_use]
    pub fn process_name(&self, p: ProcessId) -> &str {
        &self.processes[p.index()].name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_toggles_at_period() {
        let mut sim = Simulator::new();
        let clk = sim.add_bit("CLK");
        sim.add_clock("gen", clk, Duration::from_ns(100));
        sim.run_for(Duration::from_ns(249)).unwrap();
        // t=0: ->1 (init), t=50: ->0, t=100: ->1, t=150: ->0, t=200: ->1.
        let info = sim.signal_info(clk);
        assert_eq!(info.event_count, 5);
        assert_eq!(info.value, Value::Bit(Bit::One));
    }

    #[test]
    fn delta_cycle_two_phase_semantics() {
        // A process that swaps two signals must observe the *old* values:
        // after one exchange a=old_b and b=old_a simultaneously.
        let mut sim = Simulator::new();
        let a = sim.add_signal("A", Type::INT16, Value::Int(1));
        let b = sim.add_signal("B", Type::INT16, Value::Int(2));
        let go = sim.add_bit("GO");
        sim.add_process(
            "swap",
            FnProcess::new(move |ctx| {
                if ctx.rose(go) {
                    let va = ctx.read(a).clone();
                    let vb = ctx.read(b).clone();
                    ctx.drive(a, vb);
                    ctx.drive(b, va);
                }
                Wait::Event(vec![go])
            }),
        );
        sim.run_until(SimTime::ZERO).unwrap();
        sim.poke(go, Value::Bit(Bit::One));
        sim.run_for(Duration::from_ns(1)).unwrap();
        assert_eq!(sim.value(a), &Value::Int(2));
        assert_eq!(sim.value(b), &Value::Int(1));
    }

    #[test]
    fn chained_deltas_converge_in_same_instant() {
        // inverter chain: x -> y -> z, all at time 0 via deltas.
        let mut sim = Simulator::new();
        let x = sim.add_bit("X");
        let y = sim.add_bit("Y");
        let z = sim.add_bit("Z");
        sim.add_process(
            "inv1",
            FnProcess::new(move |ctx| {
                let v = ctx.read_bit(x);
                ctx.drive(y, Value::Bit(!v));
                Wait::Event(vec![x])
            }),
        );
        sim.add_process(
            "inv2",
            FnProcess::new(move |ctx| {
                let v = ctx.read_bit(y);
                ctx.drive(z, Value::Bit(!v));
                Wait::Event(vec![y])
            }),
        );
        sim.run_until(SimTime::ZERO).unwrap();
        assert_eq!(sim.value(y), &Value::Bit(Bit::One));
        assert_eq!(sim.value(z), &Value::Bit(Bit::Zero));
        assert_eq!(sim.now(), SimTime::ZERO, "all settled without advancing time");
        sim.poke(x, Value::Bit(Bit::One));
        sim.run_until(SimTime::ZERO).unwrap();
        assert_eq!(sim.value(y), &Value::Bit(Bit::Zero));
        assert_eq!(sim.value(z), &Value::Bit(Bit::One));
    }

    #[test]
    fn oscillation_detected() {
        let mut sim = Simulator::new();
        let x = sim.add_bit("X");
        sim.add_process(
            "ringosc",
            FnProcess::new(move |ctx| {
                let v = ctx.read_bit(x);
                ctx.drive(x, Value::Bit(!v));
                Wait::Event(vec![x])
            }),
        );
        sim.set_max_deltas(50);
        let err = sim.run_until(SimTime::ZERO).unwrap_err();
        assert!(matches!(err, SimError::DeltaOverflow { limit: 50, .. }));
        assert!(err.to_string().contains("oscillation"));
    }

    #[test]
    fn drive_after_schedules_in_future() {
        let mut sim = Simulator::new();
        let d = sim.add_signal("D", Type::INT16, Value::Int(0));
        sim.add_process(
            "pulse",
            FnProcess::new(move |ctx| {
                ctx.drive_after(d, Value::Int(7), Duration::from_ns(30));
                Wait::Forever
            }),
        );
        sim.run_until(SimTime::from_ns(29)).unwrap();
        assert_eq!(sim.value(d), &Value::Int(0));
        sim.run_until(SimTime::from_ns(30)).unwrap();
        assert_eq!(sim.value(d), &Value::Int(7));
        assert_eq!(sim.signal_info(d).last_event, Some(SimTime::from_ns(30)));
    }

    #[test]
    fn timeout_wakes_process() {
        let mut sim = Simulator::new();
        let n = sim.add_signal("N", Type::INT16, Value::Int(0));
        sim.add_process(
            "ticker",
            FnProcess::new(move |ctx| {
                let v = ctx.read_int(n);
                ctx.drive(n, Value::Int(v + 1));
                Wait::Timeout(Duration::from_ns(10))
            }),
        );
        sim.run_until(SimTime::from_ns(45)).unwrap();
        // Runs at 0,10,20,30,40 -> N goes to 5.
        assert_eq!(sim.value(n), &Value::Int(5));
    }

    #[test]
    fn event_cancels_timeout() {
        let mut sim = Simulator::new();
        let kick = sim.add_bit("KICK");
        let n = sim.add_signal("N", Type::INT16, Value::Int(0));
        sim.add_process(
            "waiter",
            FnProcess::new(move |ctx| {
                if ctx.event(kick) || ctx.now() > SimTime::ZERO {
                    let v = ctx.read_int(n);
                    ctx.drive(n, Value::Int(v + 1));
                }
                Wait::EventOrTimeout(vec![kick], Duration::from_ns(100))
            }),
        );
        sim.run_until(SimTime::ZERO).unwrap();
        sim.poke(kick, Value::Bit(Bit::One));
        sim.run_until(SimTime::from_ns(10)).unwrap();
        assert_eq!(sim.value(n), &Value::Int(1), "woken by event");
        // The 100ns timeout from the first wait must have been cancelled;
        // next wake is at ~100ns after the event wake (time 0) -> at 100.
        sim.run_until(SimTime::from_ns(120)).unwrap();
        assert_eq!(sim.value(n), &Value::Int(2), "woken once more by timeout");
    }

    #[test]
    fn no_event_when_same_value_driven() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("S", Type::INT16, Value::Int(5));
        sim.run_until(SimTime::ZERO).unwrap();
        sim.poke(s, Value::Int(5));
        sim.run_for(Duration::from_ns(1)).unwrap();
        assert_eq!(sim.signal_info(s).event_count, 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut sim = Simulator::new();
        let clk = sim.add_bit("CLK");
        sim.add_clock("gen", clk, Duration::from_ns(10));
        sim.run_for(Duration::from_ns(100)).unwrap();
        let st = sim.stats();
        assert!(st.process_runs >= 20);
        assert!(st.events >= 20);
        assert!(st.deltas >= 20);
        assert!(st.instants >= 20);
    }

    #[test]
    fn find_signal_by_name() {
        let mut sim = Simulator::new();
        let a = sim.add_bit("ALPHA");
        assert_eq!(sim.find_signal("ALPHA"), Some(a));
        assert_eq!(sim.find_signal("BETA"), None);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn type_mismatch_poke_panics() {
        let mut sim = Simulator::new();
        let s = sim.add_bit("S");
        sim.poke(s, Value::Int(3));
    }

    #[test]
    fn deterministic_process_order() {
        // Two processes drive the same signal in the same delta; the later
        // process id wins (document the deterministic rule).
        let mut sim = Simulator::new();
        let s = sim.add_signal("S", Type::INT16, Value::Int(0));
        let go = sim.add_bit("GO");
        sim.add_process(
            "p1",
            FnProcess::new(move |ctx| {
                if ctx.event(go) {
                    ctx.drive(s, Value::Int(1));
                }
                Wait::Event(vec![go])
            }),
        );
        sim.add_process(
            "p2",
            FnProcess::new(move |ctx| {
                if ctx.event(go) {
                    ctx.drive(s, Value::Int(2));
                }
                Wait::Event(vec![go])
            }),
        );
        sim.run_until(SimTime::ZERO).unwrap();
        sim.poke(go, Value::Bit(Bit::One));
        sim.run_for(Duration::from_ns(1)).unwrap();
        assert_eq!(sim.value(s), &Value::Int(2));
    }

    #[test]
    fn forever_wait_never_resumes() {
        let mut sim = Simulator::new();
        let n = sim.add_signal("N", Type::INT16, Value::Int(0));
        sim.add_process(
            "once",
            FnProcess::new(move |ctx| {
                let v = ctx.read_int(n);
                ctx.drive(n, Value::Int(v + 1));
                Wait::Forever
            }),
        );
        let clk = sim.add_bit("CLK");
        sim.add_clock("gen", clk, Duration::from_ns(10));
        sim.run_for(Duration::from_ns(200)).unwrap();
        assert_eq!(sim.value(n), &Value::Int(1), "ran exactly once at elaboration");
    }

    #[test]
    fn run_until_is_resumable() {
        let mut sim = Simulator::new();
        let clk = sim.add_bit("CLK");
        sim.add_clock("gen", clk, Duration::from_ns(10));
        sim.run_until(SimTime::from_ns(20)).unwrap();
        let c1 = sim.signal_info(clk).event_count;
        sim.run_until(SimTime::from_ns(40)).unwrap();
        let c2 = sim.signal_info(clk).event_count;
        assert!(c2 > c1);
        assert_eq!(sim.now(), SimTime::from_ns(40));
    }
}
