//! The pre-index, full-scan reference kernel, kept as a
//! differential-testing oracle.
//!
//! [`RefSimulator`] is the original scheduling core of this crate: it
//! rescans **every** process on **every** delta to find event-sensitive
//! ones and keys timed work on `BTreeMap`s. It is deliberately simple —
//! the semantics are easy to audit — and deliberately slow, so it is not
//! exported through the `cosma` facade's hot paths. Its one job is to
//! define the observable VHDL semantics that the production
//! [`Simulator`](crate::Simulator) (inverted sensitivity index +
//! timer-wheel queues) must reproduce exactly: property tests in
//! `tests/properties.rs` run randomized clock/process mixes through both
//! kernels and require identical signal traces, event counts and delta
//! counts.

use crate::kernel::{Process, SimError, SimStats, Wait};
use crate::signal::{Signal, SignalId, SignalInfo};
use crate::time::{Duration, SimTime};
use cosma_core::{Bit, Type, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Process handle within a [`RefSimulator`]. Distinct from
/// [`ProcessId`](crate::ProcessId) so the two kernels cannot be mixed up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RefProcessId(u32);

impl RefProcessId {
    /// Raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

struct ProcSlot {
    body: Option<Box<dyn Process>>,
    sensitivity: Vec<SignalId>,
    /// Rising-edge filter of the sensitivity ([`Wait::Rising`]).
    rising: bool,
    wake_at: Option<SimTime>,
    runs: u64,
}

/// The full-scan oracle kernel. Mirrors the [`Simulator`](crate::Simulator)
/// API subset the property tests need.
pub struct RefSimulator {
    signals: Vec<Signal>,
    processes: Vec<ProcSlot>,
    delta_drives: Vec<(SignalId, Value)>,
    timed_drives: BTreeMap<SimTime, Vec<(SignalId, Value)>>,
    timer_queue: BTreeMap<SimTime, Vec<RefProcessId>>,
    now: SimTime,
    initialized: bool,
    max_deltas: u32,
    stats: SimStats,
    fresh_events: Vec<SignalId>,
    /// Packed mirror of the signals' `event_now` flags, kept in
    /// lockstep with the fast kernel's (see `Simulator::event_bits`) so
    /// the shared [`ProcCtx`](crate::kernel::ProcCtx) event probes read
    /// identical state on both kernels.
    event_bits: Vec<u64>,
}

impl fmt::Debug for RefSimulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RefSimulator")
            .field("signals", &self.signals.len())
            .field("processes", &self.processes.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl Default for RefSimulator {
    fn default() -> Self {
        Self::new()
    }
}

impl RefSimulator {
    /// Creates an empty oracle simulator.
    #[must_use]
    pub fn new() -> Self {
        RefSimulator {
            signals: vec![],
            processes: vec![],
            delta_drives: vec![],
            timed_drives: BTreeMap::new(),
            timer_queue: BTreeMap::new(),
            now: SimTime::ZERO,
            initialized: false,
            max_deltas: 1000,
            stats: SimStats::default(),
            fresh_events: vec![],
            event_bits: vec![],
        }
    }

    /// Sets the delta-cycle oscillation bound (default 1000).
    pub fn set_max_deltas(&mut self, limit: u32) {
        self.max_deltas = limit.max(1);
    }

    /// Declares a signal.
    pub fn add_signal(&mut self, name: impl Into<String>, ty: Type, init: Value) -> SignalId {
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(Signal::new(name.into(), ty, init));
        self.event_bits.resize(self.signals.len().div_ceil(64), 0);
        id
    }

    /// Declares a bit signal initialized to `'0'`.
    pub fn add_bit(&mut self, name: impl Into<String>) -> SignalId {
        self.add_signal(name, Type::Bit, Value::Bit(Bit::Zero))
    }

    /// Registers a process.
    pub fn add_process(&mut self, p: impl Process + 'static) -> RefProcessId {
        let id = RefProcessId(self.processes.len() as u32);
        self.processes.push(ProcSlot {
            body: Some(Box::new(p)),
            sensitivity: vec![],
            rising: false,
            wake_at: None,
            runs: 0,
        });
        id
    }

    /// Registers a free-running clock.
    pub fn add_clock(&mut self, signal: SignalId, period: Duration) -> RefProcessId {
        self.add_process(crate::kernel::ClockProcess::new(signal, period))
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Kernel statistics (only the four classic counters are populated).
    #[must_use]
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Current value of a signal.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this simulator.
    #[must_use]
    pub fn value(&self, s: SignalId) -> &Value {
        &self.signals[s.index()].value
    }

    /// Read-only snapshot of a signal.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this simulator.
    #[must_use]
    pub fn signal_info(&self, s: SignalId) -> SignalInfo {
        let sig = &self.signals[s.index()];
        SignalInfo {
            name: sig.name.clone(),
            ty: sig.ty.clone(),
            value: sig.value.clone(),
            last_event: sig.last_event,
            event_count: sig.event_count,
        }
    }

    /// Number of activations of a process so far.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this simulator.
    #[must_use]
    pub fn process_runs(&self, p: RefProcessId) -> u64 {
        self.processes[p.index()].runs
    }

    /// Testbench poke, effective at the next delta.
    ///
    /// # Panics
    ///
    /// Panics on type mismatch.
    pub fn poke(&mut self, s: SignalId, v: Value) {
        let sig = &self.signals[s.index()];
        let v = sig.ty.clamp(v);
        assert!(
            sig.ty.admits(&v),
            "poke of {} with incompatible {v:?}",
            sig.name
        );
        self.delta_drives.push((s, v));
    }

    /// Runs until `deadline` (inclusive).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DeltaOverflow`] on combinational oscillation.
    pub fn run_until(&mut self, deadline: SimTime) -> Result<(), SimError> {
        if !self.initialized {
            self.initialize()?;
        }
        self.settle(vec![])?;
        while let Some(t) = self.next_instant() {
            if t > deadline {
                break;
            }
            self.now = t;
            self.stats.instants += 1;
            let woken = self.begin_instant();
            self.settle(woken)?;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        Ok(())
    }

    /// Runs for a span from the current time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DeltaOverflow`] on combinational oscillation.
    pub fn run_for(&mut self, d: Duration) -> Result<(), SimError> {
        let deadline = self.now.saturating_add(d);
        self.run_until(deadline)
    }

    fn next_instant(&self) -> Option<SimTime> {
        let a = self.timed_drives.keys().next().copied();
        let b = self.timer_queue.keys().next().copied();
        match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, None) => x,
            (None, y) => y,
        }
    }

    fn initialize(&mut self) -> Result<(), SimError> {
        self.initialized = true;
        let all: Vec<RefProcessId> = (0..self.processes.len() as u32).map(RefProcessId).collect();
        self.run_processes_delta(&all, 0);
        self.settle(vec![])
    }

    fn begin_instant(&mut self) -> Vec<RefProcessId> {
        let mut due_drives = vec![];
        while let Some(&t) = self.timed_drives.keys().next() {
            if t > self.now {
                break;
            }
            due_drives.extend(self.timed_drives.remove(&t).expect("key just seen"));
        }
        self.delta_drives.extend(due_drives);
        let mut woken = vec![];
        while let Some(&t) = self.timer_queue.keys().next() {
            if t > self.now {
                break;
            }
            woken.extend(self.timer_queue.remove(&t).expect("key just seen"));
        }
        for &p in &woken {
            self.processes[p.index()].wake_at = None;
        }
        woken
    }

    /// The original full-scan delta loop: every process is inspected on
    /// every delta with events.
    fn settle(&mut self, mut woken: Vec<RefProcessId>) -> Result<(), SimError> {
        let mut delta: u32 = 0;
        loop {
            for s in self.fresh_events.drain(..) {
                self.signals[s.index()].event_now = false;
                self.event_bits[s.index() >> 6] &= !(1u64 << (s.index() & 63));
            }
            let drives = std::mem::take(&mut self.delta_drives);
            let mut event_set: BTreeSet<SignalId> = BTreeSet::new();
            for (sid, v) in drives {
                let sig = &mut self.signals[sid.index()];
                if sig.value != v {
                    sig.prev = sig.value.clone();
                    sig.value = v.clone();
                    sig.event_now = true;
                    self.event_bits[sid.index() >> 6] |= 1u64 << (sid.index() & 63);
                    sig.last_event = Some(self.now);
                    sig.event_count += 1;
                    event_set.insert(sid);
                }
            }
            self.stats.events += event_set.len() as u64;
            self.fresh_events.extend(event_set.iter().copied());

            let mut to_run: BTreeSet<RefProcessId> = woken.drain(..).collect();
            if !event_set.is_empty() {
                for (i, p) in self.processes.iter().enumerate() {
                    let signals = &self.signals;
                    // Mirror the fast kernel's rising filter: a
                    // rising-sensitive process only wakes when the
                    // evented signal's new value is `Bit::One`.
                    let wakes = |s: &SignalId| {
                        event_set.contains(s)
                            && (!p.rising
                                || matches!(signals[s.index()].value, Value::Bit(Bit::One)))
                    };
                    if p.body.is_some() && p.sensitivity.iter().any(wakes) {
                        to_run.insert(RefProcessId(i as u32));
                    }
                }
            }
            if to_run.is_empty() {
                return Ok(());
            }
            let run_list: Vec<RefProcessId> = to_run.into_iter().collect();
            for &p in &run_list {
                if let Some(t) = self.processes[p.index()].wake_at.take() {
                    if let Some(q) = self.timer_queue.get_mut(&t) {
                        q.retain(|&x| x != p);
                        if q.is_empty() {
                            self.timer_queue.remove(&t);
                        }
                    }
                }
            }
            self.stats.deltas += 1;
            delta += 1;
            if delta > self.max_deltas {
                return Err(SimError::DeltaOverflow {
                    time: self.now,
                    limit: self.max_deltas,
                });
            }
            self.run_processes_delta(&run_list, delta);
        }
    }

    fn run_processes_delta(&mut self, list: &[RefProcessId], delta: u32) {
        for &pid in list {
            let mut body = match self.processes[pid.index()].body.take() {
                Some(b) => b,
                None => continue,
            };
            let mut ctx =
                crate::kernel::ProcCtx::new(&self.signals, &self.event_bits, self.now, delta);
            let wait = body.run(&mut ctx);
            let (drives, trains) = ctx.into_parts();
            self.processes[pid.index()].runs += 1;
            self.stats.process_runs += 1;
            for (sid, v, d) in drives {
                if d == Duration::ZERO {
                    self.delta_drives.push((sid, v));
                } else {
                    self.timed_drives
                        .entry(self.now + d)
                        .or_default()
                        .push((sid, v));
                }
            }
            // Drive trains expand after the activation's individual
            // drives, beats in order — the same sequence the kernel
            // assigns, so pop order matches bit-for-bit.
            for t in trains {
                let mut at = self.now + t.start;
                for v in t.values {
                    self.timed_drives.entry(at).or_default().push((t.sig, v));
                    at += t.stride;
                }
            }
            let slot = &mut self.processes[pid.index()];
            match wait {
                Wait::Event(sigs) => {
                    slot.sensitivity = sigs;
                    slot.rising = false;
                }
                Wait::Rising(sigs) => {
                    slot.sensitivity = sigs;
                    slot.rising = true;
                }
                Wait::Timeout(d) => {
                    slot.sensitivity.clear();
                    slot.rising = false;
                    let at = self.now + d;
                    slot.wake_at = Some(at);
                    self.timer_queue.entry(at).or_default().push(pid);
                }
                Wait::EventOrTimeout(sigs, d) => {
                    slot.sensitivity = sigs;
                    slot.rising = false;
                    let at = self.now + d;
                    slot.wake_at = Some(at);
                    self.timer_queue.entry(at).or_default().push(pid);
                }
                Wait::Forever => {
                    slot.sensitivity.clear();
                    slot.rising = false;
                }
                Wait::Same => {}
            }
            self.processes[pid.index()].body = Some(body);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::FnProcess;

    #[test]
    fn oracle_matches_classic_clock_semantics() {
        let mut sim = RefSimulator::new();
        let clk = sim.add_bit("CLK");
        sim.add_clock(clk, Duration::from_ns(100));
        sim.run_for(Duration::from_ns(249)).unwrap();
        let info = sim.signal_info(clk);
        assert_eq!(info.event_count, 5);
        assert_eq!(info.value, Value::Bit(Bit::One));
    }

    #[test]
    fn oracle_two_phase_and_timeout() {
        let mut sim = RefSimulator::new();
        let n = sim.add_signal("N", Type::INT16, Value::Int(0));
        sim.add_process(FnProcess::new(move |ctx| {
            let v = ctx.read_int(n);
            ctx.drive(n, Value::Int(v + 1));
            Wait::Timeout(Duration::from_ns(10))
        }));
        sim.run_until(SimTime::from_ns(45)).unwrap();
        assert_eq!(sim.value(n), &Value::Int(5));
    }
}
