//! Signals: the typed, delta-cycle-updated state of the simulation.

use crate::time::SimTime;
use cosma_core::{Type, Value};
use std::fmt;

/// Identifies a signal within a [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Raw index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig{}", self.0)
    }
}

/// A signal's bookkeeping inside the kernel.
#[derive(Debug, Clone)]
pub(crate) struct Signal {
    pub name: String,
    pub ty: Type,
    /// Current (settled) value.
    pub value: Value,
    /// Value before the most recent event.
    pub prev: Value,
    /// Time of the most recent event, if any.
    pub last_event: Option<SimTime>,
    /// Whether an event occurred in the delta currently being processed.
    pub event_now: bool,
    /// Total number of events over the signal's lifetime.
    pub event_count: u64,
}

impl Signal {
    pub(crate) fn new(name: String, ty: Type, init: Value) -> Self {
        let init = ty.clamp(init);
        Signal {
            name,
            ty,
            prev: init.clone(),
            value: init,
            last_event: None,
            event_now: false,
            event_count: 0,
        }
    }
}

/// Public, read-only snapshot of a signal's state.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalInfo {
    /// Signal name.
    pub name: String,
    /// Signal type.
    pub ty: Type,
    /// Current value.
    pub value: Value,
    /// Time of the last event, if any.
    pub last_event: Option<SimTime>,
    /// Lifetime event count.
    pub event_count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma_core::Bit;

    #[test]
    fn new_signal_clamps_init() {
        let s = Signal::new("S".into(), Type::int(4, true), Value::Int(9));
        assert_eq!(s.value, Value::Int(-7));
        assert_eq!(s.prev, Value::Int(-7));
        assert!(s.last_event.is_none());
    }

    #[test]
    fn id_display() {
        assert_eq!(SignalId(3).to_string(), "sig3");
        assert_eq!(SignalId(3).index(), 3);
    }

    #[test]
    fn bit_signal_defaults() {
        let s = Signal::new("CLK".into(), Type::Bit, Value::Bit(Bit::X));
        assert_eq!(s.value, Value::Bit(Bit::X));
        assert_eq!(s.event_count, 0);
    }
}
