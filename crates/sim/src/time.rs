//! Simulation time, in femtoseconds like VHDL's finest resolution.
//!
//! [`SimTime`] is an absolute instant; [`Duration`] is a relative span.
//! Keeping them as distinct newtypes prevents the classic
//! absolute/relative mix-up in scheduling code.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A relative span of simulated time.
///
/// # Examples
///
/// ```
/// use cosma_sim::Duration;
/// assert_eq!(Duration::from_ns(1), Duration::from_ps(1000));
/// assert_eq!(Duration::from_ns(3).as_fs(), 3_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Duration(u64);

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// From femtoseconds.
    #[must_use]
    pub const fn from_fs(fs: u64) -> Self {
        Duration(fs)
    }

    /// From picoseconds.
    #[must_use]
    pub const fn from_ps(ps: u64) -> Self {
        Duration(ps * 1_000)
    }

    /// From nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        Duration(ns * 1_000_000)
    }

    /// From microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        Duration(us * 1_000_000_000)
    }

    /// From milliseconds.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        Duration(ms * 1_000_000_000_000)
    }

    /// The span in femtoseconds.
    #[must_use]
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// The span in whole nanoseconds (truncating).
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The period of a clock of the given frequency in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    #[must_use]
    pub fn from_freq_hz(hz: u64) -> Self {
        assert!(hz > 0, "clock frequency must be nonzero");
        Duration(1_000_000_000_000_000 / hz)
    }

    /// Integer-scaled span.
    #[must_use]
    pub const fn times(self, n: u64) -> Self {
        Duration(self.0 * n)
    }

    /// Halved span (clock half-periods).
    #[must_use]
    pub const fn halved(self) -> Self {
        Duration(self.0 / 2)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_fs(self.0, f)
    }
}

/// A rational period ratio between a clock domain and the base domain.
///
/// A domain with ratio `num/den` has a period `num/den` times the base
/// period: `ClockRatio::new(4, 1)` is a domain running at one quarter
/// of the base rate (period 4× the base), `ClockRatio::new(1, 2)` runs
/// at twice the base rate. All domain clocks remain ordinary timeout
/// streams on the one global femtosecond axis — the kernel's
/// [`next_instant`](crate::Simulator::next_instant) walk and its timer
/// wheel interleave edges of arbitrarily-related periods without any
/// special casing, which is exactly why a rational ratio (rather than
/// an integer divider) is safe at this layer.
///
/// # Examples
///
/// ```
/// use cosma_sim::{ClockRatio, Duration};
/// let slow = ClockRatio::new(4, 1);
/// assert_eq!(slow.scale(Duration::from_ns(100)), Duration::from_ns(400));
/// let fast = ClockRatio::new(1, 2);
/// assert_eq!(fast.scale(Duration::from_ns(100)), Duration::from_ns(50));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockRatio {
    num: u64,
    den: u64,
}

impl ClockRatio {
    /// The identity ratio (the base domain itself).
    pub const UNIT: ClockRatio = ClockRatio { num: 1, den: 1 };

    /// A ratio of `num/den`; both components must be nonzero.
    ///
    /// # Panics
    ///
    /// Panics if either component is zero. Use [`ClockRatio::try_new`]
    /// for fallible construction.
    #[must_use]
    pub fn new(num: u64, den: u64) -> Self {
        Self::try_new(num, den).expect("clock ratio components must be nonzero")
    }

    /// A ratio of `num/den`, or `None` if either component is zero (the
    /// unsigned types already exclude negative rates).
    #[must_use]
    pub const fn try_new(num: u64, den: u64) -> Option<Self> {
        if num == 0 || den == 0 {
            None
        } else {
            Some(ClockRatio { num, den })
        }
    }

    /// The numerator (period multiplier).
    #[must_use]
    pub const fn num(self) -> u64 {
        self.num
    }

    /// The denominator (period divisor).
    #[must_use]
    pub const fn den(self) -> u64 {
        self.den
    }

    /// Whether this is the identity ratio.
    #[must_use]
    pub const fn is_unit(self) -> bool {
        self.num == self.den
    }

    /// Scales a base-domain span into this domain: `d * num / den`,
    /// computed in 128-bit so large femtosecond counts cannot overflow
    /// mid-product.
    #[must_use]
    pub const fn scale(self, d: Duration) -> Duration {
        Duration(((d.0 as u128 * self.num as u128) / self.den as u128) as u64)
    }
}

impl fmt::Display for ClockRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.num, self.den)
    }
}

/// An absolute instant of simulated time (femtoseconds since start).
///
/// # Examples
///
/// ```
/// use cosma_sim::{SimTime, Duration};
/// let t = SimTime::ZERO + Duration::from_ns(5);
/// assert_eq!(t.as_fs(), 5_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Maximum representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From raw femtoseconds.
    #[must_use]
    pub const fn from_fs(fs: u64) -> Self {
        SimTime(fs)
    }

    /// From nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000_000)
    }

    /// Femtoseconds since start.
    #[must_use]
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds since start (truncating).
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span between two instants.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` is after `self`"),
        )
    }

    /// Saturating addition of a span.
    #[must_use]
    pub const fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_fs(self.0, f)
    }
}

fn format_fs(fs: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if fs == 0 {
        write!(f, "0")
    } else if fs.is_multiple_of(1_000_000_000_000) {
        write!(f, "{}ms", fs / 1_000_000_000_000)
    } else if fs.is_multiple_of(1_000_000_000) {
        write!(f, "{}us", fs / 1_000_000_000)
    } else if fs.is_multiple_of(1_000_000) {
        write!(f, "{}ns", fs / 1_000_000)
    } else if fs.is_multiple_of(1_000) {
        write!(f, "{}ps", fs / 1_000)
    } else {
        write!(f, "{fs}fs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_ns(1).as_fs(), 1_000_000);
        assert_eq!(Duration::from_us(1).as_fs(), 1_000_000_000);
        assert_eq!(Duration::from_ms(1).as_ns(), 1_000_000);
        assert_eq!(SimTime::from_ns(10).as_ns(), 10);
    }

    #[test]
    fn clock_period_from_frequency() {
        // 10 MHz (the paper's PC-AT bus clock) -> 100 ns period.
        let p = Duration::from_freq_hz(10_000_000);
        assert_eq!(p, Duration::from_ns(100));
        assert_eq!(p.halved(), Duration::from_ns(50));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_frequency_panics() {
        let _ = Duration::from_freq_hz(0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::from_ns(3) + Duration::from_ns(4);
        assert_eq!(t, SimTime::from_ns(7));
        assert_eq!(t.since(SimTime::from_ns(2)), Duration::from_ns(5));
        assert_eq!(
            Duration::from_ns(5) - Duration::from_ns(2),
            Duration::from_ns(3)
        );
        let mut u = SimTime::ZERO;
        u += Duration::from_ns(1);
        assert_eq!(u, SimTime::from_ns(1));
    }

    #[test]
    #[should_panic(expected = "after")]
    fn since_panics_when_backwards() {
        let _ = SimTime::from_ns(1).since(SimTime::from_ns(2));
    }

    #[test]
    fn display_picks_best_unit() {
        assert_eq!(SimTime::from_ns(100).to_string(), "100ns");
        assert_eq!(Duration::from_ps(5).to_string(), "5ps");
        assert_eq!(Duration::from_us(2).to_string(), "2us");
        assert_eq!(Duration::from_fs(7).to_string(), "7fs");
        assert_eq!(SimTime::ZERO.to_string(), "0");
        assert_eq!(Duration::from_ms(1).to_string(), "1ms");
    }

    #[test]
    fn times_scales() {
        assert_eq!(Duration::from_ns(100).times(3), Duration::from_ns(300));
    }

    #[test]
    fn clock_ratio_scales_periods() {
        let base = Duration::from_ns(100);
        assert_eq!(ClockRatio::UNIT.scale(base), base);
        assert!(ClockRatio::UNIT.is_unit());
        assert!(ClockRatio::new(3, 3).is_unit());
        assert_eq!(ClockRatio::new(4, 1).scale(base), Duration::from_ns(400));
        assert_eq!(ClockRatio::new(1, 4).scale(base), Duration::from_ns(25));
        assert_eq!(ClockRatio::new(3, 2).scale(base), Duration::from_ns(150));
        assert_eq!(ClockRatio::new(3, 2).to_string(), "3:2");
    }

    #[test]
    fn clock_ratio_rejects_zero_components() {
        assert_eq!(ClockRatio::try_new(0, 1), None);
        assert_eq!(ClockRatio::try_new(1, 0), None);
        assert_eq!(ClockRatio::try_new(0, 0), None);
        assert!(ClockRatio::try_new(7, 2).is_some());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn clock_ratio_new_panics_on_zero() {
        let _ = ClockRatio::new(0, 5);
    }

    #[test]
    fn clock_ratio_scale_avoids_overflow() {
        // A span near u64::MAX femtoseconds times 3/3 must round-trip:
        // the 128-bit intermediate keeps the product from wrapping.
        let big = Duration::from_fs(u64::MAX / 2);
        assert_eq!(ClockRatio::new(3, 3).scale(big), big);
        assert_eq!(
            ClockRatio::new(2, 1).scale(big),
            Duration::from_fs(u64::MAX - 1)
        );
    }
}
