//! Value Change Dump (VCD) writer — IEEE 1364 text format, hand-rolled.
//!
//! The recorder is attached to a [`crate::Simulator`] via
//! [`crate::Simulator::record_vcd`]; every signal event is appended and
//! [`VcdRecorder::finish`] renders the complete file.

use crate::signal::SignalId;
use crate::time::SimTime;
use cosma_core::{Bit, Type, Value};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Records signal declarations and changes, rendering VCD text on demand.
#[derive(Debug, Default)]
pub struct VcdRecorder {
    /// (id code, name, width) per declared signal.
    decls: Vec<(String, String, u32)>,
    ids: HashMap<SignalId, usize>,
    /// Initial values, dumped in `$dumpvars`.
    initials: Vec<String>,
    /// (time, rendered change line) events.
    changes: Vec<(SimTime, String)>,
}

/// Generates the short printable id code for the n-th signal
/// (`!`, `"`, ... like real VCD tools).
fn code(n: usize) -> String {
    let mut n = n;
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    s
}

fn bit_char(b: Bit) -> char {
    match b {
        Bit::Zero => '0',
        Bit::One => '1',
        Bit::X => 'x',
        Bit::Z => 'z',
    }
}

fn render_value(v: &Value, width: u32, id: &str) -> String {
    match v {
        Value::Bit(b) => format!("{}{}", bit_char(*b), id),
        Value::Bool(b) => format!("{}{}", u8::from(*b), id),
        Value::Int(_) | Value::Enum(_) => {
            let word = v.to_bus_word(width.max(1));
            let mut bits = String::new();
            for i in (0..width.max(1)).rev() {
                bits.push(if (word >> i) & 1 == 1 { '1' } else { '0' });
            }
            format!("b{bits} {id}")
        }
    }
}

impl VcdRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a signal; must precede any [`change`](VcdRecorder::change)
    /// for it.
    pub fn declare(&mut self, sig: SignalId, name: &str, ty: &Type, init: &Value) {
        let idx = self.decls.len();
        let id = code(idx);
        let width = ty.bit_width();
        // VCD identifiers may not contain whitespace; sanitize the name.
        let clean: String = name
            .chars()
            .map(|c| if c.is_whitespace() { '_' } else { c })
            .collect();
        self.initials.push(render_value(init, width, &id));
        self.decls.push((id, clean, width));
        self.ids.insert(sig, idx);
    }

    /// Records a value change. Changes for undeclared signals are ignored
    /// (they were added after recording started).
    pub fn change(&mut self, at: SimTime, sig: SignalId, value: &Value) {
        if let Some(&idx) = self.ids.get(&sig) {
            let (id, _, width) = &self.decls[idx];
            self.changes.push((at, render_value(value, *width, id)));
        }
    }

    /// Renders the complete VCD file, ending at `end`.
    #[must_use]
    pub fn finish(self, end: SimTime) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date cosma $end");
        let _ = writeln!(out, "$version cosma-sim VCD writer $end");
        let _ = writeln!(out, "$timescale 1fs $end");
        let _ = writeln!(out, "$scope module top $end");
        for (id, name, width) in &self.decls {
            let _ = writeln!(out, "$var wire {width} {id} {name} $end");
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let _ = writeln!(out, "$dumpvars");
        for line in &self.initials {
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "$end");
        let mut last_time: Option<SimTime> = None;
        for (t, line) in &self.changes {
            if last_time != Some(*t) {
                let _ = writeln!(out, "#{}", t.as_fs());
                last_time = Some(*t);
            }
            let _ = writeln!(out, "{line}");
        }
        if last_time != Some(end) {
            let _ = writeln!(out, "#{}", end.as_fs());
        }
        out
    }

    /// Number of change records so far.
    #[must_use]
    pub fn change_count(&self) -> usize {
        self.changes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockProcess, Duration, Simulator};

    #[test]
    fn id_codes_are_compact_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            assert!(seen.insert(code(i)), "duplicate code at {i}");
        }
        assert_eq!(code(0), "!");
        assert_eq!(code(93), "~");
        assert_eq!(code(94).len(), 2);
    }

    #[test]
    fn bit_changes_render_plainly() {
        let mut r = VcdRecorder::new();
        r.declare(SignalId(0), "CLK", &Type::Bit, &Value::Bit(Bit::Zero));
        r.change(SimTime::from_ns(1), SignalId(0), &Value::Bit(Bit::One));
        let text = r.finish(SimTime::from_ns(2));
        assert!(text.contains("$var wire 1 ! CLK $end"), "{text}");
        assert!(text.contains("#1000000\n1!"), "{text}");
        assert!(text.contains("$timescale 1fs $end"), "{text}");
    }

    #[test]
    fn int_changes_render_binary_vectors() {
        let mut r = VcdRecorder::new();
        r.declare(SignalId(0), "DATA", &Type::INT16, &Value::Int(0));
        r.change(SimTime::from_ns(5), SignalId(0), &Value::Int(5));
        let text = r.finish(SimTime::from_ns(6));
        assert!(text.contains("$var wire 16 ! DATA $end"), "{text}");
        assert!(text.contains("b0000000000000101 !"), "{text}");
    }

    #[test]
    fn undeclared_signal_changes_ignored() {
        let mut r = VcdRecorder::new();
        r.change(SimTime::ZERO, SignalId(9), &Value::Int(1));
        assert_eq!(r.change_count(), 0);
    }

    #[test]
    fn simulator_integration_produces_vcd() {
        let mut sim = Simulator::new();
        let clk = sim.add_bit("CLK");
        sim.add_process("gen", ClockProcess::new(clk, Duration::from_ns(10)));
        sim.record_vcd();
        sim.run_for(Duration::from_ns(50)).unwrap();
        let vcd = sim.take_vcd().expect("recording enabled");
        assert!(vcd.contains("$enddefinitions"));
        // Clock toggles at 0,5,10,...: at least 8 change lines.
        assert!(
            vcd.matches("\n1!").count() + vcd.matches("\n0!").count() >= 8,
            "{vcd}"
        );
        assert!(sim.take_vcd().is_none(), "take_vcd drains the recorder");
    }

    #[test]
    fn enum_signals_render_binary_codes() {
        use cosma_core::{EnumType, EnumValue};
        let ty = EnumType::new("ST", vec!["A".into(), "B".into(), "C".into()]);
        let mut r = VcdRecorder::new();
        r.declare(
            SignalId(0),
            "STATE",
            &Type::Enum(ty.clone()),
            &Value::Enum(EnumValue::new(ty.clone(), "A").unwrap()),
        );
        r.change(
            SimTime::from_ns(1),
            SignalId(0),
            &Value::Enum(EnumValue::new(ty, "C").unwrap()),
        );
        let text = r.finish(SimTime::from_ns(2));
        assert!(text.contains("$var wire 2 ! STATE $end"), "{text}");
        assert!(text.contains("b10 !"), "{text}");
    }

    #[test]
    fn whitespace_in_names_sanitized() {
        let mut r = VcdRecorder::new();
        r.declare(SignalId(0), "BUS ACK", &Type::Bit, &Value::Bit(Bit::Zero));
        let text = r.finish(SimTime::ZERO);
        assert!(text.contains("BUS_ACK"), "{text}");
    }
}
