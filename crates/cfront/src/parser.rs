//! Recursive-descent parser for the C subset.

use crate::ast::{CDecl, CExpr, CStmt, CType, CUnit, SwitchArm};
use crate::lexer::{lex, LexError, Spanned, Tok};
use std::collections::HashSet;
use std::fmt;

/// Parse error with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            message: e.to_string(),
        }
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    typedefs: HashSet<String>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected {p:?}, found {other}"))),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        matches!(self.peek(), Tok::Punct(q) if *q == p) && {
            self.bump();
            true
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        self.is_kw(kw) && {
            self.bump();
            true
        }
    }

    fn peek_is_type(&self) -> bool {
        match self.peek() {
            Tok::Ident(s) => {
                matches!(s.as_str(), "int" | "void" | "unsigned" | "static" | "const")
                    || self.typedefs.contains(s)
            }
            _ => false,
        }
    }

    fn parse_type(&mut self) -> Result<CType, ParseError> {
        // Accept `static` and `unsigned` as noise words.
        while self.eat_kw("static") || self.eat_kw("unsigned") || self.eat_kw("const") {}
        if self.eat_kw("int") {
            return Ok(CType::Int);
        }
        if self.eat_kw("void") {
            return Ok(CType::Void);
        }
        match self.peek().clone() {
            Tok::Ident(name) if self.typedefs.contains(&name) => {
                self.bump();
                Ok(CType::Named(name))
            }
            other => Err(self.err(format!("expected type name, found {other}"))),
        }
    }

    fn parse_unit(&mut self) -> Result<CUnit, ParseError> {
        let mut unit = CUnit::default();
        while !matches!(self.peek(), Tok::Eof) {
            if self.eat_kw("typedef") {
                if !self.eat_kw("enum") {
                    return Err(self.err("only `typedef enum` is supported"));
                }
                self.expect_punct("{")?;
                let mut variants = vec![];
                loop {
                    if self.eat_punct("}") {
                        break;
                    }
                    // Tolerate the paper's ellipsis style: `INIT, . . ., IDLE`.
                    if self.eat_punct(".") || self.eat_punct(",") {
                        continue;
                    }
                    variants.push(self.expect_ident()?);
                }
                let name = self.expect_ident()?;
                self.expect_punct(";")?;
                self.typedefs.insert(name.clone());
                unit.decls.push(CDecl::EnumDef { name, variants });
                continue;
            }
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            if self.eat_punct("(") {
                // Function definition.
                let mut params = vec![];
                if !self.eat_punct(")") {
                    loop {
                        if self.eat_kw("void") {
                            self.expect_punct(")")?;
                            break;
                        }
                        // K&R-style lists give bare names; typed lists give
                        // `int x` / `ST y`.
                        let pty = if self.peek_is_type() {
                            self.parse_type()?
                        } else {
                            CType::Int
                        };
                        let pname = self.expect_ident()?;
                        params.push((pname, pty));
                        if !self.eat_punct(",") {
                            self.expect_punct(")")?;
                            break;
                        }
                    }
                }
                // Tolerate K&R-style parameter redeclarations before `{`:
                //   int PUT(REQUEST) INTEGER REQUEST; { ... }
                while !matches!(self.peek(), Tok::Punct("{")) {
                    if matches!(self.peek(), Tok::Eof) {
                        return Err(self.err("expected function body"));
                    }
                    self.bump();
                }
                let body = self.parse_block()?;
                unit.decls.push(CDecl::Function {
                    ret: ty,
                    name,
                    params,
                    body,
                });
            } else {
                let init = if self.eat_punct("=") {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                self.expect_punct(";")?;
                unit.decls.push(CDecl::Global { ty, name, init });
            }
        }
        Ok(unit)
    }

    fn parse_block(&mut self) -> Result<Vec<CStmt>, ParseError> {
        self.expect_punct("{")?;
        let mut body = vec![];
        while !self.eat_punct("}") {
            if matches!(self.peek(), Tok::Eof) {
                return Err(self.err("unexpected end of file in block"));
            }
            body.push(self.parse_stmt()?);
        }
        Ok(body)
    }

    fn parse_stmt(&mut self) -> Result<CStmt, ParseError> {
        if matches!(self.peek(), Tok::Punct("{")) {
            return Ok(CStmt::Block(self.parse_block()?));
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(CStmt::Break);
        }
        if self.eat_kw("return") {
            if self.eat_punct(";") {
                return Ok(CStmt::Return(None));
            }
            let e = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(CStmt::Return(Some(e)));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let then_body = self.parse_stmt_as_block()?;
            let else_body = if self.eat_kw("else") {
                self.parse_stmt_as_block()?
            } else {
                vec![]
            };
            return Ok(CStmt::If(cond, then_body, else_body));
        }
        if self.eat_kw("switch") {
            self.expect_punct("(")?;
            let scrutinee = self.parse_expr()?;
            self.expect_punct(")")?;
            self.expect_punct("{")?;
            let mut arms = vec![];
            while !self.eat_punct("}") {
                let label = if self.eat_kw("case") {
                    let l = self.expect_ident()?;
                    self.expect_punct(":")?;
                    Some(l)
                } else if self.eat_kw("default") {
                    self.expect_punct(":")?;
                    None
                } else {
                    return Err(self.err("expected `case` or `default` in switch"));
                };
                let mut body = vec![];
                loop {
                    if self.is_kw("case") || self.is_kw("default") {
                        break;
                    }
                    if matches!(self.peek(), Tok::Punct("}")) {
                        break;
                    }
                    let stmt = self.parse_stmt()?;
                    let was_break = stmt == CStmt::Break;
                    body.push(stmt);
                    if was_break {
                        break;
                    }
                }
                arms.push(SwitchArm { label, body });
            }
            return Ok(CStmt::Switch(scrutinee, arms));
        }
        // Assignment or expression statement.
        let e = self.parse_expr()?;
        if self.eat_punct("=") || self.eat_punct(":") && self.eat_punct("=") {
            // Also tolerate `:=` typos from the paper's listings.
            let name = match e {
                CExpr::Ident(n) => n,
                _ => return Err(self.err("assignment target must be an identifier")),
            };
            let rhs = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(CStmt::Assign(name, rhs));
        }
        self.expect_punct(";")?;
        Ok(CStmt::Expr(e))
    }

    fn parse_stmt_as_block(&mut self) -> Result<Vec<CStmt>, ParseError> {
        if matches!(self.peek(), Tok::Punct("{")) {
            self.parse_block()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_expr(&mut self) -> Result<CExpr, ParseError> {
        self.parse_binary(0)
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<CExpr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec): (&'static str, u8) = match self.peek() {
                Tok::Punct("||") => ("||", 1),
                Tok::Punct("&&") => ("&&", 2),
                Tok::Punct("|") => ("|", 3),
                Tok::Punct("^") => ("^", 4),
                Tok::Punct("&") => ("&", 5),
                Tok::Punct("==") => ("==", 6),
                Tok::Punct("!=") => ("!=", 6),
                Tok::Punct("<") => ("<", 7),
                Tok::Punct("<=") => ("<=", 7),
                Tok::Punct(">") => (">", 7),
                Tok::Punct(">=") => (">=", 7),
                Tok::Punct("<<") => ("<<", 8),
                Tok::Punct(">>") => (">>", 8),
                Tok::Punct("+") => ("+", 9),
                Tok::Punct("-") => ("-", 9),
                Tok::Punct("*") => ("*", 10),
                Tok::Punct("/") => ("/", 10),
                Tok::Punct("%") => ("%", 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = CExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<CExpr, ParseError> {
        if self.eat_punct("-") {
            return Ok(CExpr::Unary("-", Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(CExpr::Unary("!", Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("~") {
            return Ok(CExpr::Unary("~", Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<CExpr, ParseError> {
        match self.bump() {
            Tok::Int(i) => Ok(CExpr::Int(i)),
            Tok::Ident(name) => {
                if self.eat_punct("(") {
                    let mut args = vec![];
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_punct(",") {
                                self.expect_punct(")")?;
                                break;
                            }
                        }
                    }
                    Ok(CExpr::Call(name, args))
                } else {
                    Ok(CExpr::Ident(name))
                }
            }
            Tok::Punct("(") => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(ParseError {
                line: self.toks[self.pos.saturating_sub(1)].line,
                message: format!("unexpected token {other}"),
            }),
        }
    }
}

/// Parses a C-subset translation unit.
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line on lexical or syntactic
/// errors.
pub fn parse(src: &str) -> Result<CUnit, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        typedefs: HashSet::new(),
    };
    p.parse_unit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typedef_enum_and_global() {
        let unit = parse(
            "typedef enum { INIT, WAIT, IDLE } STATETABLE;\nSTATETABLE NEXTSTATE = INIT;\nint COUNT = 0;\n",
        )
        .unwrap();
        assert_eq!(unit.decls.len(), 3);
        match &unit.decls[0] {
            CDecl::EnumDef { name, variants } => {
                assert_eq!(name, "STATETABLE");
                assert_eq!(variants.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &unit.decls[1] {
            CDecl::Global {
                ty: CType::Named(t),
                name,
                init,
            } => {
                assert_eq!(t, "STATETABLE");
                assert_eq!(name, "NEXTSTATE");
                assert_eq!(init, &Some(CExpr::Ident("INIT".into())));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_ellipsis_in_enum_tolerated() {
        let unit = parse("typedef enum { INIT, . . ., IDLE } STATETABLE;\n").unwrap();
        match &unit.decls[0] {
            CDecl::EnumDef { variants, .. } => assert_eq!(variants, &["INIT", "IDLE"]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn function_with_switch() {
        let unit = parse(
            "typedef enum { Start, Next } ST;\nST NextState = Start;\nint DISTRIBUTION() {\n  switch (NextState) {\n    case Start: { NextState = Next; } break;\n    default: { NextState = Start; }\n  }\n  return 1;\n}\n",
        )
        .unwrap();
        let f = unit.function("DISTRIBUTION").expect("function exists");
        match f {
            CDecl::Function { body, .. } => {
                assert!(matches!(body[0], CStmt::Switch(_, _)));
                assert!(matches!(body[1], CStmt::Return(Some(_))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn service_call_in_condition() {
        let unit = parse("int F() { if (SetupControl()) { x = 1; } return 0; }\n").unwrap();
        match unit.function("F").unwrap() {
            CDecl::Function { body, .. } => match &body[0] {
                CStmt::If(CExpr::Call(name, args), then_b, else_b) => {
                    assert_eq!(name, "SetupControl");
                    assert!(args.is_empty());
                    assert_eq!(then_b.len(), 1);
                    assert!(else_b.is_empty());
                }
                other => panic!("unexpected {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn precedence() {
        let unit = parse("int F() { x = 1 + 2 * 3 == 7 && 1 < 2; return 0; }\n").unwrap();
        match unit.function("F").unwrap() {
            CDecl::Function { body, .. } => match &body[0] {
                CStmt::Assign(_, CExpr::Binary("&&", lhs, _)) => {
                    assert!(matches!(**lhs, CExpr::Binary("==", _, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn kandr_parameter_style_tolerated() {
        // The paper's Fig. 3 uses K&R declarations.
        let unit = parse(
            "typedef enum { INIT } ST;\nint PUT(REQUEST) INTEGER REQUEST;\n{ REQUEST = 1; return 0; }\n",
        );
        // Parsed as a function whose body follows the stray declaration.
        assert!(unit.is_ok(), "{unit:?}");
    }

    #[test]
    fn errors_have_lines() {
        let e = parse("int F() { x = ; }\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn char_literals_as_bits() {
        let unit = parse("int F() { if (B == '1') { x = 0; } return 0; }\n").unwrap();
        match unit.function("F").unwrap() {
            CDecl::Function { body, .. } => match &body[0] {
                CStmt::If(CExpr::Binary("==", _, rhs), _, _) => {
                    assert_eq!(**rhs, CExpr::Int(1));
                }
                other => panic!("unexpected {other:?}"),
            },
            _ => unreachable!(),
        }
    }
}
