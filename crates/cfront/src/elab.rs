//! Elaboration: C subset AST → unified IR module.
//!
//! The translation keeps the paper's execution model intact: the C
//! function is a `switch` over an enum-typed state variable, executed once
//! per activation. We keep the state variable as a real module variable —
//! the case body (including `NextState = X;` assignments) becomes the FSM
//! state's *actions*, and for every variant `X` assigned in the body we
//! add a transition guarded by `NextState == X`. Guards are evaluated
//! after actions, so the FSM's current state always mirrors the variable,
//! and arbitrary C control flow (nested ifs, service calls in conditions)
//! lowers exactly.
//!
//! Communication procedure calls (`SetupControl()`, `MotorPosition(p)`)
//! become [`cosma_core::ServiceCall`] statements writing hidden
//! `__done_<svc>` flags; call expressions read those flags, and
//! `<SVC>_RESULT()` reads the hidden `__res_<svc>` register.

use crate::ast::{CDecl, CExpr, CStmt, CType, CUnit, SwitchArm};
use cosma_core::ids::{BindingId, VarId};
use cosma_core::{
    EnumType, EnumValue, Expr, Module, ModuleBuilder, ModuleKind, ServiceCall, Stmt, Type, Value,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Declares that a set of service names is reachable through a named
/// interface binding of a given unit type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceBinding {
    /// Binding (interface) name, e.g. `"Distribution_Interface"`.
    pub binding: String,
    /// Communication-unit type name the binding expects.
    pub unit_type: String,
    /// Services reachable through this binding.
    pub services: Vec<String>,
}

impl ServiceBinding {
    /// Convenience constructor.
    #[must_use]
    pub fn new(binding: &str, unit_type: &str, services: &[&str]) -> Self {
        ServiceBinding {
            binding: binding.to_string(),
            unit_type: unit_type.to_string(),
            services: services.iter().map(|s| (*s).to_string()).collect(),
        }
    }
}

/// Elaboration options.
#[derive(Debug, Clone, Default)]
pub struct ElabOptions {
    /// Interface bindings available to the module.
    pub bindings: Vec<ServiceBinding>,
}

/// Elaboration errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabError {
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ElabError {}

fn err<T>(message: impl Into<String>) -> Result<T, ElabError> {
    Err(ElabError {
        message: message.into(),
    })
}

struct Elab {
    builder: ModuleBuilder,
    enums: HashMap<String, Arc<EnumType>>,
    /// variant name -> (enum, index)
    variants: HashMap<String, (Arc<EnumType>, u32)>,
    vars: HashMap<String, VarId>,
    var_tys: HashMap<String, Type>,
    /// service name -> (binding id, hidden done var, hidden result var)
    services: HashMap<String, (BindingId, VarId, VarId)>,
}

impl Elab {
    fn const_value(&self, e: &CExpr) -> Result<Value, ElabError> {
        match e {
            CExpr::Int(i) => Ok(Value::Int(*i)),
            CExpr::Ident(name) => match self.variants.get(name) {
                Some((ty, idx)) => Ok(Value::Enum(
                    EnumValue::from_index(ty.clone(), *idx)
                        .expect("variant index from the same table"),
                )),
                None => err(format!("initializer {name} is not a constant")),
            },
            CExpr::Unary("-", inner) => match self.const_value(inner)? {
                Value::Int(i) => Ok(Value::Int(-i)),
                other => err(format!("cannot negate {other}")),
            },
            other => err(format!("unsupported constant initializer {other:?}")),
        }
    }

    fn lower_expr(&self, e: &CExpr, acts: &mut Vec<Stmt>) -> Result<Expr, ElabError> {
        Ok(match e {
            CExpr::Int(i) => Expr::int(*i),
            CExpr::Ident(name) => {
                if let Some(&v) = self.vars.get(name) {
                    Expr::var(v)
                } else if let Some((ty, idx)) = self.variants.get(name) {
                    Expr::Const(Value::Enum(
                        EnumValue::from_index(ty.clone(), *idx)
                            .expect("variant index from the same table"),
                    ))
                } else {
                    return err(format!("unknown identifier {name}"));
                }
            }
            CExpr::Call(name, args) => {
                // <SVC>_RESULT() reads the hidden result register.
                if let Some(svc) = name.strip_suffix("_RESULT") {
                    if let Some((_, _, res)) = self.lookup_service(svc) {
                        if !args.is_empty() {
                            return err(format!("{name} takes no arguments"));
                        }
                        return Ok(Expr::var(res));
                    }
                }
                let Some((binding, done, res)) = self.lookup_service(name) else {
                    return err(format!(
                        "call to unknown service {name} (bindings offer: {})",
                        self.services.keys().cloned().collect::<Vec<_>>().join(", ")
                    ));
                };
                let mut ir_args = Vec::with_capacity(args.len());
                for a in args {
                    ir_args.push(self.lower_expr(a, acts)?);
                }
                acts.push(Stmt::Call(ServiceCall {
                    binding,
                    service: name.as_str().into(),
                    args: ir_args,
                    done: Some(done),
                    result: Some(res),
                }));
                Expr::var(done)
            }
            CExpr::Unary(op, inner) => {
                let e = self.lower_expr(inner, acts)?;
                match *op {
                    "-" => e.neg(),
                    "!" | "~" => e.not(),
                    other => return err(format!("unsupported unary operator {other}")),
                }
            }
            CExpr::Binary(op, a, b) => {
                let a = self.lower_expr(a, acts)?;
                let b = self.lower_expr(b, acts)?;
                match *op {
                    "+" => a.add(b),
                    "-" => a.sub(b),
                    "*" => a.mul(b),
                    "/" => a.div(b),
                    "%" => Expr::Binary(cosma_core::BinOp::Rem, Box::new(a), Box::new(b)),
                    "==" => self.lower_eq(a, b),
                    "!=" => self.lower_eq(a, b).not(),
                    "<" => a.lt(b),
                    "<=" => a.le(b),
                    ">" => a.gt(b),
                    ">=" => a.ge(b),
                    "&&" | "&" => a.and(b),
                    "||" | "|" => a.or(b),
                    "^" => Expr::Binary(cosma_core::BinOp::Xor, Box::new(a), Box::new(b)),
                    "<<" => Expr::Binary(cosma_core::BinOp::Shl, Box::new(a), Box::new(b)),
                    ">>" => Expr::Binary(cosma_core::BinOp::Shr, Box::new(a), Box::new(b)),
                    other => return err(format!("unsupported binary operator {other}")),
                }
            }
        })
    }

    /// Equality with the C-ism that service done flags (`bool`) compare
    /// against 0/1 integer literals.
    fn lower_eq(&self, a: Expr, b: Expr) -> Expr {
        match (&a, &b) {
            (Expr::Var(_), Expr::Const(Value::Int(0))) => return a.not(),
            (Expr::Var(_), Expr::Const(Value::Int(1))) => return a,
            _ => {}
        }
        a.eq(b)
    }

    fn lookup_service(&self, name: &str) -> Option<(BindingId, VarId, VarId)> {
        self.services.get(name).copied()
    }

    /// Lowers a statement list into IR actions, recording every state
    /// variable target assigned (for transition generation).
    fn lower_stmts(
        &self,
        stmts: &[CStmt],
        state_var: &str,
        targets: &mut Vec<String>,
        out: &mut Vec<Stmt>,
    ) -> Result<(), ElabError> {
        for s in stmts {
            match s {
                CStmt::Assign(name, rhs) => {
                    if name == state_var {
                        if let CExpr::Ident(variant) = rhs {
                            if !targets.contains(variant) {
                                targets.push(variant.clone());
                            }
                        } else {
                            return err("state variable must be assigned a state name");
                        }
                    }
                    let Some(&v) = self.vars.get(name) else {
                        return err(format!("assignment to undeclared variable {name}"));
                    };
                    let mut acts = vec![];
                    let e = self.lower_expr(rhs, &mut acts)?;
                    out.append(&mut acts);
                    out.push(Stmt::assign(v, e));
                }
                CStmt::Expr(e) => {
                    let mut acts = vec![];
                    let _ = self.lower_expr(e, &mut acts)?;
                    out.append(&mut acts);
                }
                CStmt::If(cond, then_b, else_b) => {
                    let mut acts = vec![];
                    let c = self.lower_expr(cond, &mut acts)?;
                    out.append(&mut acts);
                    let mut t = vec![];
                    self.lower_stmts(then_b, state_var, targets, &mut t)?;
                    let mut e = vec![];
                    self.lower_stmts(else_b, state_var, targets, &mut e)?;
                    out.push(Stmt::if_else(c, t, e));
                }
                CStmt::Block(b) => self.lower_stmts(b, state_var, targets, out)?,
                CStmt::Break | CStmt::Return(_) => {}
                CStmt::Switch(_, _) => {
                    return err("nested switch statements are not supported");
                }
            }
        }
        Ok(())
    }
}

/// Elaborates one function of a parsed unit into an IR module.
///
/// The function must follow the paper's module shape: a `switch` over an
/// enum-typed global state variable (optionally preceded/followed by plain
/// statements executed every activation).
///
/// # Errors
///
/// Returns [`ElabError`] when the source falls outside the supported
/// subset (see module docs) or references unknown identifiers/services.
pub fn elaborate(
    unit: &CUnit,
    function: &str,
    kind: ModuleKind,
    opts: &ElabOptions,
) -> Result<Module, ElabError> {
    let Some(CDecl::Function { body, .. }) = unit.function(function) else {
        return err(format!("no function named {function}"));
    };
    let mut builder = ModuleBuilder::new(function.to_lowercase(), kind);

    // Pass 1: enums.
    let mut enums = HashMap::new();
    let mut variants: HashMap<String, (Arc<EnumType>, u32)> = HashMap::new();
    for d in &unit.decls {
        if let CDecl::EnumDef { name, variants: vs } = d {
            let ty = EnumType::new(name.clone(), vs.clone());
            for (i, v) in vs.iter().enumerate() {
                variants.insert(v.clone(), (ty.clone(), i as u32));
            }
            enums.insert(name.clone(), ty);
        }
    }

    // Pass 2: bindings and hidden service variables.
    let mut services = HashMap::new();
    for sb in &opts.bindings {
        let bid = builder.binding(sb.binding.clone(), sb.unit_type.clone());
        for svc in &sb.services {
            let done = builder.var(format!("__done_{svc}"), Type::Bool, Value::Bool(false));
            let res = builder.var(format!("__res_{svc}"), Type::INT16, Value::Int(0));
            services.insert(svc.clone(), (bid, done, res));
        }
    }

    // Pass 3: globals.
    let mut elab = Elab {
        builder,
        enums,
        variants,
        vars: HashMap::new(),
        var_tys: HashMap::new(),
        services,
    };
    for d in &unit.decls {
        if let CDecl::Global { ty, name, init } = d {
            let ir_ty = match ty {
                CType::Int => Type::INT16,
                CType::Named(n) => match elab.enums.get(n) {
                    Some(e) => Type::Enum(e.clone()),
                    None => return err(format!("unknown type {n}")),
                },
                CType::Void => return err(format!("variable {name} cannot be void")),
            };
            let init_v = match init {
                Some(e) => elab.const_value(e)?,
                None => ir_ty.default_value(),
            };
            if !ir_ty.admits(&init_v) {
                return err(format!("initializer for {name} has the wrong type"));
            }
            let id = elab.builder.var(name.clone(), ir_ty.clone(), init_v);
            elab.vars.insert(name.clone(), id);
            elab.var_tys.insert(name.clone(), ir_ty);
        }
    }

    // Pass 4: find the switch and the prologue/epilogue.
    let mut prologue: Vec<&CStmt> = vec![];
    let mut epilogue: Vec<&CStmt> = vec![];
    let mut the_switch: Option<(&CExpr, &[SwitchArm])> = None;
    for s in body {
        match s {
            CStmt::Switch(scrutinee, arms) => {
                if the_switch.is_some() {
                    return err("module function must contain exactly one switch");
                }
                the_switch = Some((scrutinee, arms));
            }
            CStmt::Return(_) => {}
            other => {
                if the_switch.is_none() {
                    prologue.push(other);
                } else {
                    epilogue.push(other);
                }
            }
        }
    }
    let Some((scrutinee, arms)) = the_switch else {
        return err("module function must contain a switch over its state variable");
    };
    let CExpr::Ident(state_var) = scrutinee else {
        return err("switch scrutinee must be the state variable");
    };
    let Some(Type::Enum(state_enum)) = elab.var_tys.get(state_var).cloned() else {
        return err(format!(
            "state variable {state_var} must be an enum-typed global"
        ));
    };
    let state_var_id = elab.vars[state_var];

    // Pass 5: create one FSM state per enum variant; fill from arms.
    let mut arm_map: HashMap<&str, &SwitchArm> = HashMap::new();
    let mut default_arm: Option<&SwitchArm> = None;
    for arm in arms {
        match &arm.label {
            Some(l) => {
                if state_enum.index_of(l).is_none() {
                    return err(format!(
                        "case label {l} is not a variant of {}",
                        state_enum.name()
                    ));
                }
                arm_map.insert(l.as_str(), arm);
            }
            None => default_arm = Some(arm),
        }
    }
    let state_ids: Vec<_> = state_enum
        .variants()
        .iter()
        .map(|v| elab.builder.state(v.clone()))
        .collect();
    let variants_owned: Vec<String> = state_enum.variants().to_vec();
    for (vi, vname) in variants_owned.iter().enumerate() {
        let sid = state_ids[vi];
        let body: &[CStmt] = match arm_map.get(vname.as_str()) {
            Some(arm) => &arm.body,
            None => default_arm.map(|a| &a.body[..]).unwrap_or(&[]),
        };
        let mut actions = vec![];
        let mut targets = vec![];
        // Prologue runs every activation, before the case body.
        for p in &prologue {
            elab.lower_stmts(
                std::slice::from_ref(*p),
                state_var,
                &mut targets,
                &mut actions,
            )?;
        }
        elab.lower_stmts(body, state_var, &mut targets, &mut actions)?;
        for e in &epilogue {
            elab.lower_stmts(
                std::slice::from_ref(*e),
                state_var,
                &mut targets,
                &mut actions,
            )?;
        }
        elab.builder.actions(sid, actions);
        for target in targets {
            let Some(tidx) = state_enum.index_of(&target) else {
                return err(format!("state target {target} is not a variant"));
            };
            let guard = Expr::var(state_var_id).eq(Expr::Const(Value::Enum(
                EnumValue::from_index(state_enum.clone(), tidx).expect("valid index"),
            )));
            elab.builder
                .transition(sid, Some(guard), state_ids[tidx as usize]);
        }
    }
    // Initial state = the state variable's initial value.
    let init_idx = unit
        .decls
        .iter()
        .find_map(|d| match d {
            CDecl::Global { name, init, .. } if name == state_var => Some(init.clone()),
            _ => None,
        })
        .flatten()
        .map(|e| elab.const_value(&e))
        .transpose()?
        .map(|v| match v {
            Value::Enum(ev) => Ok(ev.index() as usize),
            other => err::<usize>(format!("state variable initializer {other} is not a state")),
        })
        .transpose()?
        .unwrap_or(0);
    elab.builder.initial(state_ids[init_idx]);
    elab.builder.build().map_err(|e| ElabError {
        message: e.to_string(),
    })
}

/// Parses and elaborates in one step.
///
/// # Errors
///
/// Propagates parse errors (as [`ElabError`]) and elaboration errors.
pub fn compile_module(
    src: &str,
    function: &str,
    kind: ModuleKind,
    opts: &ElabOptions,
) -> Result<Module, ElabError> {
    let unit = crate::parser::parse(src).map_err(|e| ElabError {
        message: e.to_string(),
    })?;
    elaborate(&unit, function, kind, opts)
}
