//! Abstract syntax tree for the C subset.

/// A C type name in the subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CType {
    /// `int` (16-bit signed on our targets).
    Int,
    /// A `typedef enum` name.
    Named(String),
    /// `void` (function returns only).
    Void,
}

/// A C expression.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// Integer literal.
    Int(i64),
    /// Identifier (global variable or enum variant).
    Ident(String),
    /// Function call — in the subset these are always communication
    /// service calls or `<SVC>_RESULT()` accessors.
    Call(String, Vec<CExpr>),
    /// Unary operation: `-`, `!`, `~`.
    Unary(&'static str, Box<CExpr>),
    /// Binary operation.
    Binary(&'static str, Box<CExpr>, Box<CExpr>),
}

/// A C statement.
#[derive(Debug, Clone, PartialEq)]
pub enum CStmt {
    /// `lhs = rhs;`
    Assign(String, CExpr),
    /// Expression statement (a bare service call).
    Expr(CExpr),
    /// `if (cond) { .. } else { .. }`
    If(CExpr, Vec<CStmt>, Vec<CStmt>),
    /// `switch (expr) { case X: .. }`
    Switch(CExpr, Vec<SwitchArm>),
    /// `break;`
    Break,
    /// `return e;` (expression optional).
    Return(Option<CExpr>),
    /// Nested block.
    Block(Vec<CStmt>),
}

/// One arm of a switch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchArm {
    /// Case label (enum variant name), or `None` for `default`.
    pub label: Option<String>,
    /// Arm body (up to and including its `break`).
    pub body: Vec<CStmt>,
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum CDecl {
    /// `typedef enum { A, B } NAME;`
    EnumDef {
        /// Typedef name.
        name: String,
        /// Variants in order.
        variants: Vec<String>,
    },
    /// Global variable with optional initializer.
    Global {
        /// Declared type.
        ty: CType,
        /// Variable name.
        name: String,
        /// Initializer expression.
        init: Option<CExpr>,
    },
    /// Function definition.
    Function {
        /// Return type.
        ret: CType,
        /// Function name.
        name: String,
        /// Parameters (name, type).
        params: Vec<(String, CType)>,
        /// Body statements.
        body: Vec<CStmt>,
    },
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CUnit {
    /// Declarations in order.
    pub decls: Vec<CDecl>,
}

impl CUnit {
    /// Finds a function by name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&CDecl> {
        self.decls
            .iter()
            .find(|d| matches!(d, CDecl::Function { name: n, .. } if n == name))
    }

    /// Names of all defined functions.
    #[must_use]
    pub fn function_names(&self) -> Vec<&str> {
        self.decls
            .iter()
            .filter_map(|d| match d {
                CDecl::Function { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }
}
