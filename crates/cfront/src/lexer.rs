//! Tokenizer for the C subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Punctuation / operator, e.g. `"=="`, `"{"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Punct(p) => write!(f, "{p}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line number.
    pub line: usize,
    /// Offending character.
    pub ch: char,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: unexpected character {:?}", self.line, self.ch)
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->", "+", "-", "*", "/", "%", "<", ">", "=",
    "!", "~", "&", "|", "^", "(", ")", "{", "}", "[", "]", ";", ",", ":", ".", "?",
];

/// Tokenizes C-subset source.
///
/// Skips `//` and `/* */` comments and preprocessor lines (`#...`).
///
/// # Errors
///
/// Returns [`LexError`] on characters outside the subset.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = vec![];
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Preprocessor lines are ignored wholesale.
        if c == '#' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                if bytes[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 2).min(bytes.len());
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            out.push(Spanned {
                tok: Tok::Ident(bytes[start..i].iter().collect()),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut radix = 10;
            if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] == 'x' || bytes[i + 1] == 'X') {
                radix = 16;
                i += 2;
            }
            while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            let digits = if radix == 16 { &text[2..] } else { &text[..] };
            let v = i64::from_str_radix(digits, radix).map_err(|_| LexError { line, ch: c })?;
            out.push(Spanned {
                tok: Tok::Int(v),
                line,
            });
            continue;
        }
        // Character literal like '1' used in bit comparisons maps to an
        // integer 0/1 token for convenience.
        if c == '\'' && i + 2 < bytes.len() && bytes[i + 2] == '\'' {
            let v = match bytes[i + 1] {
                '0' => 0,
                '1' => 1,
                other => return Err(LexError { line, ch: other }),
            };
            out.push(Spanned {
                tok: Tok::Int(v),
                line,
            });
            i += 3;
            continue;
        }
        let mut matched = false;
        for p in PUNCTS {
            if bytes[i..].starts_with(&p.chars().collect::<Vec<_>>()[..]) {
                out.push(Spanned {
                    tok: Tok::Punct(p),
                    line,
                });
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(LexError { line, ch: c });
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        assert_eq!(
            toks("x = 0x1F + 2;"),
            vec![
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Int(31),
                Tok::Punct("+"),
                Tok::Int(2),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_preprocessor_skipped() {
        assert_eq!(
            toks("// c1\n#include <x.h>\n/* c2\nc3 */ y"),
            vec![Tok::Ident("y".into()), Tok::Eof]
        );
    }

    #[test]
    fn two_char_operators_win() {
        assert_eq!(
            toks("a == b != c <= d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("=="),
                Tok::Ident("b".into()),
                Tok::Punct("!="),
                Tok::Ident("c".into()),
                Tok::Punct("<="),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn char_literals_become_ints() {
        assert_eq!(toks("'1' '0'"), vec![Tok::Int(1), Tok::Int(0), Tok::Eof]);
    }

    #[test]
    fn line_numbers_tracked() {
        let ts = lex("a\nb\n\nc").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 4);
    }

    #[test]
    fn bad_character_reported() {
        let e = lex("a @ b").unwrap_err();
        assert_eq!(e.ch, '@');
        assert!(e.to_string().contains('@'));
    }
}
