//! # cosma-cfront — C subset front-end
//!
//! Parses the paper's C module style (Figure 6b: a `switch`-based FSM over
//! an enum state table, calling communication procedures) and elaborates
//! it into the unified IR, from which both co-simulation and co-synthesis
//! proceed.
//!
//! ## Example
//!
//! ```
//! use cosma_cfront::{compile_module, ElabOptions, ServiceBinding};
//! use cosma_core::ModuleKind;
//!
//! let src = r#"
//! typedef enum { Start, PingCall, Done } ST;
//! ST NextState = Start;
//! int DEMO() {
//!     switch (NextState) {
//!         case Start:    { NextState = PingCall; } break;
//!         case PingCall: { if (ping()) { NextState = Done; } } break;
//!         case Done:     { } break;
//!         default:       { NextState = Start; }
//!     }
//!     return 1;
//! }
//! "#;
//! let opts = ElabOptions {
//!     bindings: vec![ServiceBinding::new("iface", "link", &["ping"])],
//! };
//! let module = compile_module(src, "DEMO", ModuleKind::Software, &opts)?;
//! assert_eq!(module.fsm().state_count(), 3);
//! assert_eq!(module.name(), "demo");
//! # Ok::<(), cosma_cfront::ElabError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod elab;
mod lexer;
mod parser;

pub use elab::{compile_module, elaborate, ElabError, ElabOptions, ServiceBinding};
pub use lexer::{lex, LexError, Spanned, Tok};
pub use parser::{parse, ParseError};

#[cfg(test)]
mod tests {
    use super::*;
    use cosma_core::ids::VarId;
    use cosma_core::{
        Env, EvalError, FsmExec, MapEnv, ModuleKind, ReadEnv, ServiceCall, ServiceOutcome, Value,
    };

    /// The paper's Figure 6b Distribution subsystem, lightly completed
    /// (the figure elides some case arms).
    const DISTRIBUTION_SRC: &str = r#"
typedef enum { Start, SetupControlCall, Step, MotorPositionCall, Next, ReadStateCall, NextStep } DIST_STATES;
DIST_STATES NextState = Start;
int POSITION = 0;
int MOTORSTATE = 0;
int SEGMENTS = 4;

int DISTRIBUTION()
{
    switch (NextState) {
    case Start:
    {
        /* LoadMotorConstraints */
        POSITION = 0;
        NextState = SetupControlCall;
    } break;
    case SetupControlCall:
    {
        if (SetupControl()) { NextState = Step; }
    } break;
    case Step:
    {
        /* PositionDefinition */
        POSITION = POSITION + 25;
        NextState = MotorPositionCall;
    } break;
    case MotorPositionCall:
    {
        if (MotorPosition(POSITION)) { NextState = Next; }
    } break;
    case Next:
    {
        NextState = ReadStateCall;
    } break;
    case ReadStateCall:
    {
        if (ReadMotorState()) {
            MOTORSTATE = ReadMotorState_RESULT();
            NextState = NextStep;
        }
    } break;
    case NextStep:
    {
        if (POSITION < SEGMENTS * 25) { NextState = Step; }
    } break;
    default:
    { NextState = Start; }
    }
    return 1;
}
"#;

    fn distribution_opts() -> ElabOptions {
        ElabOptions {
            bindings: vec![ServiceBinding::new(
                "Distribution_Interface",
                "swhw_link",
                &["SetupControl", "MotorPosition", "ReadMotorState"],
            )],
        }
    }

    /// An Env that answers every service call with "done every 2nd try",
    /// recording the calls, to emulate a communication unit.
    struct StubServices {
        inner: MapEnv,
        tries: std::collections::HashMap<String, u32>,
        log: Vec<(String, Vec<Value>)>,
    }

    impl ReadEnv for StubServices {
        fn read_var(&self, v: VarId) -> Result<Value, EvalError> {
            self.inner.read_var(v)
        }
        fn read_port(&self, p: cosma_core::ids::PortId) -> Result<Value, EvalError> {
            self.inner.read_port(p)
        }
    }

    impl Env for StubServices {
        fn write_var(&mut self, v: VarId, value: Value) -> Result<(), EvalError> {
            self.inner.write_var(v, value)
        }
        fn drive_port(
            &mut self,
            p: cosma_core::ids::PortId,
            value: Value,
        ) -> Result<(), EvalError> {
            self.inner.drive_port(p, value)
        }
        fn call_service(
            &mut self,
            call: &ServiceCall,
            args: &[Value],
        ) -> Result<ServiceOutcome, EvalError> {
            self.log.push((call.service.to_string(), args.to_vec()));
            let n = self.tries.entry(call.service.to_string()).or_insert(0);
            *n += 1;
            if n.is_multiple_of(2) {
                Ok(ServiceOutcome::done_with(Value::Int(7)))
            } else {
                Ok(ServiceOutcome::pending())
            }
        }
    }

    #[test]
    fn distribution_elaborates() {
        let m = compile_module(
            DISTRIBUTION_SRC,
            "DISTRIBUTION",
            ModuleKind::Software,
            &distribution_opts(),
        )
        .unwrap();
        assert_eq!(m.fsm().state_count(), 7);
        assert!(m.fsm().find_state("SetupControlCall").is_some());
        assert_eq!(m.bindings().len(), 1);
        assert_eq!(m.kind(), ModuleKind::Software);
        // Hidden service variables exist.
        assert!(m.var_id("__done_SetupControl").is_some());
        assert!(m.var_id("__res_ReadMotorState").is_some());
    }

    #[test]
    fn distribution_executes_one_transition_per_activation() {
        let m = compile_module(
            DISTRIBUTION_SRC,
            "DISTRIBUTION",
            ModuleKind::Software,
            &distribution_opts(),
        )
        .unwrap();
        let mut env = StubServices {
            inner: MapEnv::new(),
            tries: Default::default(),
            log: vec![],
        };
        for v in m.vars() {
            env.inner.add_var(v.ty().clone(), v.init().clone());
        }
        let fsm = m.fsm();
        let mut exec = FsmExec::new(fsm);
        assert_eq!(fsm.state(exec.current()).name(), "Start");
        exec.step(fsm, &mut env).unwrap();
        assert_eq!(fsm.state(exec.current()).name(), "SetupControlCall");
        // First SetupControl call is pending -> stay.
        exec.step(fsm, &mut env).unwrap();
        assert_eq!(fsm.state(exec.current()).name(), "SetupControlCall");
        // Second call completes -> Step.
        exec.step(fsm, &mut env).unwrap();
        assert_eq!(fsm.state(exec.current()).name(), "Step");
        assert_eq!(
            env.log.iter().filter(|(s, _)| s == "SetupControl").count(),
            2
        );
    }

    #[test]
    fn distribution_full_run_covers_segments() {
        let m = compile_module(
            DISTRIBUTION_SRC,
            "DISTRIBUTION",
            ModuleKind::Software,
            &distribution_opts(),
        )
        .unwrap();
        let mut env = StubServices {
            inner: MapEnv::new(),
            tries: Default::default(),
            log: vec![],
        };
        for v in m.vars() {
            env.inner.add_var(v.ty().clone(), v.init().clone());
        }
        let fsm = m.fsm();
        let mut exec = FsmExec::new(fsm);
        for _ in 0..200 {
            exec.step(fsm, &mut env).unwrap();
        }
        // All four segment positions were sent via MotorPosition.
        let positions: Vec<i64> = env
            .log
            .iter()
            .filter(|(s, _)| s == "MotorPosition")
            .map(|(_, a)| a[0].as_int().unwrap())
            .collect();
        assert!(positions.contains(&25));
        assert!(positions.contains(&100));
        // MOTORSTATE got the stub result.
        let ms = m.var_id("MOTORSTATE").unwrap();
        assert_eq!(env.inner.var(ms), &Value::Int(7));
        // Ends parked in NextStep.
        assert_eq!(fsm.state(exec.current()).name(), "NextStep");
    }

    #[test]
    fn unknown_service_reported() {
        let src = r#"
typedef enum { A } ST;
ST S = A;
int F() { switch (S) { case A: { if (Mystery()) { S = A; } } break; } return 1; }
"#;
        let e =
            compile_module(src, "F", ModuleKind::Software, &ElabOptions::default()).unwrap_err();
        assert!(e.to_string().contains("Mystery"), "{e}");
    }

    #[test]
    fn missing_switch_reported() {
        let src = "int F() { return 1; }\n";
        let e =
            compile_module(src, "F", ModuleKind::Software, &ElabOptions::default()).unwrap_err();
        assert!(e.to_string().contains("switch"), "{e}");
    }

    #[test]
    fn non_enum_state_var_reported() {
        let src = "int S = 0;\nint F() { switch (S) { case A: { } break; } return 1; }\n";
        let e =
            compile_module(src, "F", ModuleKind::Software, &ElabOptions::default()).unwrap_err();
        assert!(e.to_string().contains("enum"), "{e}");
    }

    #[test]
    fn bad_case_label_reported() {
        let src = r#"
typedef enum { A } ST;
ST S = A;
int F() { switch (S) { case B: { } break; } return 1; }
"#;
        let e =
            compile_module(src, "F", ModuleKind::Software, &ElabOptions::default()).unwrap_err();
        assert!(e.to_string().contains('B'), "{e}");
    }

    #[test]
    fn initial_state_follows_initializer() {
        let src = r#"
typedef enum { A, B } ST;
ST S = B;
int F() { switch (S) { case A: { } break; case B: { S = A; } break; } return 1; }
"#;
        let m = compile_module(src, "F", ModuleKind::Software, &ElabOptions::default()).unwrap();
        assert_eq!(m.fsm().state(m.fsm().initial()).name(), "B");
    }

    #[test]
    fn full_operator_repertoire_elaborates_and_runs() {
        let src = r#"
typedef enum { A, B } ST;
ST S = A;
int R1 = 0;
int R2 = 0;
int R3 = 0;
int R4 = 0;
int F() {
    switch (S) {
    case A:
    {
        R1 = (13 % 5) ^ 3;
        R2 = (1 << 4) >> 2;
        R3 = -7 / 2;
        R4 = 6 > 2 && 3 != 4;
        S = B;
    } break;
    case B: { } break;
    }
    return 1;
}
"#;
        let m = compile_module(src, "F", ModuleKind::Software, &ElabOptions::default()).unwrap();
        let mut env = MapEnv::new();
        for v in m.vars() {
            env.add_var(v.ty().clone(), v.init().clone());
        }
        let mut exec = FsmExec::new(m.fsm());
        exec.step(m.fsm(), &mut env).unwrap();
        assert_eq!(env.var(m.var_id("R1").unwrap()), &Value::Int((13 % 5) ^ 3));
        assert_eq!(env.var(m.var_id("R2").unwrap()), &Value::Int((1 << 4) >> 2));
        assert_eq!(env.var(m.var_id("R3").unwrap()), &Value::Int(-7 / 2));
        assert_eq!(env.var(m.var_id("R4").unwrap()), &Value::Bool(true));
    }

    #[test]
    fn prologue_runs_every_activation() {
        let src = r#"
typedef enum { A, B } ST;
ST S = A;
int TICKS = 0;
int F() {
    TICKS = TICKS + 1;
    switch (S) { case A: { S = B; } break; case B: { S = A; } break; }
    return 1;
}
"#;
        let m = compile_module(src, "F", ModuleKind::Software, &ElabOptions::default()).unwrap();
        let mut env = MapEnv::new();
        for v in m.vars() {
            env.add_var(v.ty().clone(), v.init().clone());
        }
        let mut exec = FsmExec::new(m.fsm());
        for _ in 0..5 {
            exec.step(m.fsm(), &mut env).unwrap();
        }
        let ticks = m.var_id("TICKS").unwrap();
        assert_eq!(env.var(ticks), &Value::Int(5));
    }
}
