//! Human-readable dumps of IR entities, used by the experiment harnesses
//! and for debugging front-end elaboration.

use crate::comm::CommUnitSpec;
use crate::expr::{BinOp, Expr, UnOp};
use crate::fsm::Fsm;
use crate::module::Module;
use crate::stmt::Stmt;
use crate::system::System;
use std::fmt::Write as _;

/// Pretty-prints an expression with ids left symbolic (`v0`, `p1`, `a2`).
#[must_use]
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::Const(v) => v.to_string(),
        Expr::Var(v) => format!("{v}"),
        Expr::Port(p) => format!("{p}"),
        Expr::Arg(i) => format!("a{i}"),
        Expr::Unary(UnOp::Neg, e) => format!("-({})", expr_to_string(e)),
        Expr::Unary(UnOp::Not, e) => format!("!({})", expr_to_string(e)),
        Expr::Binary(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::And => "&",
                BinOp::Or => "|",
                BinOp::Xor => "^",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Min => "min",
                BinOp::Max => "max",
            };
            format!("({} {} {})", expr_to_string(a), sym, expr_to_string(b))
        }
    }
}

fn stmt_lines(s: &Stmt, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::Assign(v, e) => {
            let _ = writeln!(out, "{pad}{v} := {}", expr_to_string(e));
        }
        Stmt::Drive(p, e) => {
            let _ = writeln!(out, "{pad}{p} <= {}", expr_to_string(e));
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "{pad}if {} {{", expr_to_string(cond));
            for t in then_body {
                stmt_lines(t, indent + 1, out);
            }
            if !else_body.is_empty() {
                let _ = writeln!(out, "{pad}}} else {{");
                for t in else_body {
                    stmt_lines(t, indent + 1, out);
                }
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Call(c) => {
            let args: Vec<String> = c.args.iter().map(expr_to_string).collect();
            let _ = writeln!(
                out,
                "{pad}call {}.{}({})",
                c.binding,
                c.service,
                args.join(", ")
            );
        }
        Stmt::Trace(label, args) => {
            let args: Vec<String> = args.iter().map(expr_to_string).collect();
            let _ = writeln!(out, "{pad}trace {label}({})", args.join(", "));
        }
    }
}

/// Pretty-prints an FSM.
#[must_use]
pub fn fsm_to_string(fsm: &Fsm) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "fsm ({} states, initial {})", fsm.state_count(), {
        fsm.state(fsm.initial()).name()
    });
    for sid in fsm.state_ids() {
        let st = fsm.state(sid);
        let _ = writeln!(out, "  state {}:", st.name());
        for a in &st.actions {
            stmt_lines(a, 2, &mut out);
        }
        for t in &st.transitions {
            match &t.guard {
                Some(g) => {
                    let _ = writeln!(
                        out,
                        "    when {} -> {}",
                        expr_to_string(g),
                        fsm.state(t.target).name()
                    );
                }
                None => {
                    let _ = writeln!(out, "    always -> {}", fsm.state(t.target).name());
                }
            }
        }
    }
    out
}

/// Pretty-prints a module header + FSM.
#[must_use]
pub fn module_to_string(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {} ({})", m.name(), m.kind());
    for p in m.ports() {
        let _ = writeln!(out, "  port {} : {} {}", p.name(), p.dir(), p.ty());
    }
    for v in m.vars() {
        let _ = writeln!(out, "  var {} : {} := {}", v.name(), v.ty(), v.init());
    }
    for b in m.bindings() {
        let _ = writeln!(out, "  uses {} : {}", b.name(), b.unit_type());
    }
    out.push_str(&fsm_to_string(m.fsm()));
    out
}

/// Pretty-prints a communication-unit spec.
#[must_use]
pub fn unit_to_string(u: &CommUnitSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "unit {}", u.name());
    for w in u.wires() {
        let _ = writeln!(out, "  wire {} : {} := {}", w.name(), w.ty(), w.init());
    }
    if u.controller().is_some() {
        let _ = writeln!(out, "  controller:");
    }
    for s in u.services() {
        let args: Vec<String> = s.args().iter().map(|(n, t)| format!("{n}: {t}")).collect();
        let ret = s.returns().map(|t| format!(" -> {t}")).unwrap_or_default();
        let _ = writeln!(
            out,
            "  service {}({}){} [{} states]",
            s.name(),
            args.join(", "),
            ret,
            s.fsm().state_count()
        );
    }
    out
}

/// Pretty-prints a full system inventory.
#[must_use]
pub fn system_to_string(sys: &System) -> String {
    let mut out = format!("{sys}");
    for m in sys.modules() {
        out.push('\n');
        out.push_str(&module_to_string(m));
    }
    for u in sys.units() {
        out.push('\n');
        out.push_str(&unit_to_string(u.spec()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VarId;
    use crate::FsmBuilder;

    #[test]
    fn expr_pretty() {
        let e = Expr::var(VarId::new(0)).add(Expr::int(1)).lt(Expr::int(10));
        assert_eq!(expr_to_string(&e), "((v0 + 1) < 10)");
        assert_eq!(expr_to_string(&Expr::arg(2).neg()), "-(a2)");
    }

    #[test]
    fn module_unit_and_system_printers() {
        use crate::comm::{CommUnitBuilder, ServiceSpecBuilder, SERVICE_DONE_VAR};
        use crate::{ModuleBuilder, ModuleKind, SystemBuilder, Type, Value};

        let mut ub = CommUnitBuilder::new("link");
        let w = ub.wire("FLAG", Type::Bit, Value::Bit(crate::Bit::Zero));
        let mut svc = ServiceSpecBuilder::new("ping");
        svc.arg("N", Type::INT16);
        let st = svc.state("S");
        svc.actions(
            st,
            vec![
                Stmt::drive(w, Expr::bit(crate::Bit::One)),
                Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true)),
            ],
        );
        svc.transition(st, None, st);
        svc.initial(st);
        ub.service(svc.build().unwrap());
        let unit = ub.build().unwrap();
        let unit_text = unit_to_string(&unit);
        assert!(unit_text.contains("wire FLAG : bit"), "{unit_text}");
        assert!(
            unit_text.contains("service ping(N: int16) [1 states]"),
            "{unit_text}"
        );

        let mut mb = ModuleBuilder::new("m", ModuleKind::Software);
        let d = mb.var("D", Type::Bool, Value::Bool(false));
        let b = mb.binding("iface", "link");
        let s0 = mb.state("GO");
        mb.actions(
            s0,
            vec![Stmt::Call(crate::ServiceCall {
                binding: b,
                service: "ping".into(),
                args: vec![Expr::int(1)],
                done: Some(d),
                result: None,
            })],
        );
        mb.transition(s0, None, s0);
        mb.initial(s0);
        let m = mb.build().unwrap();
        let m_text = module_to_string(&m);
        assert!(m_text.contains("module m (software)"), "{m_text}");
        assert!(m_text.contains("uses iface : link"), "{m_text}");
        assert!(m_text.contains("call b0.ping(1)"), "{m_text}");

        let mut sb = SystemBuilder::new("sys");
        let mr = sb.module(m);
        let ur = sb.unit("the_link", unit);
        sb.bind(mr, "iface", ur).unwrap();
        let sys = sb.build().unwrap();
        let s_text = system_to_string(&sys);
        assert!(s_text.contains("system sys"), "{s_text}");
        assert!(s_text.contains("unit the_link : link"), "{s_text}");
    }

    #[test]
    fn fsm_pretty_includes_states_and_guards() {
        let mut b = FsmBuilder::new();
        let a = b.state("A");
        let z = b.state("Z");
        b.actions(a, vec![Stmt::assign(VarId::new(0), Expr::int(1))]);
        b.transition(a, Some(Expr::var(VarId::new(0)).gt(Expr::int(0))), z);
        b.transition(z, None, a);
        b.initial(a);
        let fsm = b.build().unwrap();
        let text = fsm_to_string(&fsm);
        assert!(text.contains("state A:"), "{text}");
        assert!(
            text.contains("when ((v0 > 0)) -> Z") || text.contains("when (v0 > 0) -> Z"),
            "{text}"
        );
        assert!(text.contains("always -> A"), "{text}");
    }
}
