//! The FSM interpreter: one activation = actions + at most one transition.
//!
//! This is the single execution semantics shared by co-simulation (SW
//! modules, HW processes, communication-unit controllers and services) and
//! used as the golden reference that co-synthesis artifacts (MC16 binaries,
//! RTL netlists) are checked against.

use crate::expr::{EvalError, Expr, ReadEnv};
use crate::fsm::Fsm;
use crate::ids::{PortId, StateId, VarId};
use crate::stmt::{ServiceCall, Stmt};
use crate::value::Value;

/// Result of activating a communication-unit service for one step.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOutcome {
    /// `true` once the service protocol has completed this activation.
    pub done: bool,
    /// Return value, present only when `done` and the service produces
    /// one.
    pub result: Option<Value>,
}

impl ServiceOutcome {
    /// A still-in-progress outcome.
    #[must_use]
    pub fn pending() -> Self {
        ServiceOutcome {
            done: false,
            result: None,
        }
    }

    /// A completed outcome without a return value.
    #[must_use]
    pub fn done() -> Self {
        ServiceOutcome {
            done: true,
            result: None,
        }
    }

    /// A completed outcome carrying a return value.
    #[must_use]
    pub fn done_with(v: Value) -> Self {
        ServiceOutcome {
            done: true,
            result: Some(v),
        }
    }
}

/// Full read/write execution environment for FSM activation.
///
/// Implementations bridge the IR to a concrete world: the co-simulation
/// kernel's signals, a unit's internal wires, a test fixture's hash maps.
pub trait Env: ReadEnv {
    /// Writes a variable (immediate).
    ///
    /// # Errors
    ///
    /// Returns an error if the id is unknown.
    fn write_var(&mut self, v: VarId, value: Value) -> Result<(), EvalError>;

    /// Drives a port/wire. Under the delta-cycle kernel this schedules the
    /// value for the next delta; simple environments apply it immediately.
    ///
    /// # Errors
    ///
    /// Returns an error if the id is unknown.
    fn drive_port(&mut self, p: PortId, value: Value) -> Result<(), EvalError>;

    /// Activates one step of a bound service with evaluated arguments.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::Service`] when the binding or service is
    /// unknown, or the arity mismatches.
    fn call_service(
        &mut self,
        call: &ServiceCall,
        args: &[Value],
    ) -> Result<ServiceOutcome, EvalError>;

    /// Whether [`exec_stmt`] should record every executed service call as
    /// a [`DeferredCall`] in [`StepEffects::calls`]. Default `false`:
    /// immediate-application environments pay nothing for the recording
    /// machinery. Two-phase (step/commit) schedulers return `true` so the
    /// activation's call stream — with the outcomes the environment
    /// answered — can be replayed against the real units at commit time.
    fn record_calls(&self) -> bool {
        false
    }

    /// Receives a diagnostic trace record. Default: ignored.
    fn trace(&mut self, _label: &str, _values: &[Value]) {}

    /// Receives a diagnostic trace record whose label is already interned
    /// ([`Stmt::Trace`] carries `Arc<str>` labels). Environments that
    /// buffer or store trace records can clone the `Arc` (a refcount
    /// bump) instead of allocating a fresh `String` per activation; the
    /// default forwards to [`Env::trace`] so plain environments need not
    /// care.
    fn trace_interned(&mut self, label: &std::sync::Arc<str>, values: &[Value]) {
        self.trace(label, values);
    }
}

/// A service call that returned [`ServiceOutcome::pending`] during an
/// activation: the binding and service the FSM is blocked on.
///
/// Schedulers use this to *park* a blocked FSM: instead of re-activating
/// it every cycle just to watch the call spin, they wait on the bound
/// unit's completion wires and resume the FSM when one of them events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingCall {
    /// The module binding the call went through.
    pub binding: crate::ids::BindingId,
    /// The service name (shared with the call statement — recording a
    /// pending call is a refcount bump, not an allocation).
    pub service: std::sync::Arc<str>,
}

/// One service call executed during an activation, recorded (only when
/// [`Env::record_calls`] is `true`) with its evaluated arguments and the
/// outcome the environment answered.
///
/// This is the delta a two-phase scheduler buffers during its *step*
/// phase: the step runs against a snapshot and records what it called;
/// the *commit* phase then replays the records against the real units in
/// deterministic `(module, call index)` order and validates that the
/// answered outcomes still hold.
#[derive(Debug, Clone, PartialEq)]
pub struct DeferredCall {
    /// The module binding the call went through.
    pub binding: crate::ids::BindingId,
    /// The service name (refcounted share of the call statement's name).
    pub service: std::sync::Arc<str>,
    /// The evaluated argument values.
    pub args: Vec<Value>,
    /// The outcome the environment answered during the step.
    pub outcome: ServiceOutcome,
}

/// Side effects of executing statements ([`exec_stmt`]), accumulated
/// across one activation.
///
/// The struct doubles as a reusable scratch arena: a scheduler that
/// keeps one `StepEffects` per worker and steps through
/// [`FsmExec::step_with`] pays zero steady-state heap allocation for
/// call-argument vectors and trace-value buffers — [`exec_stmt`] draws
/// them from the internal pools, and [`StepEffects::recycle`] returns
/// them after the effects have been consumed. Equality ignores the
/// pools: two effects with the same calls/pending are equal however
/// their arenas differ.
#[derive(Debug, Clone, Default)]
pub struct StepEffects {
    /// Number of service-call statements executed.
    pub service_calls: u32,
    /// Calls that returned a pending outcome, in execution order (empty
    /// for activations whose calls all completed — `Vec::new` does not
    /// allocate, so unblocked activations pay nothing).
    pub pending: Vec<PendingCall>,
    /// Every executed call with its evaluated arguments and answered
    /// outcome, in execution order — recorded only when
    /// [`Env::record_calls`] is `true`, empty (and allocation-free)
    /// otherwise.
    pub calls: Vec<DeferredCall>,
    /// Recycled call-argument vectors ([`DeferredCall::args`] buffers
    /// given back by [`StepEffects::recycle`]); [`exec_stmt`] pops one
    /// per call statement instead of allocating.
    args_pool: Vec<Vec<Value>>,
    /// Reusable evaluation buffer for trace-statement values, cleared
    /// (not dropped) between trace statements.
    trace_vals: Vec<Value>,
}

impl PartialEq for StepEffects {
    fn eq(&self, other: &Self) -> bool {
        self.service_calls == other.service_calls
            && self.pending == other.pending
            && self.calls == other.calls
    }
}

impl StepEffects {
    /// Clears the activation-visible effects while *keeping* the heap
    /// buffers: recorded calls hand their argument vectors back to the
    /// internal pool, so the next activation through
    /// [`FsmExec::step_with`] reuses them instead of allocating. The
    /// scratch-arena reset of the two-phase scheduler's steady state.
    pub fn recycle(&mut self) {
        self.service_calls = 0;
        self.pending.clear();
        for mut dc in self.calls.drain(..) {
            dc.args.clear();
            self.args_pool.push(std::mem::take(&mut dc.args));
        }
    }

    /// Rough heap footprint of the effects and their pools, in bytes —
    /// feeds the scheduler's arena high-water statistics.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let vecs = self
            .args_pool
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<Value>())
            .sum::<usize>();
        self.pending.capacity() * std::mem::size_of::<PendingCall>()
            + self.calls.capacity() * std::mem::size_of::<DeferredCall>()
            + self.trace_vals.capacity() * std::mem::size_of::<Value>()
            + vecs
    }
}

/// The state-transition outcome of one activation through
/// [`FsmExec::step_with`] — the [`StepReport`] minus the call stream,
/// which stays in the caller's [`StepEffects`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepMeta {
    /// State at the start of the activation.
    pub from: StateId,
    /// State after the activation.
    pub to: StateId,
    /// Whether a transition fired (self-loop transitions count).
    pub transitioned: bool,
}

/// A placeholder at state 0 — lets reusable result shells derive
/// `Default`; always overwritten before being read.
impl Default for StepMeta {
    fn default() -> Self {
        StepMeta {
            from: StateId::new(0),
            to: StateId::new(0),
            transitioned: false,
        }
    }
}

/// Report of a single FSM activation.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// State at the start of the activation.
    pub from: StateId,
    /// State after the activation.
    pub to: StateId,
    /// Whether a transition fired (`from != to` is *not* equivalent:
    /// self-loop transitions count as fired).
    pub transitioned: bool,
    /// Number of service-call statements executed during the activation.
    pub service_calls: u32,
    /// Service calls left pending by this activation — what the FSM is
    /// blocked on, if anything.
    pub pending: Vec<PendingCall>,
    /// The activation's full call stream (see [`StepEffects::calls`]);
    /// empty unless the environment opted into recording.
    pub calls: Vec<DeferredCall>,
}

/// Execution state of one FSM instance: just the current state, as all
/// data lives in the environment.
///
/// # Examples
///
/// ```
/// use cosma_core::{FsmBuilder, FsmExec, Expr, Stmt, MapEnv, Value, Type};
/// use cosma_core::ids::VarId;
///
/// let mut b = FsmBuilder::new();
/// let s0 = b.state("S0");
/// let s1 = b.state("S1");
/// let x = VarId::new(0);
/// b.actions(s0, vec![Stmt::assign(x, Expr::var(x).add(Expr::int(1)))]);
/// b.transition(s0, Some(Expr::var(x).ge(Expr::int(3))), s1);
/// b.initial(s0);
/// let fsm = b.build()?;
///
/// let mut env = MapEnv::new();
/// env.add_var(Type::INT16, Value::Int(0));
/// let mut exec = FsmExec::new(&fsm);
/// for _ in 0..3 {
///     exec.step(&fsm, &mut env)?;
/// }
/// assert_eq!(exec.current(), s1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FsmExec {
    current: StateId,
    steps: u64,
}

/// A placeholder executor at state 0 — lets reusable result shells
/// derive `Default`; always overwritten (via [`FsmExec::new`] or
/// assignment) before driving an FSM.
impl Default for FsmExec {
    fn default() -> Self {
        FsmExec {
            current: StateId::new(0),
            steps: 0,
        }
    }
}

impl FsmExec {
    /// Creates an executor positioned at the FSM's initial state.
    #[must_use]
    pub fn new(fsm: &Fsm) -> Self {
        FsmExec {
            current: fsm.initial(),
            steps: 0,
        }
    }

    /// The current state.
    #[must_use]
    pub fn current(&self) -> StateId {
        self.current
    }

    /// Total activations performed.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Forces the executor into a given state (used by reset logic).
    pub fn jump_to(&mut self, state: StateId) {
        self.current = state;
    }

    /// Reconstructs an executor from captured state — the restore side
    /// of checkpointing. Unlike [`FsmExec::jump_to`] this also restores
    /// the activation count, so a restored executor is bit-identical
    /// (`PartialEq`) to the one that was captured: commit-time
    /// fingerprints that compare `(current, steps)` keep working across
    /// a snapshot/restore boundary.
    #[must_use]
    pub fn restored(current: StateId, steps: u64) -> Self {
        FsmExec { current, steps }
    }

    /// Performs one activation: execute the current state's actions, then
    /// take the first enabled transition (if any).
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from expression evaluation, statement
    /// execution, or an `X`/`Z` guard ([`EvalError::UnknownCondition`]).
    pub fn step(&mut self, fsm: &Fsm, env: &mut dyn Env) -> Result<StepReport, EvalError> {
        let mut effects = StepEffects::default();
        let meta = self.step_with(fsm, env, &mut effects)?;
        Ok(StepReport {
            from: meta.from,
            to: meta.to,
            transitioned: meta.transitioned,
            service_calls: effects.service_calls,
            pending: std::mem::take(&mut effects.pending),
            calls: std::mem::take(&mut effects.calls),
        })
    }

    /// Allocation-free variant of [`FsmExec::step`]: accumulates the call
    /// stream into a caller-owned [`StepEffects`] arena instead of
    /// building a fresh [`StepReport`]. A scheduler that recycles the
    /// arena between activations ([`StepEffects::recycle`]) pays no
    /// steady-state heap allocation for the effects bookkeeping.
    ///
    /// The effects are *appended to* — pass a recycled (or fresh) arena.
    ///
    /// # Errors
    ///
    /// Same as [`FsmExec::step`].
    pub fn step_with(
        &mut self,
        fsm: &Fsm,
        env: &mut dyn Env,
        effects: &mut StepEffects,
    ) -> Result<StepMeta, EvalError> {
        let from = self.current;
        let state = fsm.state(from);
        for stmt in &state.actions {
            exec_stmt(stmt, env, effects)?;
        }
        let mut to = from;
        let mut transitioned = false;
        for t in &state.transitions {
            let enabled = match &t.guard {
                None => true,
                Some(g) => g.eval(env)?.truthy().ok_or(EvalError::UnknownCondition)?,
            };
            if enabled {
                for stmt in &t.actions {
                    exec_stmt(stmt, env, effects)?;
                }
                to = t.target;
                transitioned = true;
                break;
            }
        }
        self.current = to;
        self.steps += 1;
        Ok(StepMeta {
            from,
            to,
            transitioned,
        })
    }

    /// Runs activations until `predicate` returns `true` or `max_steps`
    /// activations have been performed. Returns the number of activations
    /// executed, or `None` if the predicate never held.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from [`FsmExec::step`].
    pub fn run_until(
        &mut self,
        fsm: &Fsm,
        env: &mut dyn Env,
        max_steps: u64,
        mut predicate: impl FnMut(&Self, &dyn Env) -> bool,
    ) -> Result<Option<u64>, EvalError> {
        for i in 0..max_steps {
            if predicate(self, env) {
                return Ok(Some(i));
            }
            self.step(fsm, env)?;
        }
        Ok(if predicate(self, env) {
            Some(max_steps)
        } else {
            None
        })
    }
}

/// Executes a single statement against the environment, accumulating
/// call counts and pending-call records into `effects`.
///
/// # Errors
///
/// Propagates evaluation errors; condition values must be defined.
pub fn exec_stmt(
    stmt: &Stmt,
    env: &mut dyn Env,
    effects: &mut StepEffects,
) -> Result<(), EvalError> {
    match stmt {
        Stmt::Assign(v, e) => {
            let value = e.eval(env)?;
            env.write_var(*v, value)
        }
        Stmt::Drive(p, e) => {
            let value = e.eval(env)?;
            env.drive_port(*p, value)
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let c = cond
                .eval(env)?
                .truthy()
                .ok_or(EvalError::UnknownCondition)?;
            let body = if c { then_body } else { else_body };
            for s in body {
                exec_stmt(s, env, effects)?;
            }
            Ok(())
        }
        Stmt::Call(call) => {
            effects.service_calls += 1;
            // Argument vectors come from the effects' recycle pool, so a
            // scheduler that recycles its arena steps without a malloc
            // per call statement.
            let mut args = effects.args_pool.pop().unwrap_or_default();
            args.reserve(call.args.len());
            for a in &call.args {
                args.push(a.eval(env)?);
            }
            let outcome = env.call_service(call, &args)?;
            if let Some(done_var) = call.done {
                env.write_var(done_var, Value::Bool(outcome.done))?;
            }
            if outcome.done {
                if let (Some(result_var), Some(v)) = (call.result, outcome.result.clone()) {
                    env.write_var(result_var, v)?;
                }
            } else {
                effects.pending.push(PendingCall {
                    binding: call.binding,
                    service: call.service.clone(),
                });
            }
            if env.record_calls() {
                effects.calls.push(DeferredCall {
                    binding: call.binding,
                    service: call.service.clone(),
                    args,
                    outcome,
                });
            } else {
                args.clear();
                effects.args_pool.push(args);
            }
            Ok(())
        }
        Stmt::Trace(label, exprs) => {
            // The value buffer is reusable scratch: cleared, refilled,
            // and handed to the environment as a slice. Environments
            // that store trace records copy what they keep.
            effects.trace_vals.clear();
            for e in exprs {
                let v = e.eval(env)?;
                effects.trace_vals.push(v);
            }
            env.trace_interned(label, &effects.trace_vals);
            Ok(())
        }
    }
}

/// A simple self-contained environment backed by vectors — handy for unit
/// tests and for interpreting FSMs that do not touch communication units.
#[derive(Debug, Clone, Default)]
pub struct MapEnv {
    vars: Vec<(crate::value::Type, Value)>,
    ports: Vec<(crate::value::Type, Value)>,
    args: Vec<Value>,
    traces: Vec<(String, Vec<Value>)>,
}

impl MapEnv {
    /// Creates an empty environment.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a variable with an initial value; ids are assigned in
    /// registration order.
    pub fn add_var(&mut self, ty: crate::value::Type, init: Value) -> VarId {
        let id = VarId::new(self.vars.len() as u32);
        self.vars.push((ty, init));
        id
    }

    /// Registers a port with an initial value.
    pub fn add_port(&mut self, ty: crate::value::Type, init: Value) -> PortId {
        let id = PortId::new(self.ports.len() as u32);
        self.ports.push((ty, init));
        id
    }

    /// Sets the service-argument vector visible to `Expr::Arg`.
    pub fn set_args(&mut self, args: Vec<Value>) {
        self.args = args;
    }

    /// Current value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the id was not registered.
    #[must_use]
    pub fn var(&self, v: VarId) -> &Value {
        &self.vars[v.index()].1
    }

    /// Current value of a port.
    ///
    /// # Panics
    ///
    /// Panics if the id was not registered.
    #[must_use]
    pub fn port(&self, p: PortId) -> &Value {
        &self.ports[p.index()].1
    }

    /// Directly sets a port value (simulating an external driver).
    ///
    /// # Panics
    ///
    /// Panics if the id was not registered.
    pub fn set_port(&mut self, p: PortId, v: Value) {
        let ty = self.ports[p.index()].0.clone();
        self.ports[p.index()].1 = ty.clamp(v);
    }

    /// Directly sets a variable value.
    ///
    /// # Panics
    ///
    /// Panics if the id was not registered.
    pub fn set_var(&mut self, id: VarId, v: Value) {
        let ty = self.vars[id.index()].0.clone();
        self.vars[id.index()].1 = ty.clamp(v);
    }

    /// Trace records accumulated so far.
    #[must_use]
    pub fn traces(&self) -> &[(String, Vec<Value>)] {
        &self.traces
    }
}

impl ReadEnv for MapEnv {
    fn read_var(&self, v: VarId) -> Result<Value, EvalError> {
        self.vars
            .get(v.index())
            .map(|(_, v)| v.clone())
            .ok_or(EvalError::NoSuchVar(v))
    }
    fn read_port(&self, p: PortId) -> Result<Value, EvalError> {
        self.ports
            .get(p.index())
            .map(|(_, v)| v.clone())
            .ok_or(EvalError::NoSuchPort(p))
    }
    fn read_arg(&self, i: u32) -> Result<Value, EvalError> {
        self.args
            .get(i as usize)
            .cloned()
            .ok_or(EvalError::NoSuchArg(i))
    }
}

impl Env for MapEnv {
    fn write_var(&mut self, v: VarId, value: Value) -> Result<(), EvalError> {
        let slot = self
            .vars
            .get_mut(v.index())
            .ok_or(EvalError::NoSuchVar(v))?;
        slot.1 = slot.0.clamp(value);
        Ok(())
    }
    fn drive_port(&mut self, p: PortId, value: Value) -> Result<(), EvalError> {
        let slot = self
            .ports
            .get_mut(p.index())
            .ok_or(EvalError::NoSuchPort(p))?;
        slot.1 = slot.0.clamp(value);
        Ok(())
    }
    fn call_service(
        &mut self,
        call: &ServiceCall,
        _args: &[Value],
    ) -> Result<ServiceOutcome, EvalError> {
        Err(EvalError::Service(format!(
            "MapEnv has no bound units (call to {})",
            call.service
        )))
    }
    fn trace(&mut self, label: &str, values: &[Value]) {
        self.traces.push((label.to_string(), values.to_vec()));
    }
}

/// Convenience: evaluate an expression needing only constants (no vars,
/// ports or args), e.g. for synthesis-time constant folding.
///
/// # Errors
///
/// Returns an error if the expression references any environment state.
pub fn eval_const(e: &Expr) -> Result<Value, EvalError> {
    struct NoEnv;
    impl ReadEnv for NoEnv {
        fn read_var(&self, v: VarId) -> Result<Value, EvalError> {
            Err(EvalError::NoSuchVar(v))
        }
        fn read_port(&self, p: PortId) -> Result<Value, EvalError> {
            Err(EvalError::NoSuchPort(p))
        }
    }
    e.eval(&NoEnv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit::Bit;
    use crate::fsm::FsmBuilder;
    use crate::value::Type;

    /// Builds the PUT protocol FSM of the paper's Figure 3 and drives it
    /// through a full handshake against a manually-toggled B_FULL flag.
    #[test]
    fn figure3_put_protocol_shape() {
        let mut env = MapEnv::new();
        let b_full = env.add_port(Type::Bit, Value::Bit(Bit::Zero));
        let datain = env.add_port(Type::INT16, Value::Int(0));
        let done = env.add_var(Type::Bool, Value::Bool(false));
        env.set_args(vec![Value::Int(42)]);

        let mut b = FsmBuilder::new();
        let init = b.state("INIT");
        let wait_b_full = b.state("WAIT_B_FULL");
        let data_rdy = b.state("DATA_RDY");
        let idle = b.state("IDLE");
        // INIT: if B_FULL='1' -> WAIT_B_FULL else drive data, -> DATA_RDY
        b.transition(
            init,
            Some(Expr::port(b_full).eq(Expr::bit(Bit::One))),
            wait_b_full,
        );
        b.transition_with(
            init,
            None,
            vec![Stmt::drive(datain, Expr::arg(0))],
            data_rdy,
        );
        // WAIT_B_FULL: if B_FULL='0' -> INIT
        b.transition(
            wait_b_full,
            Some(Expr::port(b_full).eq(Expr::bit(Bit::Zero))),
            init,
        );
        // DATA_RDY -> IDLE (simplified tail of the protocol)
        b.transition(data_rdy, None, idle);
        b.actions(idle, vec![Stmt::assign(done, Expr::bool(true))]);
        b.transition(idle, None, init);
        b.initial(init);
        let fsm = b.build().unwrap();

        let mut exec = FsmExec::new(&fsm);
        // Buffer initially full: stall in WAIT_B_FULL.
        env.set_port(b_full, Value::Bit(Bit::One));
        exec.step(&fsm, &mut env).unwrap();
        assert_eq!(fsm.state(exec.current()).name(), "WAIT_B_FULL");
        exec.step(&fsm, &mut env).unwrap();
        assert_eq!(
            fsm.state(exec.current()).name(),
            "WAIT_B_FULL",
            "stays while full"
        );
        // Buffer drains.
        env.set_port(b_full, Value::Bit(Bit::Zero));
        exec.step(&fsm, &mut env).unwrap(); // -> INIT
        exec.step(&fsm, &mut env).unwrap(); // -> DATA_RDY, drives data
        assert_eq!(env.port(datain), &Value::Int(42));
        exec.step(&fsm, &mut env).unwrap(); // -> IDLE
        exec.step(&fsm, &mut env).unwrap(); // IDLE actions set done, -> INIT
        assert_eq!(env.var(done), &Value::Bool(true));
        assert_eq!(exec.steps(), 6);
    }

    #[test]
    fn one_transition_per_activation() {
        // A chain A -> B -> C with unconditional transitions must take
        // exactly one hop per step (the paper's synchronization rule).
        let mut b = FsmBuilder::new();
        let a = b.state("A");
        let s2 = b.state("B");
        let c = b.state("C");
        b.transition(a, None, s2);
        b.transition(s2, None, c);
        b.transition(c, None, c);
        b.initial(a);
        let fsm = b.build().unwrap();
        let mut env = MapEnv::new();
        let mut exec = FsmExec::new(&fsm);
        let r = exec.step(&fsm, &mut env).unwrap();
        assert_eq!((r.from, r.to), (a, s2));
        let r = exec.step(&fsm, &mut env).unwrap();
        assert_eq!((r.from, r.to), (s2, c));
    }

    #[test]
    fn no_enabled_transition_stays() {
        let mut b = FsmBuilder::new();
        let a = b.state("A");
        let s2 = b.state("B");
        b.transition(a, Some(Expr::bool(false)), s2);
        b.initial(a);
        let fsm = b.build().unwrap();
        let mut env = MapEnv::new();
        let mut exec = FsmExec::new(&fsm);
        let r = exec.step(&fsm, &mut env).unwrap();
        assert!(!r.transitioned);
        assert_eq!(exec.current(), a);
    }

    #[test]
    fn self_loop_counts_as_transition() {
        let mut b = FsmBuilder::new();
        let a = b.state("A");
        b.transition(a, None, a);
        b.initial(a);
        let fsm = b.build().unwrap();
        let mut env = MapEnv::new();
        let mut exec = FsmExec::new(&fsm);
        let r = exec.step(&fsm, &mut env).unwrap();
        assert!(r.transitioned);
        assert_eq!(r.from, r.to);
    }

    #[test]
    fn unknown_guard_is_error() {
        let mut env = MapEnv::new();
        let p = env.add_port(Type::Bit, Value::Bit(Bit::X));
        let mut b = FsmBuilder::new();
        let a = b.state("A");
        b.transition(a, Some(Expr::port(p)), a);
        b.initial(a);
        let fsm = b.build().unwrap();
        let mut exec = FsmExec::new(&fsm);
        assert_eq!(
            exec.step(&fsm, &mut env).unwrap_err(),
            EvalError::UnknownCondition
        );
    }

    #[test]
    fn transition_priority_in_order() {
        let mut env = MapEnv::new();
        let x = env.add_var(Type::INT16, Value::Int(5));
        let mut b = FsmBuilder::new();
        let a = b.state("A");
        let hi = b.state("HI");
        let lo = b.state("LO");
        b.transition(a, Some(Expr::var(x).gt(Expr::int(0))), hi);
        b.transition(a, Some(Expr::var(x).gt(Expr::int(3))), lo); // also true, but later
        b.initial(a);
        let fsm = b.build().unwrap();
        let mut exec = FsmExec::new(&fsm);
        exec.step(&fsm, &mut env).unwrap();
        assert_eq!(exec.current(), hi, "first enabled transition wins");
        let _ = lo;
    }

    #[test]
    fn run_until_detects_predicate() {
        let mut env = MapEnv::new();
        let x = env.add_var(Type::INT16, Value::Int(0));
        let mut b = FsmBuilder::new();
        let a = b.state("A");
        b.actions(a, vec![Stmt::assign(x, Expr::var(x).add(Expr::int(1)))]);
        b.transition(a, None, a);
        b.initial(a);
        let fsm = b.build().unwrap();
        let mut exec = FsmExec::new(&fsm);
        let n = exec
            .run_until(&fsm, &mut env, 100, |_, e| {
                e.read_var(x).unwrap() == Value::Int(10)
            })
            .unwrap();
        assert_eq!(n, Some(10));
    }

    #[test]
    fn run_until_gives_none_on_budget_exhaustion() {
        let mut env = MapEnv::new();
        let mut b = FsmBuilder::new();
        let a = b.state("A");
        b.transition(a, None, a);
        b.initial(a);
        let fsm = b.build().unwrap();
        let mut exec = FsmExec::new(&fsm);
        let n = exec.run_until(&fsm, &mut env, 5, |_, _| false).unwrap();
        assert_eq!(n, None);
    }

    #[test]
    fn trace_statement_records() {
        let mut env = MapEnv::new();
        let x = env.add_var(Type::INT16, Value::Int(9));
        let mut effects = StepEffects::default();
        exec_stmt(
            &Stmt::Trace("pos".into(), vec![Expr::var(x)]),
            &mut env,
            &mut effects,
        )
        .unwrap();
        assert_eq!(env.traces(), &[("pos".to_string(), vec![Value::Int(9)])]);
    }

    #[test]
    fn call_in_map_env_is_error() {
        let mut env = MapEnv::new();
        let mut effects = StepEffects::default();
        let stmt = Stmt::Call(crate::stmt::ServiceCall {
            binding: crate::ids::BindingId::new(0),
            service: "put".into(),
            args: vec![],
            done: None,
            result: None,
        });
        assert!(matches!(
            exec_stmt(&stmt, &mut env, &mut effects),
            Err(EvalError::Service(_))
        ));
        assert_eq!(effects.service_calls, 1);
    }

    #[test]
    fn pending_calls_are_reported() {
        // An environment whose service always answers "pending": the
        // step report must name the blocked binding+service so a
        // scheduler can park the FSM on the unit's completion wires.
        struct PendingEnv(MapEnv);
        impl ReadEnv for PendingEnv {
            fn read_var(&self, v: VarId) -> Result<Value, EvalError> {
                self.0.read_var(v)
            }
            fn read_port(&self, p: PortId) -> Result<Value, EvalError> {
                self.0.read_port(p)
            }
        }
        impl Env for PendingEnv {
            fn write_var(&mut self, v: VarId, value: Value) -> Result<(), EvalError> {
                self.0.write_var(v, value)
            }
            fn drive_port(&mut self, p: PortId, value: Value) -> Result<(), EvalError> {
                self.0.drive_port(p, value)
            }
            fn call_service(
                &mut self,
                _call: &ServiceCall,
                _args: &[Value],
            ) -> Result<ServiceOutcome, EvalError> {
                Ok(ServiceOutcome::pending())
            }
        }

        let mut env = PendingEnv(MapEnv::new());
        let done = env.0.add_var(Type::Bool, Value::Bool(false));
        let mut b = FsmBuilder::new();
        let get = b.state("GET");
        let end = b.state("END");
        b.actions(
            get,
            vec![Stmt::Call(crate::stmt::ServiceCall {
                binding: crate::ids::BindingId::new(3),
                service: "get".into(),
                args: vec![],
                done: Some(done),
                result: None,
            })],
        );
        b.transition(get, Some(Expr::var(done)), end);
        b.initial(get);
        let fsm = b.build().unwrap();
        let mut exec = FsmExec::new(&fsm);
        let r = exec.step(&fsm, &mut env).unwrap();
        assert!(!r.transitioned);
        assert_eq!(r.service_calls, 1);
        assert_eq!(
            r.pending,
            vec![PendingCall {
                binding: crate::ids::BindingId::new(3),
                service: "get".into(),
            }]
        );
        // A completing activation reports no pending calls.
        let mut b = FsmBuilder::new();
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        let fsm = b.build().unwrap();
        let mut exec = FsmExec::new(&fsm);
        let r = exec.step(&fsm, &mut env).unwrap();
        assert!(r.pending.is_empty());
    }

    #[test]
    fn calls_recorded_only_on_opt_in() {
        // An environment that answers every call "done with 7" and can
        // toggle recording: the call stream must be captured, with
        // evaluated args and the answered outcome, only when opted in.
        struct AnsweringEnv {
            inner: MapEnv,
            record: bool,
        }
        impl ReadEnv for AnsweringEnv {
            fn read_var(&self, v: VarId) -> Result<Value, EvalError> {
                self.inner.read_var(v)
            }
            fn read_port(&self, p: PortId) -> Result<Value, EvalError> {
                self.inner.read_port(p)
            }
        }
        impl Env for AnsweringEnv {
            fn write_var(&mut self, v: VarId, value: Value) -> Result<(), EvalError> {
                self.inner.write_var(v, value)
            }
            fn drive_port(&mut self, p: PortId, value: Value) -> Result<(), EvalError> {
                self.inner.drive_port(p, value)
            }
            fn call_service(
                &mut self,
                _call: &ServiceCall,
                _args: &[Value],
            ) -> Result<ServiceOutcome, EvalError> {
                Ok(ServiceOutcome::done_with(Value::Int(7)))
            }
            fn record_calls(&self) -> bool {
                self.record
            }
        }

        let stmt = Stmt::Call(crate::stmt::ServiceCall {
            binding: crate::ids::BindingId::new(1),
            service: "put".into(),
            args: vec![Expr::int(2).add(Expr::int(3))],
            done: None,
            result: None,
        });
        let mut env = AnsweringEnv {
            inner: MapEnv::new(),
            record: true,
        };
        let mut effects = StepEffects::default();
        exec_stmt(&stmt, &mut env, &mut effects).unwrap();
        assert_eq!(
            effects.calls,
            vec![DeferredCall {
                binding: crate::ids::BindingId::new(1),
                service: "put".into(),
                args: vec![Value::Int(5)],
                outcome: ServiceOutcome::done_with(Value::Int(7)),
            }]
        );
        // Without opt-in the stream stays empty (and allocation-free).
        env.record = false;
        let mut effects = StepEffects::default();
        exec_stmt(&stmt, &mut env, &mut effects).unwrap();
        assert_eq!(effects.service_calls, 1);
        assert!(effects.calls.is_empty());
    }

    #[test]
    fn eval_const_folds() {
        assert_eq!(
            eval_const(&Expr::int(2).add(Expr::int(3))).unwrap(),
            Value::Int(5)
        );
        assert!(eval_const(&Expr::var(VarId::new(0))).is_err());
    }

    #[test]
    fn typed_writes_clamp() {
        let mut env = MapEnv::new();
        let v = env.add_var(Type::int(4, true), Value::Int(0));
        env.write_var(v, Value::Int(9)).unwrap();
        assert_eq!(env.var(v), &Value::Int(-7));
    }
}
