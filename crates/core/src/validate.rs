//! Structural validation passes over modules, communication units and
//! systems.
//!
//! These checks run automatically inside the builders' `build()` methods;
//! they catch dangling ids, arity mismatches and direction violations
//! before anything reaches the simulator or the synthesizer.

use crate::comm::CommUnitSpec;
use crate::expr::Expr;
use crate::module::{Module, PortDir};
use crate::stmt::Stmt;
use crate::system::System;

/// Checks a module's FSM against its declarations.
///
/// # Errors
///
/// Returns a human-readable violation description: dangling variable /
/// port / binding references, `Expr::Arg` used outside a service, drives
/// of input ports, or call `done`/`result` targets out of range.
pub fn check_module(m: &Module) -> Result<(), String> {
    let nvars = m.vars().len();
    let nports = m.ports().len();
    let nbind = m.bindings().len();
    let mut err: Option<String> = None;
    let check_expr = |e: &Expr, err: &mut Option<String>| {
        e.for_each_var(&mut |v| {
            if v.index() >= nvars && err.is_none() {
                *err = Some(format!("expression reads undeclared variable {v}"));
            }
        });
        e.for_each_port(&mut |p| {
            if p.index() >= nports && err.is_none() {
                *err = Some(format!("expression reads undeclared port {p}"));
            }
        });
        if e.max_arg().is_some() && err.is_none() {
            *err = Some("module FSM uses Expr::Arg outside a service".to_string());
        }
    };

    let check_stmt = |s: &Stmt, err: &mut Option<String>| {
        s.for_each_expr(&mut |e| check_expr(e, err));
        s.for_each_written_var(&mut |v| {
            if v.index() >= nvars && err.is_none() {
                *err = Some(format!("statement writes undeclared variable {v}"));
            }
        });
        s.for_each_driven_port(&mut |p| {
            if err.is_none() {
                if p.index() >= nports {
                    *err = Some(format!("statement drives undeclared port {p}"));
                } else if m.port(p).dir() == PortDir::In {
                    *err = Some(format!("statement drives input port {}", m.port(p).name()));
                }
            }
        });
        s.for_each_call(&mut |c| {
            if err.is_none() && c.binding.index() >= nbind {
                *err = Some(format!(
                    "call to service {} via undeclared binding",
                    c.service
                ));
            }
        });
    };

    m.fsm().for_each_stmt(&mut |s| check_stmt(s, &mut err));
    m.fsm().for_each_guard(&mut |g| check_expr(g, &mut err));
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Checks a communication unit: every service and the controller must
/// reference only declared wires / locals / arguments, and services may
/// not themselves call services.
///
/// # Errors
///
/// Returns a human-readable violation description.
pub fn check_unit(u: &CommUnitSpec) -> Result<(), String> {
    let nwires = u.wires().len();
    for svc in u.services() {
        let nlocals = svc.locals().len();
        let nargs = svc.args().len() as u32;
        check_fsm_refs(
            svc.fsm(),
            &format!("service {}", svc.name()),
            nlocals,
            nwires,
            Some(nargs),
            false,
        )?;
    }
    if let Some(ctrl) = u.controller() {
        check_fsm_refs(
            &ctrl.fsm,
            "controller",
            ctrl.vars.len(),
            nwires,
            None,
            false,
        )?;
    }
    Ok(())
}

/// Shared reference-checking walk for service/controller FSMs.
fn check_fsm_refs(
    fsm: &crate::fsm::Fsm,
    what: &str,
    nvars: usize,
    nports: usize,
    nargs: Option<u32>,
    allow_calls: bool,
) -> Result<(), String> {
    let mut err: Option<String> = None;
    let check_expr = |e: &Expr, err: &mut Option<String>| {
        e.for_each_var(&mut |v| {
            if v.index() >= nvars && err.is_none() {
                *err = Some(format!("{what}: reads undeclared local {v}"));
            }
        });
        e.for_each_port(&mut |p| {
            if p.index() >= nports && err.is_none() {
                *err = Some(format!("{what}: reads undeclared wire {p}"));
            }
        });
        if let Some(maxa) = e.max_arg() {
            match nargs {
                Some(n) if maxa < n => {}
                Some(n) => {
                    if err.is_none() {
                        *err = Some(format!("{what}: argument #{maxa} out of range (arity {n})"));
                    }
                }
                None => {
                    if err.is_none() {
                        *err = Some(format!("{what}: controller cannot use arguments"));
                    }
                }
            }
        }
    };
    let visit = |s: &Stmt, err: &mut Option<String>| {
        s.for_each_expr(&mut |e| check_expr(e, err));
        s.for_each_written_var(&mut |v| {
            if v.index() >= nvars && err.is_none() {
                *err = Some(format!("{what}: writes undeclared local {v}"));
            }
        });
        s.for_each_driven_port(&mut |p| {
            if p.index() >= nports && err.is_none() {
                *err = Some(format!("{what}: drives undeclared wire {p}"));
            }
        });
        if !allow_calls {
            s.for_each_call(&mut |c| {
                if err.is_none() {
                    *err = Some(format!(
                        "{what}: nested service call to {} not allowed",
                        c.service
                    ));
                }
            });
        }
    };
    fsm.for_each_stmt(&mut |s| visit(s, &mut err));
    fsm.for_each_guard(&mut |g| check_expr(g, &mut err));
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Cross-checks a fully assembled system: every interface binding of every
/// module must be attached to a unit instance whose spec offers every
/// service the module calls, with matching arity and result expectations.
///
/// # Errors
///
/// Returns a human-readable violation description.
pub fn check_system(sys: &System) -> Result<(), String> {
    for (mi, module) in sys.modules().iter().enumerate() {
        for (bi, binding) in module.bindings().iter().enumerate() {
            let Some(unit) = sys.unit_for(mi, crate::ids::BindingId::new(bi as u32)) else {
                return Err(format!(
                    "module {} binding {} is not attached to any unit instance",
                    module.name(),
                    binding.name()
                ));
            };
            if unit.spec().name() != binding.unit_type() {
                return Err(format!(
                    "module {} binding {} expects unit type {}, got {}",
                    module.name(),
                    binding.name(),
                    binding.unit_type(),
                    unit.spec().name()
                ));
            }
        }
        let mut err: Option<String> = None;
        module.fsm().for_each_stmt(&mut |s| {
            s.for_each_call(&mut |c| {
                if err.is_some() {
                    return;
                }
                let Some(unit) = sys.unit_for(mi, c.binding) else {
                    err = Some(format!(
                        "module {}: call through unbound binding {}",
                        module.name(),
                        c.binding
                    ));
                    return;
                };
                let Some(svc) = unit.spec().service(&c.service) else {
                    err = Some(format!(
                        "module {}: unit {} has no service {}",
                        module.name(),
                        unit.spec().name(),
                        c.service
                    ));
                    return;
                };
                if svc.args().len() != c.args.len() {
                    err = Some(format!(
                        "module {}: service {} expects {} argument(s), called with {}",
                        module.name(),
                        c.service,
                        svc.args().len(),
                        c.args.len()
                    ));
                    return;
                }
                if c.result.is_some() && svc.returns().is_none() {
                    err = Some(format!(
                        "module {}: service {} returns nothing but caller expects a result",
                        module.name(),
                        c.service
                    ));
                }
            });
        });
        if let Some(e) = err {
            return Err(e);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    // `check_module` and `check_unit` are exercised through the builder
    // tests in `module.rs` and `comm.rs`; `check_system` through
    // `system.rs`. Here we pin down a few direct edge cases.
    use crate::comm::{CommUnitBuilder, ServiceSpecBuilder};
    use crate::module::{ModuleBuilder, ModuleKind, PortDir};
    use crate::value::{Type, Value};
    use crate::{Expr, Stmt};

    #[test]
    fn module_arg_use_rejected() {
        let mut b = ModuleBuilder::new("m", ModuleKind::Software);
        let v = b.var("X", Type::INT16, Value::Int(0));
        let s = b.state("S");
        b.actions(s, vec![Stmt::assign(v, Expr::arg(0))]);
        b.transition(s, None, s);
        b.initial(s);
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("Arg"), "{err}");
    }

    #[test]
    fn module_driving_input_rejected() {
        let mut b = ModuleBuilder::new("m", ModuleKind::Hardware);
        let p = b.port("IN_PIN", PortDir::In, Type::Bit);
        let s = b.state("S");
        b.actions(s, vec![Stmt::drive(p, Expr::bit(crate::Bit::One))]);
        b.transition(s, None, s);
        b.initial(s);
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("input port"), "{err}");
    }

    #[test]
    fn controller_arg_use_rejected() {
        let mut u = CommUnitBuilder::new("u");
        u.wire("W", Type::Bit, Value::Bit(crate::Bit::Zero));
        let mut fb = crate::FsmBuilder::new();
        let s = fb.state("S");
        fb.transition(s, Some(Expr::arg(0).eq(Expr::int(1))), s);
        fb.initial(s);
        u.controller(vec![], fb.build().unwrap());
        let err = u.build().unwrap_err();
        assert!(err.to_string().contains("controller"), "{err}");
    }

    #[test]
    fn guard_reference_checked() {
        let mut u = CommUnitBuilder::new("u");
        let mut svc = ServiceSpecBuilder::new("s");
        let st = svc.state("S");
        // Guard reads wire 5, never declared.
        svc.transition(st, Some(Expr::port(crate::ids::PortId::new(5))), st);
        svc.initial(st);
        u.service(svc.build().unwrap());
        let err = u.build().unwrap_err();
        assert!(err.to_string().contains("wire"), "{err}");
    }
}
