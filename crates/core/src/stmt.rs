//! Statements: the action language executed inside FSM states and
//! transitions.
//!
//! Statements are the only way the IR mutates state. Service calls — the
//! paper's central abstraction — are statements too: a call activates one
//! step of the bound communication unit's service FSM and stores the
//! "done" result, mirroring the paper's `if (SetupControl()) { NextState
//! = Step; }` idiom.

use crate::expr::Expr;
use crate::ids::{BindingId, PortId, VarId};
use std::sync::Arc;

/// A call to an access procedure (service) of a communication unit.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceCall {
    /// Which of the module's interface bindings the call goes through.
    pub binding: BindingId,
    /// Service (access procedure) name, e.g. `"put"`. Shared so that
    /// per-activation reporting ([`crate::PendingCall`]) is a refcount
    /// bump, not a heap allocation.
    pub service: Arc<str>,
    /// Actual arguments, evaluated in the caller's environment.
    pub args: Vec<Expr>,
    /// Variable receiving the completion flag (`true` once the service
    /// protocol has run to completion). `None` discards it.
    pub done: Option<VarId>,
    /// Variable receiving the service's return value, for services that
    /// produce one (e.g. `get`). Written only on completion.
    pub result: Option<VarId>,
}

/// An IR statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var := expr` — variable assignment (immediate, like VHDL variable
    /// assignment or a C assignment).
    Assign(VarId, Expr),
    /// `port <= expr` — drive a port or wire. Under the co-simulation
    /// kernel this is a signal assignment that takes effect at the next
    /// delta cycle; in the one-shot interpreter it is immediate.
    Drive(PortId, Expr),
    /// Conditional execution.
    If {
        /// Condition; must evaluate to a defined truth value.
        cond: Expr,
        /// Statements executed when the condition holds.
        then_body: Vec<Stmt>,
        /// Statements executed otherwise.
        else_body: Vec<Stmt>,
    },
    /// Invoke one activation of a communication-unit service.
    Call(ServiceCall),
    /// Diagnostic trace record (used by experiment harnesses; erased by
    /// synthesis). The label is interned at statement construction
    /// (`"label".into()`), so every runtime that records the trace —
    /// including the co-simulation backplane's speculative step phase —
    /// shares one refcounted string instead of re-allocating the label
    /// per activation.
    Trace(Arc<str>, Vec<Expr>),
}

impl Stmt {
    /// Builds an assignment statement.
    #[must_use]
    pub fn assign(var: VarId, value: Expr) -> Stmt {
        Stmt::Assign(var, value)
    }

    /// Builds a port-drive statement.
    #[must_use]
    pub fn drive(port: PortId, value: Expr) -> Stmt {
        Stmt::Drive(port, value)
    }

    /// Builds an `if` with no else branch.
    #[must_use]
    pub fn if_then(cond: Expr, then_body: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_body,
            else_body: vec![],
        }
    }

    /// Builds an `if`/`else`.
    #[must_use]
    pub fn if_else(cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_body,
            else_body,
        }
    }

    /// Visits every variable *written* by this statement (recursively).
    pub fn for_each_written_var(&self, f: &mut impl FnMut(VarId)) {
        match self {
            Stmt::Assign(v, _) => f(*v),
            Stmt::Drive(_, _) | Stmt::Trace(_, _) => {}
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                for s in then_body.iter().chain(else_body) {
                    s.for_each_written_var(f);
                }
            }
            Stmt::Call(c) => {
                if let Some(v) = c.done {
                    f(v);
                }
                if let Some(v) = c.result {
                    f(v);
                }
            }
        }
    }

    /// Visits every port *driven* by this statement (recursively).
    pub fn for_each_driven_port(&self, f: &mut impl FnMut(PortId)) {
        match self {
            Stmt::Drive(p, _) => f(*p),
            Stmt::Assign(_, _) | Stmt::Trace(_, _) | Stmt::Call(_) => {}
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                for s in then_body.iter().chain(else_body) {
                    s.for_each_driven_port(f);
                }
            }
        }
    }

    /// Visits every expression contained in this statement (recursively),
    /// including guards and call arguments.
    pub fn for_each_expr(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Stmt::Assign(_, e) | Stmt::Drive(_, e) => f(e),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                f(cond);
                for s in then_body.iter().chain(else_body) {
                    s.for_each_expr(f);
                }
            }
            Stmt::Call(c) => {
                for a in &c.args {
                    f(a);
                }
            }
            Stmt::Trace(_, args) => {
                for a in args {
                    f(a);
                }
            }
        }
    }

    /// Visits every service call (recursively).
    pub fn for_each_call(&self, f: &mut impl FnMut(&ServiceCall)) {
        match self {
            Stmt::Call(c) => f(c),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                for s in then_body.iter().chain(else_body) {
                    s.for_each_call(f);
                }
            }
            Stmt::Assign(_, _) | Stmt::Drive(_, _) | Stmt::Trace(_, _) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn sample() -> Vec<Stmt> {
        vec![
            Stmt::assign(VarId::new(0), Expr::int(1)),
            Stmt::drive(PortId::new(2), Expr::var(VarId::new(0))),
            Stmt::if_else(
                Expr::var(VarId::new(1)).gt(Expr::int(0)),
                vec![Stmt::assign(VarId::new(3), Expr::int(7))],
                vec![Stmt::Call(ServiceCall {
                    binding: BindingId::new(0),
                    service: "put".into(),
                    args: vec![Expr::var(VarId::new(4))],
                    done: Some(VarId::new(5)),
                    result: None,
                })],
            ),
        ]
    }

    #[test]
    fn written_vars_collected_recursively() {
        let mut written = vec![];
        for s in sample() {
            s.for_each_written_var(&mut |v| written.push(v.index()));
        }
        assert_eq!(written, vec![0, 3, 5]);
    }

    #[test]
    fn driven_ports_collected() {
        let mut driven = vec![];
        for s in sample() {
            s.for_each_driven_port(&mut |p| driven.push(p.index()));
        }
        assert_eq!(driven, vec![2]);
    }

    #[test]
    fn exprs_visited_including_guards_and_args() {
        let mut count = 0;
        for s in sample() {
            s.for_each_expr(&mut |_| count += 1);
        }
        // int(1), var(0), guard, int(7) assignment, call arg.
        assert_eq!(count, 5);
    }

    #[test]
    fn calls_visited() {
        let mut services = vec![];
        for s in sample() {
            s.for_each_call(&mut |c| services.push(c.service.clone()));
        }
        assert_eq!(services, vec![std::sync::Arc::<str>::from("put")]);
    }
}
