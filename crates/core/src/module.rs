//! Modules: the hardware and software behavioural units of a system.
//!
//! A module is a named FSM plus its ports, variables and *interface
//! bindings* (declared uses of communication units). Whether a module is
//! hardware or software is a property ([`ModuleKind`]), not a different
//! type — that is the unified model: the same structure elaborates from C
//! (Fig. 6) and from VHDL (Fig. 7) and feeds both co-simulation and
//! co-synthesis.

use crate::expr::Expr;
use crate::fsm::{Fsm, FsmBuildError, FsmBuilder};
use crate::ids::{BindingId, PortId, StateId, VarId};
use crate::stmt::Stmt;
use crate::value::{Type, Value};
use std::collections::HashMap;
use std::fmt;

/// Whether a module is destined for hardware synthesis or software
/// compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModuleKind {
    /// Implemented as hardware (VHDL source, high-level synthesis).
    Hardware,
    /// Implemented as software (C source, compiled for the target CPU).
    Software,
}

impl fmt::Display for ModuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleKind::Hardware => write!(f, "hardware"),
            ModuleKind::Software => write!(f, "software"),
        }
    }
}

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Input: read by the module.
    In,
    /// Output: driven by the module.
    Out,
    /// Bidirectional (bus pins).
    InOut,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortDir::In => write!(f, "in"),
            PortDir::Out => write!(f, "out"),
            PortDir::InOut => write!(f, "inout"),
        }
    }
}

/// A module port.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    name: String,
    dir: PortDir,
    ty: Type,
}

impl Port {
    /// Port name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Port direction.
    #[must_use]
    pub fn dir(&self) -> PortDir {
        self.dir
    }

    /// Port type.
    #[must_use]
    pub fn ty(&self) -> &Type {
        &self.ty
    }
}

/// A module-local variable (software data, or a hardware register after
/// synthesis).
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    name: String,
    ty: Type,
    init: Value,
}

impl Variable {
    /// Creates a variable description.
    #[must_use]
    pub fn new(name: impl Into<String>, ty: Type, init: Value) -> Self {
        Variable {
            name: name.into(),
            ty,
            init,
        }
    }

    /// Variable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Variable type.
    #[must_use]
    pub fn ty(&self) -> &Type {
        &self.ty
    }

    /// Initial value.
    #[must_use]
    pub fn init(&self) -> &Value {
        &self.init
    }
}

/// A declared use of a communication unit: "this module talks through an
/// interface called `name`, offered by a unit of type `unit_type`".
/// The actual unit instance is attached at system-assembly time.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceBinding {
    name: String,
    unit_type: String,
}

impl InterfaceBinding {
    /// Binding name (e.g. `"Distribution_Interface"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Required communication-unit type name.
    #[must_use]
    pub fn unit_type(&self) -> &str {
        &self.unit_type
    }
}

/// A behavioural module of the system.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    name: String,
    kind: ModuleKind,
    ports: Vec<Port>,
    vars: Vec<Variable>,
    bindings: Vec<InterfaceBinding>,
    fsm: Fsm,
}

impl Module {
    /// Module name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Hardware or software.
    #[must_use]
    pub fn kind(&self) -> ModuleKind {
        self.kind
    }

    /// All ports in id order.
    #[must_use]
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// All variables in id order.
    #[must_use]
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// All interface bindings in id order.
    #[must_use]
    pub fn bindings(&self) -> &[InterfaceBinding] {
        &self.bindings
    }

    /// The module's behaviour.
    #[must_use]
    pub fn fsm(&self) -> &Fsm {
        &self.fsm
    }

    /// Looks up a port id by name.
    #[must_use]
    pub fn port_id(&self, name: &str) -> Option<PortId> {
        self.ports
            .iter()
            .position(|p| p.name == name)
            .map(|i| PortId::new(i as u32))
    }

    /// Looks up a variable id by name.
    #[must_use]
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId::new(i as u32))
    }

    /// Looks up a binding id by name.
    #[must_use]
    pub fn binding_id(&self, name: &str) -> Option<BindingId> {
        self.bindings
            .iter()
            .position(|b| b.name == name)
            .map(|i| BindingId::new(i as u32))
    }

    /// A port by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this module.
    #[must_use]
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// A variable by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this module.
    #[must_use]
    pub fn var(&self, id: VarId) -> &Variable {
        &self.vars[id.index()]
    }

    /// A binding by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this module.
    #[must_use]
    pub fn binding(&self, id: BindingId) -> &InterfaceBinding {
        &self.bindings[id.index()]
    }
}

/// Builder for [`Module`].
///
/// # Examples
///
/// ```
/// use cosma_core::{ModuleBuilder, ModuleKind, PortDir, Type, Value, Expr, Stmt};
///
/// let mut b = ModuleBuilder::new("counter", ModuleKind::Hardware);
/// let clk = b.port("CLK", PortDir::In, Type::Bit);
/// let count = b.var("COUNT", Type::INT16, Value::Int(0));
/// let run = b.state("RUN");
/// b.actions(run, vec![Stmt::assign(count, Expr::var(count).add(Expr::int(1)))]);
/// b.transition(run, None, run);
/// b.initial(run);
/// let m = b.build()?;
/// assert_eq!(m.name(), "counter");
/// assert_eq!(m.port_id("CLK"), Some(clk));
/// # Ok::<(), cosma_core::ModuleBuildError>(())
/// ```
#[derive(Debug)]
pub struct ModuleBuilder {
    name: String,
    kind: ModuleKind,
    ports: Vec<Port>,
    port_names: HashMap<String, PortId>,
    vars: Vec<Variable>,
    var_names: HashMap<String, VarId>,
    bindings: Vec<InterfaceBinding>,
    binding_names: HashMap<String, BindingId>,
    fsm: FsmBuilder,
    duplicate: Option<String>,
}

impl ModuleBuilder {
    /// Starts a module.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: ModuleKind) -> Self {
        ModuleBuilder {
            name: name.into(),
            kind,
            ports: vec![],
            port_names: HashMap::new(),
            vars: vec![],
            var_names: HashMap::new(),
            bindings: vec![],
            binding_names: HashMap::new(),
            fsm: FsmBuilder::new(),
            duplicate: None,
        }
    }

    /// Declares a port. Duplicate names are reported at [`build`].
    ///
    /// [`build`]: ModuleBuilder::build
    pub fn port(&mut self, name: impl Into<String>, dir: PortDir, ty: Type) -> PortId {
        let name = name.into();
        let id = PortId::new(self.ports.len() as u32);
        if self.port_names.insert(name.clone(), id).is_some() {
            self.duplicate.get_or_insert(format!("port {name}"));
        }
        self.ports.push(Port { name, dir, ty });
        id
    }

    /// Declares a variable with an initial value.
    pub fn var(&mut self, name: impl Into<String>, ty: Type, init: Value) -> VarId {
        let name = name.into();
        let id = VarId::new(self.vars.len() as u32);
        if self.var_names.insert(name.clone(), id).is_some() {
            self.duplicate.get_or_insert(format!("variable {name}"));
        }
        self.vars.push(Variable { name, ty, init });
        id
    }

    /// Declares a variable initialized to its type's default.
    pub fn var_default(&mut self, name: impl Into<String>, ty: Type) -> VarId {
        let init = ty.default_value();
        self.var(name, ty, init)
    }

    /// Declares an interface binding to a communication-unit type.
    pub fn binding(&mut self, name: impl Into<String>, unit_type: impl Into<String>) -> BindingId {
        let name = name.into();
        let id = BindingId::new(self.bindings.len() as u32);
        if self.binding_names.insert(name.clone(), id).is_some() {
            self.duplicate.get_or_insert(format!("binding {name}"));
        }
        self.bindings.push(InterfaceBinding {
            name,
            unit_type: unit_type.into(),
        });
        id
    }

    /// Declares (or fetches) an FSM state.
    pub fn state(&mut self, name: impl Into<String>) -> StateId {
        self.fsm.state(name)
    }

    /// Appends entry actions to a state.
    pub fn actions(&mut self, state: StateId, stmts: Vec<Stmt>) -> &mut Self {
        self.fsm.actions(state, stmts);
        self
    }

    /// Adds a guarded transition.
    pub fn transition(&mut self, from: StateId, guard: Option<Expr>, target: StateId) -> &mut Self {
        self.fsm.transition(from, guard, target);
        self
    }

    /// Adds a transition with actions.
    pub fn transition_with(
        &mut self,
        from: StateId,
        guard: Option<Expr>,
        actions: Vec<Stmt>,
        target: StateId,
    ) -> &mut Self {
        self.fsm.transition_with(from, guard, actions, target);
        self
    }

    /// Sets the initial state.
    pub fn initial(&mut self, state: StateId) -> &mut Self {
        self.fsm.initial(state);
        self
    }

    /// Finalizes the module, checking structural consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ModuleBuildError`] for duplicate declarations, FSM
    /// construction errors, or references to undeclared ids inside the
    /// FSM's expressions and statements.
    pub fn build(self) -> Result<Module, ModuleBuildError> {
        if let Some(dup) = self.duplicate {
            return Err(ModuleBuildError::Duplicate {
                module: self.name,
                item: dup,
            });
        }
        let fsm = self.fsm.build().map_err(|e| ModuleBuildError::Fsm {
            module: self.name.clone(),
            source: e,
        })?;
        let module = Module {
            name: self.name,
            kind: self.kind,
            ports: self.ports,
            vars: self.vars,
            bindings: self.bindings,
            fsm,
        };
        crate::validate::check_module(&module).map_err(|detail| ModuleBuildError::Invalid {
            module: module.name.clone(),
            detail,
        })?;
        Ok(module)
    }
}

/// Errors from [`ModuleBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuleBuildError {
    /// A port, variable or binding name was declared twice.
    Duplicate {
        /// Module being built.
        module: String,
        /// Which declaration clashed.
        item: String,
    },
    /// The underlying FSM failed to build.
    Fsm {
        /// Module being built.
        module: String,
        /// Underlying FSM error.
        source: FsmBuildError,
    },
    /// The FSM references ids the module does not declare.
    Invalid {
        /// Module being built.
        module: String,
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl fmt::Display for ModuleBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleBuildError::Duplicate { module, item } => {
                write!(f, "module {module}: duplicate {item}")
            }
            ModuleBuildError::Fsm { module, source } => write!(f, "module {module}: {source}"),
            ModuleBuildError::Invalid { module, detail } => {
                write!(f, "module {module}: {detail}")
            }
        }
    }
}

impl std::error::Error for ModuleBuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModuleBuildError::Fsm { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit::Bit;

    fn simple_module() -> ModuleBuilder {
        let mut b = ModuleBuilder::new("m", ModuleKind::Software);
        let x = b.var("X", Type::INT16, Value::Int(0));
        let s = b.state("S");
        b.actions(s, vec![Stmt::assign(x, Expr::int(1))]);
        b.transition(s, None, s);
        b.initial(s);
        b
    }

    #[test]
    fn lookups_by_name() {
        let mut b = ModuleBuilder::new("m", ModuleKind::Hardware);
        let p = b.port("B_FULL", PortDir::In, Type::Bit);
        let v = b.var("NEXT", Type::Bool, Value::Bool(false));
        let bind = b.binding("Motor_Interface", "hwhw_link");
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        let m = b.build().unwrap();
        assert_eq!(m.port_id("B_FULL"), Some(p));
        assert_eq!(m.var_id("NEXT"), Some(v));
        assert_eq!(m.binding_id("Motor_Interface"), Some(bind));
        assert_eq!(m.port(p).dir(), PortDir::In);
        assert_eq!(m.binding(bind).unit_type(), "hwhw_link");
        assert_eq!(m.port_id("NOPE"), None);
        assert_eq!(m.kind(), ModuleKind::Hardware);
    }

    #[test]
    fn duplicate_port_rejected() {
        let mut b = ModuleBuilder::new("m", ModuleKind::Hardware);
        b.port("A", PortDir::In, Type::Bit);
        b.port("A", PortDir::Out, Type::Bit);
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        match b.build().unwrap_err() {
            ModuleBuildError::Duplicate { item, .. } => assert_eq!(item, "port A"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_var_rejected() {
        let mut b = simple_module();
        b.var("X", Type::Bool, Value::Bool(false));
        assert!(matches!(b.build(), Err(ModuleBuildError::Duplicate { .. })));
    }

    #[test]
    fn fsm_error_propagates() {
        let b = ModuleBuilder::new("m", ModuleKind::Software);
        match b.build().unwrap_err() {
            ModuleBuildError::Fsm { source, .. } => assert_eq!(source, FsmBuildError::Empty),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dangling_var_reference_rejected() {
        let mut b = ModuleBuilder::new("m", ModuleKind::Software);
        let s = b.state("S");
        // References v0 which is never declared.
        b.actions(s, vec![Stmt::assign(VarId::new(0), Expr::int(1))]);
        b.transition(s, None, s);
        b.initial(s);
        assert!(matches!(b.build(), Err(ModuleBuildError::Invalid { .. })));
    }

    #[test]
    fn dangling_port_reference_rejected() {
        let mut b = ModuleBuilder::new("m", ModuleKind::Hardware);
        let s = b.state("S");
        b.transition(
            s,
            Some(Expr::port(PortId::new(3)).eq(Expr::bit(Bit::One))),
            s,
        );
        b.initial(s);
        assert!(matches!(b.build(), Err(ModuleBuildError::Invalid { .. })));
    }

    #[test]
    fn dangling_binding_rejected() {
        let mut b = ModuleBuilder::new("m", ModuleKind::Software);
        let s = b.state("S");
        b.actions(
            s,
            vec![Stmt::Call(crate::stmt::ServiceCall {
                binding: BindingId::new(0),
                service: "put".into(),
                args: vec![],
                done: None,
                result: None,
            })],
        );
        b.transition(s, None, s);
        b.initial(s);
        assert!(matches!(b.build(), Err(ModuleBuildError::Invalid { .. })));
    }

    #[test]
    fn var_default_uses_type_default() {
        let mut b = ModuleBuilder::new("m", ModuleKind::Software);
        let v = b.var_default("F", Type::Bool);
        let s = b.state("S");
        b.transition(s, None, s);
        b.initial(s);
        let m = b.build().unwrap();
        assert_eq!(m.var(v).init(), &Value::Bool(false));
    }

    #[test]
    fn display_impls() {
        assert_eq!(ModuleKind::Hardware.to_string(), "hardware");
        assert_eq!(PortDir::InOut.to_string(), "inout");
    }
}
