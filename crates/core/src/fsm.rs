//! Finite state machines — the unifying executable model of the paper.
//!
//! Both C software modules (Fig. 6) and VHDL hardware processes (Fig. 7)
//! elaborate to the same [`Fsm`] structure, as do communication-unit
//! controllers and access procedures (Fig. 3). One *activation* of an FSM
//! executes the current state's actions and then at most one transition —
//! exactly the paper's "each time a software component is activated ...
//! only one transition is executed".

use crate::expr::Expr;
use crate::ids::{PortId, StateId};
use crate::stmt::Stmt;
use std::collections::HashMap;
use std::fmt;

/// A guarded transition between states.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Guard expression; `None` means unconditional. Guards are evaluated
    /// *after* the state's actions, so a guard may test a flag the actions
    /// just wrote (the service-call `DONE` idiom).
    pub guard: Option<Expr>,
    /// Statements executed when the transition is taken.
    pub actions: Vec<Stmt>,
    /// Destination state.
    pub target: StateId,
}

/// A state: named, with entry actions and an ordered transition list.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    name: String,
    /// Actions executed on every activation in which this state is
    /// current.
    pub actions: Vec<Stmt>,
    /// Transitions, tried in order; the first enabled one is taken.
    pub transitions: Vec<Transition>,
}

impl State {
    /// The state's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A finite state machine over some environment of variables and ports.
///
/// Build one with [`FsmBuilder`]:
///
/// ```
/// use cosma_core::{FsmBuilder, Expr, Stmt};
/// use cosma_core::ids::VarId;
///
/// let mut b = FsmBuilder::new();
/// let idle = b.state("IDLE");
/// let run = b.state("RUN");
/// b.actions(idle, vec![Stmt::assign(VarId::new(0), Expr::int(0))]);
/// b.transition(idle, Some(Expr::var(VarId::new(1)).gt(Expr::int(0))), run);
/// b.transition(run, None, idle);
/// b.initial(idle);
/// let fsm = b.build()?;
/// assert_eq!(fsm.state_count(), 2);
/// # Ok::<(), cosma_core::FsmBuildError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Fsm {
    states: Vec<State>,
    initial: StateId,
}

impl Fsm {
    /// The initial state.
    #[must_use]
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Number of states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Looks up a state by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this FSM. Ids obtained from the
    /// owning [`FsmBuilder`] are always valid.
    #[must_use]
    pub fn state(&self, id: StateId) -> &State {
        &self.states[id.index()]
    }

    /// All states in id order.
    #[must_use]
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// All state ids in order.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.states.len() as u32).map(StateId::new)
    }

    /// Finds a state id by name.
    #[must_use]
    pub fn find_state(&self, name: &str) -> Option<StateId> {
        self.states
            .iter()
            .position(|s| s.name == name)
            .map(|i| StateId::new(i as u32))
    }

    /// States reachable from the initial state by following transitions.
    #[must_use]
    pub fn reachable_states(&self) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut stack = vec![self.initial];
        seen[self.initial.index()] = true;
        let mut order = vec![];
        while let Some(s) = stack.pop() {
            order.push(s);
            for t in &self.states[s.index()].transitions {
                if !seen[t.target.index()] {
                    seen[t.target.index()] = true;
                    stack.push(t.target);
                }
            }
        }
        order.sort();
        order
    }

    /// Total number of transitions across all states.
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.states.iter().map(|s| s.transitions.len()).sum()
    }

    /// Visits every statement in the FSM (state actions and transition
    /// actions).
    pub fn for_each_stmt(&self, f: &mut impl FnMut(&Stmt)) {
        for s in &self.states {
            for a in &s.actions {
                f(a);
            }
            for t in &s.transitions {
                for a in &t.actions {
                    f(a);
                }
            }
        }
    }

    /// Visits every guard expression in the FSM.
    pub fn for_each_guard(&self, f: &mut impl FnMut(&Expr)) {
        for s in &self.states {
            for t in &s.transitions {
                if let Some(g) = &t.guard {
                    f(g);
                }
            }
        }
    }

    /// The FSM's port/wire *read set*: every port read by a guard or by
    /// an expression inside any statement (recursing into `If` bodies),
    /// sorted and deduplicated. Drive *targets* are excluded — a wire the
    /// FSM only writes cannot unblock it.
    ///
    /// For a communication-unit service protocol this is exactly the set
    /// of completion wires: an event on one of them is the only thing
    /// that can change a blocked session's behaviour, so a scheduler may
    /// park the caller until then.
    #[must_use]
    pub fn port_reads(&self) -> Vec<PortId> {
        fn walk_stmt(s: &Stmt, f: &mut impl FnMut(PortId)) {
            match s {
                Stmt::Assign(_, e) | Stmt::Drive(_, e) => e.for_each_port(f),
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    cond.for_each_port(f);
                    for s in then_body.iter().chain(else_body) {
                        walk_stmt(s, f);
                    }
                }
                Stmt::Call(call) => {
                    for a in &call.args {
                        a.for_each_port(f);
                    }
                }
                Stmt::Trace(_, exprs) => {
                    for e in exprs {
                        e.for_each_port(f);
                    }
                }
            }
        }
        let mut reads = vec![];
        let mut push = |p: PortId| reads.push(p);
        for s in &self.states {
            for a in &s.actions {
                walk_stmt(a, &mut push);
            }
            for t in &s.transitions {
                if let Some(g) = &t.guard {
                    g.for_each_port(&mut push);
                }
                for a in &t.actions {
                    walk_stmt(a, &mut push);
                }
            }
        }
        reads.sort_unstable();
        reads.dedup();
        reads
    }
}

/// Incremental builder for [`Fsm`].
#[derive(Debug, Default)]
pub struct FsmBuilder {
    states: Vec<State>,
    by_name: HashMap<String, StateId>,
    initial: Option<StateId>,
}

impl FsmBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a state, returning its id. Calling twice with the same
    /// name returns the existing id, so forward references are easy:
    /// declare all states first, then fill them in.
    pub fn state(&mut self, name: impl Into<String>) -> StateId {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        let id = StateId::new(self.states.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.states.push(State {
            name,
            actions: vec![],
            transitions: vec![],
        });
        id
    }

    /// Appends entry actions to a state.
    ///
    /// # Panics
    ///
    /// Panics if `state` was not created by this builder.
    pub fn actions(&mut self, state: StateId, mut stmts: Vec<Stmt>) -> &mut Self {
        self.states[state.index()].actions.append(&mut stmts);
        self
    }

    /// Adds a guarded transition (guard `None` = unconditional).
    ///
    /// # Panics
    ///
    /// Panics if `from` was not created by this builder.
    pub fn transition(&mut self, from: StateId, guard: Option<Expr>, target: StateId) -> &mut Self {
        self.transition_with(from, guard, vec![], target)
    }

    /// Adds a transition that also executes actions when taken.
    ///
    /// # Panics
    ///
    /// Panics if `from` was not created by this builder.
    pub fn transition_with(
        &mut self,
        from: StateId,
        guard: Option<Expr>,
        actions: Vec<Stmt>,
        target: StateId,
    ) -> &mut Self {
        self.states[from.index()].transitions.push(Transition {
            guard,
            actions,
            target,
        });
        self
    }

    /// Sets the initial state.
    pub fn initial(&mut self, state: StateId) -> &mut Self {
        self.initial = Some(state);
        self
    }

    /// Number of states declared so far.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Finalizes the FSM.
    ///
    /// # Errors
    ///
    /// Returns [`FsmBuildError`] if no states were declared, no initial
    /// state was set, or a state has an unconditional transition that is
    /// not its last (later transitions would be dead).
    pub fn build(self) -> Result<Fsm, FsmBuildError> {
        if self.states.is_empty() {
            return Err(FsmBuildError::Empty);
        }
        let initial = self.initial.ok_or(FsmBuildError::NoInitial)?;
        for s in &self.states {
            if let Some(pos) = s.transitions.iter().position(|t| t.guard.is_none()) {
                if pos + 1 != s.transitions.len() {
                    return Err(FsmBuildError::DeadTransitions {
                        state: s.name.clone(),
                    });
                }
            }
        }
        Ok(Fsm {
            states: self.states,
            initial,
        })
    }
}

/// Errors from [`FsmBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsmBuildError {
    /// No states were declared.
    Empty,
    /// No initial state was set.
    NoInitial,
    /// An unconditional transition shadows later transitions.
    DeadTransitions {
        /// State whose transition list is unreachable past the
        /// unconditional entry.
        state: String,
    },
}

impl fmt::Display for FsmBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmBuildError::Empty => write!(f, "fsm has no states"),
            FsmBuildError::NoInitial => write!(f, "fsm has no initial state"),
            FsmBuildError::DeadTransitions { state } => {
                write!(
                    f,
                    "state {state} has transitions after an unconditional one"
                )
            }
        }
    }
}

impl std::error::Error for FsmBuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VarId;

    #[test]
    fn builder_round_trip() {
        let mut b = FsmBuilder::new();
        let a = b.state("A");
        let c = b.state("C");
        assert_eq!(b.state("A"), a, "re-declaring returns the same id");
        b.transition(a, Some(Expr::var(VarId::new(0)).gt(Expr::int(0))), c);
        b.transition(a, None, a);
        b.transition(c, None, a);
        b.initial(a);
        let fsm = b.build().unwrap();
        assert_eq!(fsm.state_count(), 2);
        assert_eq!(fsm.transition_count(), 3);
        assert_eq!(fsm.initial(), a);
        assert_eq!(fsm.find_state("C"), Some(c));
        assert_eq!(fsm.find_state("Z"), None);
        assert_eq!(fsm.state(a).name(), "A");
    }

    #[test]
    fn empty_fsm_rejected() {
        assert_eq!(FsmBuilder::new().build().unwrap_err(), FsmBuildError::Empty);
    }

    #[test]
    fn missing_initial_rejected() {
        let mut b = FsmBuilder::new();
        b.state("A");
        assert_eq!(b.build().unwrap_err(), FsmBuildError::NoInitial);
    }

    #[test]
    fn dead_transitions_rejected() {
        let mut b = FsmBuilder::new();
        let a = b.state("A");
        let c = b.state("B");
        b.transition(a, None, c);
        b.transition(a, Some(Expr::bool(true)), c);
        b.initial(a);
        match b.build().unwrap_err() {
            FsmBuildError::DeadTransitions { state } => assert_eq!(state, "A"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unconditional_last_is_fine() {
        let mut b = FsmBuilder::new();
        let a = b.state("A");
        let c = b.state("B");
        b.transition(a, Some(Expr::bool(false)), c);
        b.transition(a, None, c);
        b.initial(a);
        assert!(b.build().is_ok());
    }

    #[test]
    fn reachability() {
        let mut b = FsmBuilder::new();
        let a = b.state("A");
        let c = b.state("B");
        let orphan = b.state("ORPHAN");
        b.transition(a, None, c);
        b.transition(orphan, None, a);
        b.initial(a);
        let fsm = b.build().unwrap();
        let reach = fsm.reachable_states();
        assert!(reach.contains(&a));
        assert!(reach.contains(&c));
        assert!(!reach.contains(&orphan));
    }

    #[test]
    fn error_display() {
        assert!(FsmBuildError::Empty.to_string().contains("no states"));
        assert!(FsmBuildError::NoInitial.to_string().contains("initial"));
    }
}
