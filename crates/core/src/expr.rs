//! Expressions of the unified IR and their evaluation.
//!
//! Expressions are shared by module FSMs, communication-unit controllers
//! and service protocol FSMs. They are deliberately side-effect free; all
//! state changes go through [`crate::stmt::Stmt`].

use crate::bit::Bit;
use crate::ids::{PortId, VarId};
use crate::value::{Value, ValueError};
use std::fmt;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation of integers.
    Neg,
    /// Bitwise/logical not: bits via 4-valued `not`, bools via `!`,
    /// integers via bitwise complement.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (trapping on division by zero).
    Div,
    /// Integer remainder (trapping on division by zero).
    Rem,
    /// Bitwise/logical and (bits, bools, integers).
    And,
    /// Bitwise/logical or.
    Or,
    /// Bitwise/logical xor.
    Xor,
    /// Left shift.
    Shl,
    /// Arithmetic right shift.
    Shr,
    /// Equality (any two values of the same kind).
    Eq,
    /// Inequality.
    Ne,
    /// Less-than (integers).
    Lt,
    /// Less-or-equal (integers).
    Le,
    /// Greater-than (integers).
    Gt,
    /// Greater-or-equal (integers).
    Ge,
    /// Minimum of two integers (used by datapath synthesis).
    Min,
    /// Maximum of two integers.
    Max,
}

impl BinOp {
    /// Whether the operator produces a boolean result.
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// An IR expression tree.
///
/// # Examples
///
/// Build `(count + 1) < limit` over two variables:
///
/// ```
/// use cosma_core::{Expr, BinOp};
/// use cosma_core::ids::VarId;
///
/// let count = VarId::new(0);
/// let limit = VarId::new(1);
/// let e = Expr::var(count).add(Expr::int(1)).lt(Expr::var(limit));
/// assert!(matches!(e, Expr::Binary(BinOp::Lt, _, _)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// A module/unit variable read.
    Var(VarId),
    /// A port or internal-wire read.
    Port(PortId),
    /// A service formal argument (position in the call's argument list).
    Arg(u32),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // `add`/`sub`/... are the expression-builder DSL
impl Expr {
    /// Integer literal.
    #[must_use]
    pub fn int(i: i64) -> Expr {
        Expr::Const(Value::Int(i))
    }

    /// Bit literal.
    #[must_use]
    pub fn bit(b: Bit) -> Expr {
        Expr::Const(Value::Bit(b))
    }

    /// Boolean literal.
    #[must_use]
    pub fn bool(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }

    /// Variable read.
    #[must_use]
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// Port read.
    #[must_use]
    pub fn port(p: PortId) -> Expr {
        Expr::Port(p)
    }

    /// Service argument read.
    #[must_use]
    pub fn arg(i: u32) -> Expr {
        Expr::Arg(i)
    }

    fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(self), Box::new(rhs))
    }

    /// `self + rhs`.
    #[must_use]
    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }

    /// `self - rhs`.
    #[must_use]
    pub fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }

    /// `self * rhs`.
    #[must_use]
    pub fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }

    /// `self / rhs`.
    #[must_use]
    pub fn div(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Div, rhs)
    }

    /// `self == rhs`.
    #[must_use]
    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }

    /// `self != rhs`.
    #[must_use]
    pub fn ne(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ne, rhs)
    }

    /// `self < rhs`.
    #[must_use]
    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }

    /// `self <= rhs`.
    #[must_use]
    pub fn le(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Le, rhs)
    }

    /// `self > rhs`.
    #[must_use]
    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }

    /// `self >= rhs`.
    #[must_use]
    pub fn ge(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ge, rhs)
    }

    /// Logical/bitwise `self & rhs`.
    #[must_use]
    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }

    /// Logical/bitwise `self | rhs`.
    #[must_use]
    pub fn or(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }

    /// Negation (`!self` / `-self` depending on operand kind).
    #[must_use]
    pub fn not(self) -> Expr {
        Expr::Unary(UnOp::Not, Box::new(self))
    }

    /// Arithmetic negation.
    #[must_use]
    pub fn neg(self) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(self))
    }

    /// Evaluates the expression against an environment.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] on type mismatches, division by zero, or
    /// out-of-range variable/port/argument references.
    pub fn eval(&self, env: &dyn ReadEnv) -> Result<Value, EvalError> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Var(v) => env.read_var(*v),
            Expr::Port(p) => env.read_port(*p),
            Expr::Arg(i) => env.read_arg(*i),
            Expr::Unary(op, e) => eval_unary(*op, e.eval(env)?),
            Expr::Binary(op, a, b) => eval_binary(*op, a.eval(env)?, b.eval(env)?),
        }
    }

    /// Visits every variable read in the expression.
    pub fn for_each_var(&self, f: &mut impl FnMut(VarId)) {
        match self {
            Expr::Var(v) => f(*v),
            Expr::Unary(_, e) => e.for_each_var(f),
            Expr::Binary(_, a, b) => {
                a.for_each_var(f);
                b.for_each_var(f);
            }
            Expr::Const(_) | Expr::Port(_) | Expr::Arg(_) => {}
        }
    }

    /// Visits every port read in the expression.
    pub fn for_each_port(&self, f: &mut impl FnMut(PortId)) {
        match self {
            Expr::Port(p) => f(*p),
            Expr::Unary(_, e) => e.for_each_port(f),
            Expr::Binary(_, a, b) => {
                a.for_each_port(f);
                b.for_each_port(f);
            }
            Expr::Const(_) | Expr::Var(_) | Expr::Arg(_) => {}
        }
    }

    /// Maximum argument index referenced, if any (for arity checks).
    #[must_use]
    pub fn max_arg(&self) -> Option<u32> {
        match self {
            Expr::Arg(i) => Some(*i),
            Expr::Unary(_, e) => e.max_arg(),
            Expr::Binary(_, a, b) => a.max_arg().into_iter().chain(b.max_arg()).max(),
            Expr::Const(_) | Expr::Var(_) | Expr::Port(_) => None,
        }
    }
}

/// Integer expression arithmetic is 16-bit two's-complement — the unified
/// model's native integer width — so the interpreter, the synthesized
/// netlists and the MC16 programs agree operation-for-operation.
fn wrap16(i: i64) -> i64 {
    i as i16 as i64
}

fn eval_unary(op: UnOp, v: Value) -> Result<Value, EvalError> {
    match (op, v) {
        (UnOp::Neg, Value::Int(i)) => Ok(Value::Int(wrap16(i.wrapping_neg()))),
        (UnOp::Not, Value::Bit(b)) => Ok(Value::Bit(!b)),
        (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
        (UnOp::Not, Value::Int(i)) => Ok(Value::Int(!i)),
        (op, v) => Err(EvalError::BadOperand {
            op: format!("{op:?}"),
            operand: format!("{v}"),
        }),
    }
}

fn eval_binary(op: BinOp, a: Value, b: Value) -> Result<Value, EvalError> {
    use BinOp::*;
    // Equality works across all same-kind values.
    if matches!(op, Eq | Ne) {
        let same = match (&a, &b) {
            (Value::Bit(x), Value::Bit(y)) => x == y,
            (Value::Bool(x), Value::Bool(y)) => x == y,
            (Value::Int(x), Value::Int(y)) => x == y,
            (Value::Enum(x), Value::Enum(y)) => x == y,
            _ => {
                return Err(EvalError::BadOperand {
                    op: format!("{op:?}"),
                    operand: format!("{a} vs {b}"),
                })
            }
        };
        return Ok(Value::Bool(if op == Eq { same } else { !same }));
    }
    match (&a, &b) {
        (Value::Int(x), Value::Int(y)) => {
            let (x, y) = (*x, *y);
            let v = match op {
                Add => Value::Int(wrap16(x.wrapping_add(y))),
                Sub => Value::Int(wrap16(x.wrapping_sub(y))),
                Mul => Value::Int(wrap16(x.wrapping_mul(y))),
                Div => {
                    if y == 0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    Value::Int(wrap16(x.wrapping_div(y)))
                }
                Rem => {
                    if y == 0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    Value::Int(wrap16(x.wrapping_rem(y)))
                }
                And => Value::Int(x & y),
                Or => Value::Int(x | y),
                Xor => Value::Int(x ^ y),
                Shl => Value::Int(wrap16(x.wrapping_shl(y as u32 & 63))),
                Shr => Value::Int(x.wrapping_shr(y as u32 & 63)),
                Lt => Value::Bool(x < y),
                Le => Value::Bool(x <= y),
                Gt => Value::Bool(x > y),
                Ge => Value::Bool(x >= y),
                Min => Value::Int(x.min(y)),
                Max => Value::Int(x.max(y)),
                Eq | Ne => unreachable!("handled above"),
            };
            Ok(v)
        }
        (Value::Bit(x), Value::Bit(y)) => {
            let v = match op {
                And => Value::Bit(*x & *y),
                Or => Value::Bit(*x | *y),
                Xor => Value::Bit(*x ^ *y),
                _ => {
                    return Err(EvalError::BadOperand {
                        op: format!("{op:?}"),
                        operand: format!("{a} vs {b}"),
                    })
                }
            };
            Ok(v)
        }
        (Value::Bool(x), Value::Bool(y)) => {
            let v = match op {
                And => Value::Bool(*x && *y),
                Or => Value::Bool(*x || *y),
                Xor => Value::Bool(*x ^ *y),
                _ => {
                    return Err(EvalError::BadOperand {
                        op: format!("{op:?}"),
                        operand: format!("{a} vs {b}"),
                    })
                }
            };
            Ok(v)
        }
        _ => Err(EvalError::BadOperand {
            op: format!("{op:?}"),
            operand: format!("{a} vs {b}"),
        }),
    }
}

/// Read access to the evaluation environment: variables, ports and service
/// arguments. Implemented by the interpreter contexts in `cosma-cosim`, by
/// the synthesis-time constant folder, and by test fixtures.
pub trait ReadEnv {
    /// Reads a variable.
    ///
    /// # Errors
    ///
    /// Returns an error if the id is unknown in this environment.
    fn read_var(&self, v: VarId) -> Result<Value, EvalError>;

    /// Reads a port or wire.
    ///
    /// # Errors
    ///
    /// Returns an error if the id is unknown in this environment.
    fn read_port(&self, p: PortId) -> Result<Value, EvalError>;

    /// Reads a service call argument.
    ///
    /// # Errors
    ///
    /// Returns an error when evaluated outside a service activation or the
    /// index is out of range.
    fn read_arg(&self, index: u32) -> Result<Value, EvalError> {
        Err(EvalError::NoSuchArg(index))
    }
}

/// Errors raised while evaluating expressions or executing statements.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Reference to a variable the environment does not know.
    NoSuchVar(VarId),
    /// Reference to a port the environment does not know.
    NoSuchPort(PortId),
    /// Reference to a missing service argument.
    NoSuchArg(u32),
    /// Operator applied to an operand of the wrong kind.
    BadOperand {
        /// Operator name.
        op: String,
        /// Operand display.
        operand: String,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// A guard evaluated to an unknown (`X`/`Z`) condition.
    UnknownCondition,
    /// Value-level error (enum variants, conversions).
    Value(ValueError),
    /// A service call failed (unbound unit, unknown service, arity).
    Service(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NoSuchVar(v) => write!(f, "no such variable {v:?}"),
            EvalError::NoSuchPort(p) => write!(f, "no such port {p:?}"),
            EvalError::NoSuchArg(i) => write!(f, "no such service argument #{i}"),
            EvalError::BadOperand { op, operand } => {
                write!(f, "operator {op} not applicable to {operand}")
            }
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::UnknownCondition => write!(f, "condition evaluated to X/Z"),
            EvalError::Value(e) => write!(f, "{e}"),
            EvalError::Service(msg) => write!(f, "service call failed: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ValueError> for EvalError {
    fn from(e: ValueError) -> Self {
        EvalError::Value(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedEnv {
        vars: Vec<Value>,
        ports: Vec<Value>,
        args: Vec<Value>,
    }

    impl ReadEnv for FixedEnv {
        fn read_var(&self, v: VarId) -> Result<Value, EvalError> {
            self.vars
                .get(v.index())
                .cloned()
                .ok_or(EvalError::NoSuchVar(v))
        }
        fn read_port(&self, p: PortId) -> Result<Value, EvalError> {
            self.ports
                .get(p.index())
                .cloned()
                .ok_or(EvalError::NoSuchPort(p))
        }
        fn read_arg(&self, i: u32) -> Result<Value, EvalError> {
            self.args
                .get(i as usize)
                .cloned()
                .ok_or(EvalError::NoSuchArg(i))
        }
    }

    fn env() -> FixedEnv {
        FixedEnv {
            vars: vec![Value::Int(10), Value::Int(3)],
            ports: vec![Value::Bit(Bit::One)],
            args: vec![Value::Int(300)],
        }
    }

    #[test]
    fn arithmetic() {
        let e = Expr::var(VarId::new(0))
            .add(Expr::var(VarId::new(1)))
            .mul(Expr::int(2));
        assert_eq!(e.eval(&env()).unwrap(), Value::Int(26));
        let d = Expr::var(VarId::new(0)).div(Expr::int(3));
        assert_eq!(d.eval(&env()).unwrap(), Value::Int(3));
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = Expr::int(1).div(Expr::int(0));
        assert_eq!(e.eval(&env()).unwrap_err(), EvalError::DivisionByZero);
        let e = Expr::Binary(BinOp::Rem, Box::new(Expr::int(1)), Box::new(Expr::int(0)));
        assert_eq!(e.eval(&env()).unwrap_err(), EvalError::DivisionByZero);
    }

    #[test]
    fn comparisons() {
        let e = Expr::var(VarId::new(0)).gt(Expr::var(VarId::new(1)));
        assert_eq!(e.eval(&env()).unwrap(), Value::Bool(true));
        let e = Expr::int(5).le(Expr::int(5));
        assert_eq!(e.eval(&env()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn bit_equality_against_literal() {
        // The Fig. 3 idiom: B_FULL = '1'.
        let e = Expr::port(PortId::new(0)).eq(Expr::bit(Bit::One));
        assert_eq!(e.eval(&env()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn mixed_kind_comparison_is_error() {
        let e = Expr::int(1).eq(Expr::bit(Bit::One));
        assert!(e.eval(&env()).is_err());
    }

    #[test]
    fn args_read_through() {
        let e = Expr::arg(0).add(Expr::int(1));
        assert_eq!(e.eval(&env()).unwrap(), Value::Int(301));
        let e = Expr::arg(7);
        assert_eq!(e.eval(&env()).unwrap_err(), EvalError::NoSuchArg(7));
    }

    #[test]
    fn unary_ops() {
        assert_eq!(Expr::int(5).neg().eval(&env()).unwrap(), Value::Int(-5));
        assert_eq!(
            Expr::bool(true).not().eval(&env()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::bit(Bit::Zero).not().eval(&env()).unwrap(),
            Value::Bit(Bit::One)
        );
        assert_eq!(Expr::int(0).not().eval(&env()).unwrap(), Value::Int(-1));
    }

    #[test]
    fn logic_on_bools_and_bits() {
        let t = Expr::bool(true);
        let f = Expr::bool(false);
        assert_eq!(
            t.clone().and(f.clone()).eval(&env()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(t.or(f).eval(&env()).unwrap(), Value::Bool(true));
        let one = Expr::bit(Bit::One);
        let x = Expr::bit(Bit::X);
        assert_eq!(one.and(x).eval(&env()).unwrap(), Value::Bit(Bit::X));
    }

    #[test]
    fn shifts_and_bitwise_ints() {
        assert_eq!(
            Expr::Binary(BinOp::Shl, Box::new(Expr::int(1)), Box::new(Expr::int(4)))
                .eval(&env())
                .unwrap(),
            Value::Int(16)
        );
        assert_eq!(
            Expr::Binary(
                BinOp::Xor,
                Box::new(Expr::int(0b1100)),
                Box::new(Expr::int(0b1010))
            )
            .eval(&env())
            .unwrap(),
            Value::Int(0b0110)
        );
    }

    #[test]
    fn min_max() {
        assert_eq!(
            Expr::Binary(BinOp::Min, Box::new(Expr::int(3)), Box::new(Expr::int(9)))
                .eval(&env())
                .unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            Expr::Binary(BinOp::Max, Box::new(Expr::int(3)), Box::new(Expr::int(9)))
                .eval(&env())
                .unwrap(),
            Value::Int(9)
        );
    }

    #[test]
    fn visitors_collect_reads() {
        let e = Expr::var(VarId::new(0))
            .add(Expr::var(VarId::new(1)))
            .lt(Expr::port(PortId::new(0)).eq(Expr::bit(Bit::One)).not());
        let mut vars = vec![];
        e.for_each_var(&mut |v| vars.push(v.index()));
        assert_eq!(vars, vec![0, 1]);
        let mut ports = vec![];
        e.for_each_port(&mut |p| ports.push(p.index()));
        assert_eq!(ports, vec![0]);
    }

    #[test]
    fn max_arg_detection() {
        assert_eq!(Expr::int(1).max_arg(), None);
        assert_eq!(Expr::arg(2).add(Expr::arg(5)).max_arg(), Some(5));
    }
}
