//! System assembly: modules + communication-unit instances + bindings.
//!
//! A [`System`] is the complete unified description that both the
//! co-simulation engine (`cosma-cosim`) and the co-synthesis flow
//! (`cosma-synth`, `cosma-board`) consume unchanged — the property the
//! paper calls *coherence*.

use crate::comm::CommUnitSpec;
use crate::ids::BindingId;
use crate::module::Module;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A named instance of a communication-unit type within a system.
#[derive(Debug, Clone)]
pub struct UnitInstance {
    name: String,
    spec: Arc<CommUnitSpec>,
}

impl UnitInstance {
    /// Instance name (e.g. `"swhw_link"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unit type.
    #[must_use]
    pub fn spec(&self) -> &Arc<CommUnitSpec> {
        &self.spec
    }
}

/// Opaque handle to a module added to a [`SystemBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleRef(pub(crate) usize);

impl ModuleRef {
    /// Index into [`System::modules`].
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Opaque handle to a unit instance added to a [`SystemBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnitRef(pub(crate) usize);

impl UnitRef {
    /// Index into [`System::units`].
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A complete system description.
#[derive(Debug, Clone)]
pub struct System {
    name: String,
    modules: Vec<Module>,
    units: Vec<UnitInstance>,
    binds: HashMap<(usize, BindingId), usize>,
}

impl System {
    /// System name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All modules.
    #[must_use]
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// All unit instances.
    #[must_use]
    pub fn units(&self) -> &[UnitInstance] {
        &self.units
    }

    /// A module by reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference came from a different builder.
    #[must_use]
    pub fn module(&self, r: ModuleRef) -> &Module {
        &self.modules[r.0]
    }

    /// Finds a module by name.
    #[must_use]
    pub fn find_module(&self, name: &str) -> Option<ModuleRef> {
        self.modules
            .iter()
            .position(|m| m.name() == name)
            .map(ModuleRef)
    }

    /// Finds a unit instance by name.
    #[must_use]
    pub fn find_unit(&self, name: &str) -> Option<UnitRef> {
        self.units
            .iter()
            .position(|u| u.name() == name)
            .map(UnitRef)
    }

    /// The unit instance a module's binding is attached to.
    #[must_use]
    pub fn unit_for(&self, module_index: usize, binding: BindingId) -> Option<&UnitInstance> {
        self.binds
            .get(&(module_index, binding))
            .map(|&ui| &self.units[ui])
    }

    /// The unit-instance *index* a module's binding is attached to.
    #[must_use]
    pub fn unit_index_for(&self, module_index: usize, binding: BindingId) -> Option<usize> {
        self.binds.get(&(module_index, binding)).copied()
    }

    /// Iterates over `(module index, binding id, unit index)` attachments.
    pub fn bindings(&self) -> impl Iterator<Item = (usize, BindingId, usize)> + '_ {
        self.binds.iter().map(|(&(m, b), &u)| (m, b, u))
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "system {}", self.name)?;
        for m in &self.modules {
            writeln!(f, "  module {} ({})", m.name(), m.kind())?;
        }
        for u in &self.units {
            writeln!(f, "  unit {} : {}", u.name(), u.spec().name())?;
        }
        Ok(())
    }
}

/// Builder for [`System`].
///
/// # Examples
///
/// ```
/// use cosma_core::{SystemBuilder, ModuleBuilder, ModuleKind};
/// use cosma_core::comm::{CommUnitBuilder, ServiceSpecBuilder, SERVICE_DONE_VAR};
/// use cosma_core::{Expr, Stmt, Type, Value};
///
/// // A unit offering a trivial `ping` service.
/// let mut ub = CommUnitBuilder::new("link");
/// let mut svc = ServiceSpecBuilder::new("ping");
/// let st = svc.state("S");
/// svc.actions(st, vec![Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true))]);
/// svc.transition(st, None, st);
/// svc.initial(st);
/// ub.service(svc.build()?);
/// let unit = ub.build()?;
///
/// // A module calling it.
/// let mut mb = ModuleBuilder::new("caller", ModuleKind::Software);
/// let done = mb.var("D", Type::Bool, Value::Bool(false));
/// let b = mb.binding("iface", "link");
/// let s = mb.state("S");
/// mb.actions(s, vec![Stmt::Call(cosma_core::ServiceCall {
///     binding: b, service: "ping".into(), args: vec![],
///     done: Some(done), result: None,
/// })]);
/// mb.transition(s, None, s);
/// mb.initial(s);
///
/// let mut sys = SystemBuilder::new("demo");
/// let m = sys.module(mb.build()?);
/// let u = sys.unit("the_link", unit);
/// sys.bind(m, "iface", u)?;
/// let system = sys.build()?;
/// assert_eq!(system.modules().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct SystemBuilder {
    name: String,
    modules: Vec<Module>,
    units: Vec<UnitInstance>,
    binds: HashMap<(usize, BindingId), usize>,
    errors: Vec<String>,
}

impl SystemBuilder {
    /// Starts a system.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        SystemBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a module.
    pub fn module(&mut self, m: Module) -> ModuleRef {
        self.modules.push(m);
        ModuleRef(self.modules.len() - 1)
    }

    /// Adds a unit instance.
    pub fn unit(&mut self, name: impl Into<String>, spec: Arc<CommUnitSpec>) -> UnitRef {
        self.units.push(UnitInstance {
            name: name.into(),
            spec,
        });
        UnitRef(self.units.len() - 1)
    }

    /// Attaches a module's named interface binding to a unit instance.
    ///
    /// # Errors
    ///
    /// Returns [`SystemBuildError::UnknownBinding`] if the module declares
    /// no binding with that name, or [`SystemBuildError::AlreadyBound`]
    /// when the binding was attached before.
    pub fn bind(
        &mut self,
        module: ModuleRef,
        binding_name: &str,
        unit: UnitRef,
    ) -> Result<(), SystemBuildError> {
        let m = &self.modules[module.0];
        let Some(bid) = m.binding_id(binding_name) else {
            return Err(SystemBuildError::UnknownBinding {
                module: m.name().to_string(),
                binding: binding_name.to_string(),
            });
        };
        if self.binds.insert((module.0, bid), unit.0).is_some() {
            return Err(SystemBuildError::AlreadyBound {
                module: m.name().to_string(),
                binding: binding_name.to_string(),
            });
        }
        Ok(())
    }

    /// Finalizes and validates the system (see
    /// [`crate::validate::check_system`]).
    ///
    /// # Errors
    ///
    /// Returns [`SystemBuildError::Invalid`] when cross-checks fail (an
    /// unbound binding, a call to a missing service, an arity mismatch...).
    pub fn build(self) -> Result<System, SystemBuildError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(SystemBuildError::Invalid { detail: e });
        }
        let sys = System {
            name: self.name,
            modules: self.modules,
            units: self.units,
            binds: self.binds,
        };
        crate::validate::check_system(&sys)
            .map_err(|detail| SystemBuildError::Invalid { detail })?;
        Ok(sys)
    }
}

/// Errors from [`SystemBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemBuildError {
    /// `bind` named a binding the module does not declare.
    UnknownBinding {
        /// Module name.
        module: String,
        /// Binding name.
        binding: String,
    },
    /// `bind` called twice for the same binding.
    AlreadyBound {
        /// Module name.
        module: String,
        /// Binding name.
        binding: String,
    },
    /// Validation failure.
    Invalid {
        /// Violation description.
        detail: String,
    },
}

impl fmt::Display for SystemBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemBuildError::UnknownBinding { module, binding } => {
                write!(f, "module {module} declares no binding named {binding}")
            }
            SystemBuildError::AlreadyBound { module, binding } => {
                write!(f, "module {module} binding {binding} bound twice")
            }
            SystemBuildError::Invalid { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for SystemBuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{CommUnitBuilder, ServiceSpecBuilder, SERVICE_DONE_VAR};
    use crate::module::{ModuleBuilder, ModuleKind};
    use crate::stmt::ServiceCall;
    use crate::value::{Type, Value};
    use crate::{Expr, Stmt};

    fn ping_unit() -> Arc<CommUnitSpec> {
        let mut ub = CommUnitBuilder::new("link");
        let mut svc = ServiceSpecBuilder::new("ping");
        let st = svc.state("S");
        svc.actions(st, vec![Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true))]);
        svc.transition(st, None, st);
        svc.initial(st);
        ub.service(svc.build().unwrap());
        ub.build().unwrap()
    }

    fn caller_module(service: &str, nargs: usize) -> Module {
        let mut mb = ModuleBuilder::new("caller", ModuleKind::Software);
        let done = mb.var("D", Type::Bool, Value::Bool(false));
        let b = mb.binding("iface", "link");
        let s = mb.state("S");
        mb.actions(
            s,
            vec![Stmt::Call(ServiceCall {
                binding: b,
                service: service.into(),
                args: (0..nargs).map(|i| Expr::int(i as i64)).collect(),
                done: Some(done),
                result: None,
            })],
        );
        mb.transition(s, None, s);
        mb.initial(s);
        mb.build().unwrap()
    }

    #[test]
    fn assembly_happy_path() {
        let mut sys = SystemBuilder::new("demo");
        let m = sys.module(caller_module("ping", 0));
        let u = sys.unit("the_link", ping_unit());
        sys.bind(m, "iface", u).unwrap();
        let system = sys.build().unwrap();
        assert_eq!(system.name(), "demo");
        assert!(system.find_module("caller").is_some());
        assert!(system.find_unit("the_link").is_some());
        assert!(system.unit_for(0, BindingId::new(0)).is_some());
        assert_eq!(system.bindings().count(), 1);
        let shown = system.to_string();
        assert!(shown.contains("module caller (software)"));
        assert!(shown.contains("unit the_link : link"));
    }

    #[test]
    fn unbound_binding_rejected() {
        let mut sys = SystemBuilder::new("demo");
        sys.module(caller_module("ping", 0));
        sys.unit("the_link", ping_unit());
        // no bind()
        let err = sys.build().unwrap_err();
        assert!(err.to_string().contains("not attached"), "{err}");
    }

    #[test]
    fn unknown_service_rejected() {
        let mut sys = SystemBuilder::new("demo");
        let m = sys.module(caller_module("bogus", 0));
        let u = sys.unit("the_link", ping_unit());
        sys.bind(m, "iface", u).unwrap();
        let err = sys.build().unwrap_err();
        assert!(err.to_string().contains("no service bogus"), "{err}");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut sys = SystemBuilder::new("demo");
        let m = sys.module(caller_module("ping", 2));
        let u = sys.unit("the_link", ping_unit());
        sys.bind(m, "iface", u).unwrap();
        let err = sys.build().unwrap_err();
        assert!(err.to_string().contains("argument"), "{err}");
    }

    #[test]
    fn wrong_unit_type_rejected() {
        let mut ub = CommUnitBuilder::new("other_type");
        let mut svc = ServiceSpecBuilder::new("ping");
        let st = svc.state("S");
        svc.transition(st, None, st);
        svc.initial(st);
        ub.service(svc.build().unwrap());
        let other = ub.build().unwrap();

        let mut sys = SystemBuilder::new("demo");
        let m = sys.module(caller_module("ping", 0));
        let u = sys.unit("the_link", other);
        sys.bind(m, "iface", u).unwrap();
        let err = sys.build().unwrap_err();
        assert!(err.to_string().contains("expects unit type link"), "{err}");
    }

    #[test]
    fn unknown_binding_name() {
        let mut sys = SystemBuilder::new("demo");
        let m = sys.module(caller_module("ping", 0));
        let u = sys.unit("the_link", ping_unit());
        let err = sys.bind(m, "nope", u).unwrap_err();
        assert!(matches!(err, SystemBuildError::UnknownBinding { .. }));
    }

    #[test]
    fn double_bind_rejected() {
        let mut sys = SystemBuilder::new("demo");
        let m = sys.module(caller_module("ping", 0));
        let u = sys.unit("the_link", ping_unit());
        sys.bind(m, "iface", u).unwrap();
        let err = sys.bind(m, "iface", u).unwrap_err();
        assert!(matches!(err, SystemBuildError::AlreadyBound { .. }));
    }

    #[test]
    fn result_expectation_mismatch_rejected() {
        // `ping` returns nothing, but caller stores a result.
        let mut mb = ModuleBuilder::new("caller", ModuleKind::Software);
        let done = mb.var("D", Type::Bool, Value::Bool(false));
        let res = mb.var("R", Type::INT16, Value::Int(0));
        let b = mb.binding("iface", "link");
        let s = mb.state("S");
        mb.actions(
            s,
            vec![Stmt::Call(ServiceCall {
                binding: b,
                service: "ping".into(),
                args: vec![],
                done: Some(done),
                result: Some(res),
            })],
        );
        mb.transition(s, None, s);
        mb.initial(s);
        let m = mb.build().unwrap();

        let mut sys = SystemBuilder::new("demo");
        let mr = sys.module(m);
        let u = sys.unit("the_link", ping_unit());
        sys.bind(mr, "iface", u).unwrap();
        let err = sys.build().unwrap_err();
        assert!(err.to_string().contains("returns nothing"), "{err}");
    }
}
