//! # cosma-core — the unified model
//!
//! Core intermediate representation of **COSMA**, a Rust reproduction of
//! *"A Unified Model for Co-simulation and Co-synthesis of Mixed
//! Hardware/Software Systems"* (Valderrama et al., DATE 1995).
//!
//! The paper's key idea: describe a heterogeneous system as communicating
//! hardware and software modules whose interaction is abstracted behind
//! **communication units** — library components exposing *access
//! procedures* in multiple *views* (hardware VHDL, software simulation C,
//! software synthesis C per target). Because co-simulation and
//! co-synthesis consume the same description and differ only in the view
//! linked in, their results stay coherent and the same system maps onto
//! many platforms.
//!
//! This crate provides:
//!
//! * the value/type layer ([`Bit`], [`Value`], [`Type`]),
//! * expressions and statements ([`Expr`], [`Stmt`]),
//! * FSMs with the paper's one-transition-per-activation semantics
//!   ([`Fsm`], [`FsmExec`]),
//! * modules and systems ([`Module`], [`System`]),
//! * communication units ([`comm`]) and the multi-view render pipeline
//!   ([`view`], [`render`]).
//!
//! ## Quick example
//!
//! Build a two-state software module and step it:
//!
//! ```
//! use cosma_core::{ModuleBuilder, ModuleKind, Type, Value, Expr, Stmt,
//!                  FsmExec, MapEnv};
//!
//! let mut b = ModuleBuilder::new("blinker", ModuleKind::Software);
//! let n = b.var("N", Type::INT16, Value::Int(0));
//! let s_on = b.state("ON");
//! let s_off = b.state("OFF");
//! b.actions(s_on, vec![Stmt::assign(n, Expr::var(n).add(Expr::int(1)))]);
//! b.transition(s_on, None, s_off);
//! b.transition(s_off, None, s_on);
//! b.initial(s_on);
//! let module = b.build()?;
//!
//! let mut env = MapEnv::new();
//! env.add_var(Type::INT16, Value::Int(0));
//! let mut exec = FsmExec::new(module.fsm());
//! for _ in 0..4 {
//!     exec.step(module.fsm(), &mut env)?;
//! }
//! assert_eq!(env.var(n), &Value::Int(2)); // ON entered twice
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bit;
pub mod comm;
mod exec;
mod expr;
mod fsm;
pub mod ids;
mod module;
pub mod pretty;
pub mod render;
mod stmt;
mod system;
pub mod validate;
mod value;
pub mod view;

pub use bit::{Bit, ParseBitError};
pub use exec::{
    eval_const, exec_stmt, DeferredCall, Env, FsmExec, MapEnv, PendingCall, ServiceOutcome,
    StepEffects, StepMeta, StepReport,
};
pub use expr::{BinOp, EvalError, Expr, ReadEnv, UnOp};
pub use fsm::{Fsm, FsmBuildError, FsmBuilder, State, Transition};
pub use module::{
    InterfaceBinding, Module, ModuleBuildError, ModuleBuilder, ModuleKind, Port, PortDir, Variable,
};
pub use stmt::{ServiceCall, Stmt};
pub use system::{ModuleRef, System, SystemBuildError, SystemBuilder, UnitInstance, UnitRef};
pub use value::{EnumType, EnumValue, Type, Value, ValueError};
pub use view::{render_module, render_service_views, ServiceViews, SwTarget, View};
