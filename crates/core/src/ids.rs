//! Index-based identifiers used throughout the IR.
//!
//! Each id is a newtype over a `u32` index into the owning entity's table
//! (a module's variable table, port table, etc.). Newtypes keep the id
//! spaces statically distinct: a [`VarId`] cannot be used where a
//! [`PortId`] is expected.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            #[must_use]
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// The raw index, as `usize` for table lookups.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// The raw index.
            #[must_use]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifies a variable within its owning module, controller or
    /// service.
    VarId,
    "v"
);
define_id!(
    /// Identifies a port of a module, or an internal wire of a
    /// communication unit.
    PortId,
    "p"
);
define_id!(
    /// Identifies an FSM state within its owning FSM.
    StateId,
    "s"
);
define_id!(
    /// Identifies an interface binding (a module's declared use of a
    /// communication unit).
    BindingId,
    "b"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        let v = VarId::new(7);
        assert_eq!(v.index(), 7);
        assert_eq!(v.raw(), 7);
        assert_eq!(usize::from(v), 7);
    }

    #[test]
    fn debug_and_display_tags() {
        assert_eq!(format!("{:?}", VarId::new(3)), "v3");
        assert_eq!(format!("{}", PortId::new(0)), "p0");
        assert_eq!(format!("{}", StateId::new(12)), "s12");
        assert_eq!(format!("{:?}", BindingId::new(1)), "b1");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(StateId::new(1) < StateId::new(2));
    }
}
