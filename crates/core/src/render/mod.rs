//! Code generators turning IR into the paper's concrete view languages.
//!
//! * [`c`] — the two C flavours: the SW *simulation* view (Fig. 3b) and
//!   the SW *synthesis* views per target (Fig. 3a).
//! * [`vhdl`] — the hardware view (Fig. 3c) and full module emission.
//!
//! The generated text is a faithful artifact of the flow (it is what the
//! paper would hand to `cc` or to a VHDL synthesis tool); behavioural
//! equivalence between views is guaranteed upstream, because every view is
//! rendered from the same protocol FSM.

pub mod c;
pub mod vhdl;

use crate::value::Type;

/// Name/type tables needed to print expressions: resolves the IR's
/// index-based ids back to source-level names.
pub(crate) struct RenderCtx<'a> {
    /// Variable names by `VarId` index.
    pub vars: Vec<&'a str>,
    /// Port/wire names and types by `PortId` index.
    pub ports: Vec<(&'a str, &'a Type)>,
    /// Formal argument names by index.
    pub args: Vec<&'a str>,
}

impl<'a> RenderCtx<'a> {
    pub(crate) fn for_service(
        unit: &'a crate::comm::CommUnitSpec,
        svc: &'a crate::comm::ServiceSpec,
    ) -> Self {
        RenderCtx {
            vars: svc.locals().iter().map(|v| v.name()).collect(),
            ports: unit.wires().iter().map(|w| (w.name(), w.ty())).collect(),
            args: svc.args().iter().map(|(n, _)| n.as_str()).collect(),
        }
    }

    pub(crate) fn for_module(m: &'a crate::module::Module) -> Self {
        RenderCtx {
            vars: m.vars().iter().map(|v| v.name()).collect(),
            ports: m.ports().iter().map(|p| (p.name(), p.ty())).collect(),
            args: vec![],
        }
    }

    pub(crate) fn var_name(&self, v: crate::ids::VarId) -> &'a str {
        self.vars.get(v.index()).copied().unwrap_or("?VAR?")
    }

    pub(crate) fn port_name(&self, p: crate::ids::PortId) -> &'a str {
        self.ports
            .get(p.index())
            .map(|(n, _)| *n)
            .unwrap_or("?PORT?")
    }

    pub(crate) fn port_ty(&self, p: crate::ids::PortId) -> Option<&'a Type> {
        self.ports.get(p.index()).map(|(_, t)| *t)
    }

    pub(crate) fn arg_name(&self, i: u32) -> &'a str {
        self.args.get(i as usize).copied().unwrap_or("?ARG?")
    }
}

/// Simple indentation helper shared by both emitters.
pub(crate) struct Indent(pub usize);

impl std::fmt::Display for Indent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for _ in 0..self.0 {
            write!(f, "  ")?;
        }
        Ok(())
    }
}
