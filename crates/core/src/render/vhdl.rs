//! VHDL emission: the hardware view of access procedures (Fig. 3c) and
//! full module emission (entity + architecture) for the synthesis flow.

use super::{Indent, RenderCtx};
use crate::comm::{CommUnitSpec, ServiceSpec};
use crate::expr::{BinOp, Expr, UnOp};
use crate::fsm::Fsm;
use crate::module::{Module, PortDir};
use crate::stmt::Stmt;
use crate::value::{Type, Value};
use std::fmt::Write as _;

fn vhdl_type(ty: &Type) -> String {
    match ty {
        Type::Bit => "std_logic".to_string(),
        Type::Bool => "boolean".to_string(),
        Type::Int { .. } => "integer".to_string(),
        Type::Enum(e) => e.name().to_string(),
    }
}

fn value_vhdl(v: &Value) -> String {
    match v {
        Value::Bit(b) => format!("'{}'", b.to_char()),
        Value::Bool(b) => if *b { "true" } else { "false" }.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Enum(e) => e.variant().to_string(),
    }
}

fn binop_vhdl(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "mod",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "sll",
        BinOp::Shr => "srl",
        BinOp::Eq => "=",
        BinOp::Ne => "/=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Min | BinOp::Max => unreachable!("min/max rendered as calls"),
    }
}

fn expr_vhdl(e: &Expr, ctx: &RenderCtx<'_>) -> String {
    match e {
        Expr::Const(v) => value_vhdl(v),
        Expr::Var(v) => ctx.var_name(*v).to_string(),
        Expr::Port(p) => ctx.port_name(*p).to_string(),
        Expr::Arg(i) => ctx.arg_name(*i).to_string(),
        Expr::Unary(UnOp::Neg, e) => format!("-({})", expr_vhdl(e, ctx)),
        Expr::Unary(UnOp::Not, e) => format!("not ({})", expr_vhdl(e, ctx)),
        Expr::Binary(BinOp::Min, a, b) => {
            format!("minimum({}, {})", expr_vhdl(a, ctx), expr_vhdl(b, ctx))
        }
        Expr::Binary(BinOp::Max, a, b) => {
            format!("maximum({}, {})", expr_vhdl(a, ctx), expr_vhdl(b, ctx))
        }
        Expr::Binary(op, a, b) => {
            format!(
                "({} {} {})",
                expr_vhdl(a, ctx),
                binop_vhdl(*op),
                expr_vhdl(b, ctx)
            )
        }
    }
}

fn stmt_vhdl(s: &Stmt, ctx: &RenderCtx<'_>, out: &mut String, ind: usize) {
    match s {
        Stmt::Assign(v, e) => {
            let _ = writeln!(
                out,
                "{}{} := {};",
                Indent(ind),
                ctx.var_name(*v),
                expr_vhdl(e, ctx)
            );
        }
        Stmt::Drive(p, e) => {
            let _ = writeln!(
                out,
                "{}{} <= {};",
                Indent(ind),
                ctx.port_name(*p),
                expr_vhdl(e, ctx)
            );
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "{}if {} then", Indent(ind), expr_vhdl(cond, ctx));
            for t in then_body {
                stmt_vhdl(t, ctx, out, ind + 1);
            }
            if !else_body.is_empty() {
                let _ = writeln!(out, "{}else", Indent(ind));
                for t in else_body {
                    stmt_vhdl(t, ctx, out, ind + 1);
                }
            }
            let _ = writeln!(out, "{}end if;", Indent(ind));
        }
        Stmt::Call(c) => {
            // In VHDL, access procedures are called directly; DONE is an
            // out parameter by convention.
            let mut args: Vec<String> = c.args.iter().map(|a| expr_vhdl(a, ctx)).collect();
            if let Some(d) = c.done {
                args.push(ctx.var_name(d).to_string());
            }
            if let Some(r) = c.result {
                args.push(ctx.var_name(r).to_string());
            }
            let _ = writeln!(
                out,
                "{}{}({});",
                Indent(ind),
                c.service.to_uppercase(),
                args.join(", ")
            );
        }
        Stmt::Trace(label, _) => {
            let _ = writeln!(out, "{}-- trace: {label}", Indent(ind));
        }
    }
}

/// Emits the FSM as a VHDL `case` over `NEXT_STATE`.
fn fsm_case_vhdl(fsm: &Fsm, ctx: &RenderCtx<'_>, out: &mut String, ind: usize) {
    let _ = writeln!(out, "{}case NEXT_STATE is", Indent(ind));
    for sid in fsm.state_ids() {
        let st = fsm.state(sid);
        let _ = writeln!(out, "{}when {} =>", Indent(ind + 1), st.name());
        for a in &st.actions {
            stmt_vhdl(a, ctx, out, ind + 2);
        }
        for t in &st.transitions {
            match &t.guard {
                Some(g) => {
                    let _ = writeln!(out, "{}if {} then", Indent(ind + 2), expr_vhdl(g, ctx));
                    for a in &t.actions {
                        stmt_vhdl(a, ctx, out, ind + 3);
                    }
                    let _ = writeln!(
                        out,
                        "{}NEXT_STATE := {};",
                        Indent(ind + 3),
                        fsm.state(t.target).name()
                    );
                    let _ = writeln!(out, "{}end if;", Indent(ind + 2));
                }
                None => {
                    for a in &t.actions {
                        stmt_vhdl(a, ctx, out, ind + 2);
                    }
                    let _ = writeln!(
                        out,
                        "{}NEXT_STATE := {};",
                        Indent(ind + 2),
                        fsm.state(t.target).name()
                    );
                }
            }
        }
    }
    let _ = writeln!(
        out,
        "{}when others => NEXT_STATE := {};",
        Indent(ind + 1),
        fsm.state(fsm.initial()).name()
    );
    let _ = writeln!(out, "{}end case;", Indent(ind));
}

/// Renders an access procedure as a VHDL procedure — the HW view used for
/// both co-simulation and hardware synthesis (Figure 3c).
#[must_use]
pub fn render_service(unit: &CommUnitSpec, svc: &ServiceSpec) -> String {
    let ctx = RenderCtx::for_service(unit, svc);
    let fsm = svc.fsm();
    let upper = svc.name().to_uppercase();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- HW view of access procedure {} (unit {})",
        upper,
        unit.name()
    );
    let state_names: Vec<&str> = fsm.states().iter().map(|s| s.name()).collect();
    let _ = writeln!(
        out,
        "type {upper}_STATETABLE is ({});",
        state_names.join(", ")
    );
    let mut params: Vec<String> = svc
        .args()
        .iter()
        .map(|(n, t)| format!("{} : in {}", n, vhdl_type(t)))
        .collect();
    params.push("DONE : out boolean".to_string());
    if let Some(ret) = svc.returns() {
        params.push(format!("RESULT : out {}", vhdl_type(ret)));
    }
    let _ = writeln!(out, "procedure {upper}({}) is", params.join("; "));
    for local in svc
        .locals()
        .iter()
        .skip(1 + usize::from(svc.returns().is_some()))
    {
        let _ = writeln!(
            out,
            "  variable {} : {} := {};",
            local.name(),
            vhdl_type(local.ty()),
            value_vhdl(local.init())
        );
    }
    let _ = writeln!(out, "begin");
    let _ = writeln!(out, "  DONE := false;");
    fsm_case_vhdl(fsm, &ctx, &mut out, 1);
    let init_name = fsm.state(fsm.initial()).name();
    let _ = writeln!(out, "  if DONE then NEXT_STATE := {init_name}; end if;");
    let _ = writeln!(out, "end procedure;");
    out
}

/// Renders a hardware module as a VHDL entity + single-process
/// architecture in the Figure 7 style.
#[must_use]
pub fn render_module(module: &Module) -> String {
    let ctx = RenderCtx::for_module(module);
    let fsm = module.fsm();
    let name = module.name().to_uppercase();
    let mut out = String::new();
    let _ = writeln!(out, "-- HW view of {} module {}", module.kind(), name);
    let _ = writeln!(out, "entity {name} is");
    if !module.ports().is_empty() {
        let _ = writeln!(out, "  port (");
        let n = module.ports().len();
        for (i, p) in module.ports().iter().enumerate() {
            let dir = match p.dir() {
                PortDir::In => "in",
                PortDir::Out => "out",
                PortDir::InOut => "inout",
            };
            let sep = if i + 1 == n { "" } else { ";" };
            let _ = writeln!(
                out,
                "    {} : {} {}{}",
                p.name(),
                dir,
                vhdl_type(p.ty()),
                sep
            );
        }
        let _ = writeln!(out, "  );");
    }
    let _ = writeln!(out, "end entity;");
    let _ = writeln!(out);
    let _ = writeln!(out, "architecture fsm of {name} is");
    let state_names: Vec<&str> = fsm.states().iter().map(|s| s.name()).collect();
    let _ = writeln!(out, "  type STATETABLE is ({});", state_names.join(", "));
    let _ = writeln!(out, "begin");
    let _ = writeln!(out, "  main : process");
    let init_name = fsm.state(fsm.initial()).name();
    let _ = writeln!(out, "    variable NEXT_STATE : STATETABLE := {init_name};");
    for v in module.vars() {
        let _ = writeln!(
            out,
            "    variable {} : {} := {};",
            v.name(),
            vhdl_type(v.ty()),
            value_vhdl(v.init())
        );
    }
    let _ = writeln!(out, "  begin");
    fsm_case_vhdl(fsm, &ctx, &mut out, 2);
    let _ = writeln!(out, "    wait for CYCLE;");
    let _ = writeln!(out, "  end process;");
    let _ = writeln!(out, "end architecture;");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit::Bit;
    use crate::comm::{CommUnitBuilder, ServiceSpecBuilder, SERVICE_DONE_VAR};
    use crate::module::{ModuleBuilder, ModuleKind};
    use std::sync::Arc;

    fn fig3_unit() -> Arc<CommUnitSpec> {
        let mut u = CommUnitBuilder::new("hs");
        let b_full = u.wire("B_FULL", Type::Bit, Value::Bit(Bit::Zero));
        let datain = u.wire("DATAIN", Type::INT16, Value::Int(0));
        let mut s = ServiceSpecBuilder::new("put");
        s.arg("REQUEST", Type::INT16);
        let init = s.state("INIT");
        let wait = s.state("WAIT_B_FULL");
        let rdy = s.state("DATA_RDY");
        s.transition(init, Some(Expr::port(b_full).eq(Expr::bit(Bit::One))), wait);
        s.transition_with(init, None, vec![Stmt::drive(datain, Expr::arg(0))], rdy);
        s.transition(
            wait,
            Some(Expr::port(b_full).eq(Expr::bit(Bit::Zero))),
            init,
        );
        s.actions(rdy, vec![Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true))]);
        s.transition(rdy, None, init);
        s.initial(init);
        u.service(s.build().unwrap());
        u.build().unwrap()
    }

    #[test]
    fn hw_view_is_a_vhdl_procedure() {
        let unit = fig3_unit();
        let text = render_service(&unit, unit.service("put").unwrap());
        assert!(
            text.contains("procedure PUT(REQUEST : in integer; DONE : out boolean) is"),
            "{text}"
        );
        assert!(text.contains("case NEXT_STATE is"), "{text}");
        assert!(text.contains("when INIT =>"), "{text}");
        assert!(text.contains("if (B_FULL = '1') then"), "{text}");
        assert!(text.contains("DATAIN <= REQUEST;"), "{text}");
        assert!(text.contains("NEXT_STATE := WAIT_B_FULL;"), "{text}");
        assert!(text.contains("end procedure;"), "{text}");
    }

    #[test]
    fn state_type_declared() {
        let unit = fig3_unit();
        let text = render_service(&unit, unit.service("put").unwrap());
        assert!(
            text.contains("type PUT_STATETABLE is (INIT, WAIT_B_FULL, DATA_RDY);"),
            "{text}"
        );
    }

    #[test]
    fn module_entity_ports() {
        let mut mb = ModuleBuilder::new("speed_control", ModuleKind::Hardware);
        mb.port("CLK", PortDir::In, Type::Bit);
        mb.port("PULSE", PortDir::Out, Type::Bit);
        let v = mb.var("RESIDUAL", Type::INT16, Value::Int(0));
        let s = mb.state("RUN");
        mb.actions(s, vec![Stmt::assign(v, Expr::var(v).add(Expr::int(1)))]);
        mb.transition(s, None, s);
        mb.initial(s);
        let m = mb.build().unwrap();
        let text = render_module(&m);
        assert!(text.contains("entity SPEED_CONTROL is"), "{text}");
        assert!(text.contains("CLK : in std_logic;"), "{text}");
        assert!(text.contains("PULSE : out std_logic"), "{text}");
        assert!(text.contains("architecture fsm of SPEED_CONTROL"), "{text}");
        assert!(text.contains("variable RESIDUAL : integer := 0;"), "{text}");
        assert!(text.contains("when others => NEXT_STATE := RUN;"), "{text}");
    }

    #[test]
    fn bool_and_enum_types_map() {
        assert_eq!(vhdl_type(&Type::Bool), "boolean");
        assert_eq!(vhdl_type(&Type::Bit), "std_logic");
        assert_eq!(vhdl_type(&Type::INT16), "integer");
        let e = crate::value::EnumType::new("MODE", vec!["A".into(), "B".into()]);
        assert_eq!(vhdl_type(&Type::Enum(e)), "MODE");
    }

    #[test]
    fn operators_map_to_vhdl() {
        assert_eq!(binop_vhdl(BinOp::Ne), "/=");
        assert_eq!(binop_vhdl(BinOp::Rem), "mod");
        assert_eq!(binop_vhdl(BinOp::And), "and");
        assert_eq!(binop_vhdl(BinOp::Shl), "sll");
    }
}
