//! C emission: the SW simulation view and the SW synthesis views.
//!
//! Port accesses are the only thing that differs between the C views
//! (compare Figures 3a and 3b of the paper — the FSM skeleton is
//! identical):
//!
//! | view | read | write |
//! |---|---|---|
//! | simulation | `cliGetPortValue(map(P))` | `cliOutput(map(P), e)` |
//! | synthesis, PC-AT bus | `inport(map(P))` | `outport(map(P), e)` |
//! | synthesis, UNIX IPC | `ipc_read(chan(P))` | `ipc_write(chan(P), e)` |
//! | synthesis, microcode | `mc_read(P)` | `mc_write(P, e)` |

use super::{Indent, RenderCtx};
use crate::comm::{CommUnitSpec, ServiceSpec};
use crate::expr::{BinOp, Expr, UnOp};
use crate::fsm::Fsm;
use crate::module::Module;
use crate::stmt::Stmt;
use crate::value::{Type, Value};
use crate::view::{SwTarget, View};
use std::fmt::Write as _;

/// Returns the C expression reading a port in the given view.
fn port_read(view: View, name: &str, ty: Option<&Type>) -> String {
    let raw = match view {
        View::SwSim => format!("cliGetPortValue(map({name}))"),
        View::SwSynth(SwTarget::PcAtBus) => format!("inport(map({name}))"),
        View::SwSynth(SwTarget::UnixIpc) => format!("ipc_read(chan({name}))"),
        View::SwSynth(SwTarget::Microcode) => format!("mc_read({name})"),
        View::Hw => unreachable!("C renderer called with HW view"),
    };
    match ty {
        Some(Type::Bit) => format!("ToBIT({raw})"),
        Some(Type::Int { .. }) => format!("ToINTEGER({raw})"),
        _ => raw,
    }
}

/// Returns the C statement driving a port in the given view.
fn port_write(view: View, name: &str, ty: Option<&Type>, value: &str) -> String {
    let converted = match ty {
        Some(Type::Bit) => format!("FromBIT({value})"),
        Some(Type::Int { .. }) => format!("FromINTEGER({value})"),
        _ => value.to_string(),
    };
    match view {
        View::SwSim => format!("cliOutput(map({name}), {converted});"),
        View::SwSynth(SwTarget::PcAtBus) => format!("outport(map({name}), {converted});"),
        View::SwSynth(SwTarget::UnixIpc) => format!("ipc_write(chan({name}), {converted});"),
        View::SwSynth(SwTarget::Microcode) => format!("mc_write({name}, {converted});"),
        View::Hw => unreachable!("C renderer called with HW view"),
    }
}

fn value_c(v: &Value) -> String {
    match v {
        Value::Bit(b) => format!("BIT_{}", b.to_char()),
        Value::Bool(b) => if *b { "1" } else { "0" }.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Enum(e) => e.variant().to_string(),
    }
}

fn binop_c(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Min | BinOp::Max => unreachable!("min/max rendered as calls"),
    }
}

fn expr_c(e: &Expr, ctx: &RenderCtx<'_>, view: View) -> String {
    match e {
        Expr::Const(v) => value_c(v),
        Expr::Var(v) => ctx.var_name(*v).to_string(),
        Expr::Port(p) => port_read(view, ctx.port_name(*p), ctx.port_ty(*p)),
        Expr::Arg(i) => ctx.arg_name(*i).to_string(),
        Expr::Unary(UnOp::Neg, e) => format!("-({})", expr_c(e, ctx, view)),
        Expr::Unary(UnOp::Not, e) => format!("!({})", expr_c(e, ctx, view)),
        Expr::Binary(BinOp::Min, a, b) => {
            format!("MIN({}, {})", expr_c(a, ctx, view), expr_c(b, ctx, view))
        }
        Expr::Binary(BinOp::Max, a, b) => {
            format!("MAX({}, {})", expr_c(a, ctx, view), expr_c(b, ctx, view))
        }
        Expr::Binary(op, a, b) => {
            format!(
                "({} {} {})",
                expr_c(a, ctx, view),
                binop_c(*op),
                expr_c(b, ctx, view)
            )
        }
    }
}

fn stmt_c(s: &Stmt, ctx: &RenderCtx<'_>, view: View, out: &mut String, ind: usize) {
    match s {
        Stmt::Assign(v, e) => {
            let _ = writeln!(
                out,
                "{}{} = {};",
                Indent(ind),
                ctx.var_name(*v),
                expr_c(e, ctx, view)
            );
        }
        Stmt::Drive(p, e) => {
            let _ = writeln!(
                out,
                "{}{}",
                Indent(ind),
                port_write(
                    view,
                    ctx.port_name(*p),
                    ctx.port_ty(*p),
                    &expr_c(e, ctx, view)
                )
            );
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "{}if ({}) {{", Indent(ind), expr_c(cond, ctx, view));
            for t in then_body {
                stmt_c(t, ctx, view, out, ind + 1);
            }
            if else_body.is_empty() {
                let _ = writeln!(out, "{}}}", Indent(ind));
            } else {
                let _ = writeln!(out, "{}}} else {{", Indent(ind));
                for t in else_body {
                    stmt_c(t, ctx, view, out, ind + 1);
                }
                let _ = writeln!(out, "{}}}", Indent(ind));
            }
        }
        Stmt::Call(c) => {
            let args: Vec<String> = c.args.iter().map(|a| expr_c(a, ctx, view)).collect();
            let target = match (c.done, c.result) {
                (Some(d), _) => ctx.var_name(d).to_string(),
                (None, _) => "(void)".to_string(),
            };
            let call = format!("{}({})", c.service.to_uppercase(), args.join(", "));
            if c.done.is_some() {
                let _ = writeln!(out, "{}{} = {};", Indent(ind), target, call);
            } else {
                let _ = writeln!(out, "{}{};", Indent(ind), call);
            }
            if let Some(r) = c.result {
                let _ = writeln!(
                    out,
                    "{}if ({}) {} = {}_RESULT();",
                    Indent(ind),
                    target,
                    ctx.var_name(r),
                    c.service.to_uppercase()
                );
            }
        }
        Stmt::Trace(label, _) => {
            let _ = writeln!(out, "{}/* trace: {label} */", Indent(ind));
        }
    }
}

/// Emits the FSM body as a `switch` over the `NEXTSTATE` variable, in the
/// exact shape of the paper's Figure 3 C code.
fn fsm_switch_c(fsm: &Fsm, ctx: &RenderCtx<'_>, view: View, state_var: &str, out: &mut String) {
    let _ = writeln!(out, "  switch ({state_var}) {{");
    for sid in fsm.state_ids() {
        let st = fsm.state(sid);
        let _ = writeln!(out, "    case {}: {{", st.name());
        for a in &st.actions {
            stmt_c(a, ctx, view, out, 3);
        }
        for t in &st.transitions {
            match &t.guard {
                Some(g) => {
                    let _ = writeln!(out, "      if ({}) {{", expr_c(g, ctx, view));
                    for a in &t.actions {
                        stmt_c(a, ctx, view, out, 4);
                    }
                    let _ = writeln!(
                        out,
                        "        {state_var} = {}; break;",
                        fsm.state(t.target).name()
                    );
                    let _ = writeln!(out, "      }}");
                }
                None => {
                    for a in &t.actions {
                        stmt_c(a, ctx, view, out, 3);
                    }
                    let _ = writeln!(
                        out,
                        "      {state_var} = {}; break;",
                        fsm.state(t.target).name()
                    );
                }
            }
        }
        let _ = writeln!(out, "    }} break;");
    }
    let _ = writeln!(
        out,
        "    default: {{ {state_var} = {}; break; }}",
        fsm.state(fsm.initial()).name()
    );
    let _ = writeln!(out, "  }}");
}

fn c_type(ty: &Type) -> &'static str {
    match ty {
        Type::Bit => "BIT",
        Type::Bool => "int",
        Type::Int { .. } => "int",
        Type::Enum(_) => "int",
    }
}

/// Renders an access procedure (service) as a C function in the given
/// software view — the machinery behind Figures 3a/3b.
///
/// The function follows the paper's calling convention: invoke once per
/// activation; it returns 1 (`DONE`) when the protocol completed and 0
/// otherwise, resetting its internal `NEXTSTATE` to the initial state on
/// completion.
#[must_use]
pub fn render_service(unit: &CommUnitSpec, svc: &ServiceSpec, view: View) -> String {
    assert!(view != View::Hw, "use render::vhdl for the HW view");
    let ctx = RenderCtx::for_service(unit, svc);
    let fsm = svc.fsm();
    let upper = svc.name().to_uppercase();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* {} view of access procedure {} (unit {}) */",
        view,
        upper,
        unit.name()
    );
    let state_names: Vec<&str> = fsm.states().iter().map(|s| s.name()).collect();
    let _ = writeln!(
        out,
        "typedef enum {{ {} }} {}_STATETABLE;",
        state_names.join(", "),
        upper
    );
    let init_name = fsm.state(fsm.initial()).name();
    let _ = writeln!(out, "static {upper}_STATETABLE NEXTSTATE = {init_name};");
    // Persistent protocol locals (beyond DONE, which is per-call).
    for local in svc.locals().iter().skip(1) {
        let _ = writeln!(
            out,
            "static {} {} = {};",
            c_type(local.ty()),
            local.name(),
            value_c(local.init())
        );
    }
    let params: Vec<String> = svc
        .args()
        .iter()
        .map(|(n, t)| format!("{} {}", c_type(t), n))
        .collect();
    let _ = writeln!(out, "int {upper}({})", params.join(", "));
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  int DONE = 0;");
    fsm_switch_c(fsm, &ctx, view, "NEXTSTATE", &mut out);
    let _ = writeln!(out, "  if (DONE) {{ NEXTSTATE = {init_name}; }}");
    let _ = writeln!(out, "  return DONE;");
    let _ = writeln!(out, "}}");
    if let Some(ret) = svc.returns() {
        let _ = writeln!(
            out,
            "{} {upper}_RESULT(void) {{ return RESULT; }}",
            c_type(ret)
        );
    }
    out
}

/// Renders a whole software module as a C function in the paper's
/// Figure 6b shape: a `switch`-based FSM executing one transition per
/// activation, returning `DONE`.
#[must_use]
pub fn render_module(module: &Module, view: View) -> String {
    assert!(view != View::Hw, "use render::vhdl for the HW view");
    let ctx = RenderCtx::for_module(module);
    let fsm = module.fsm();
    let upper = module.name().to_uppercase();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* {} view of {} module {} */",
        view,
        module.kind(),
        upper
    );
    let state_names: Vec<&str> = fsm.states().iter().map(|s| s.name()).collect();
    let _ = writeln!(
        out,
        "typedef enum {{ {} }} {}_STATETABLE;",
        state_names.join(", "),
        upper
    );
    let init_name = fsm.state(fsm.initial()).name();
    let _ = writeln!(out, "static {upper}_STATETABLE NextState = {init_name};");
    for v in module.vars() {
        let _ = writeln!(
            out,
            "static {} {} = {};",
            c_type(v.ty()),
            v.name(),
            value_c(v.init())
        );
    }
    let _ = writeln!(out, "int {upper}(void)");
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  int DONE = 1;");
    fsm_switch_c(fsm, &ctx, view, "NextState", &mut out);
    let _ = writeln!(out, "  return DONE;");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit::Bit;
    use crate::comm::{CommUnitBuilder, ServiceSpecBuilder, SERVICE_DONE_VAR};
    use crate::module::{ModuleBuilder, ModuleKind};
    use std::sync::Arc;

    /// Builds the paper's Figure 3 `put` handshake protocol.
    fn fig3_unit() -> Arc<CommUnitSpec> {
        let mut u = CommUnitBuilder::new("hs");
        let b_full = u.wire("B_FULL", Type::Bit, Value::Bit(Bit::Zero));
        let datain = u.wire("DATAIN", Type::INT16, Value::Int(0));
        let mut s = ServiceSpecBuilder::new("put");
        s.arg("REQUEST", Type::INT16);
        let init = s.state("INIT");
        let wait = s.state("WAIT_B_FULL");
        let rdy = s.state("DATA_RDY");
        let idle = s.state("IDLE");
        s.transition(init, Some(Expr::port(b_full).eq(Expr::bit(Bit::One))), wait);
        s.transition_with(init, None, vec![Stmt::drive(datain, Expr::arg(0))], rdy);
        s.transition(
            wait,
            Some(Expr::port(b_full).eq(Expr::bit(Bit::Zero))),
            init,
        );
        s.transition(rdy, None, idle);
        s.actions(idle, vec![Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true))]);
        s.transition(idle, None, init);
        s.initial(init);
        u.service(s.build().unwrap());
        u.build().unwrap()
    }

    #[test]
    fn sim_view_uses_cli_interface() {
        let unit = fig3_unit();
        let text = render_service(&unit, unit.service("put").unwrap(), View::SwSim);
        assert!(text.contains("cliGetPortValue(map(B_FULL))"), "{text}");
        assert!(
            text.contains("cliOutput(map(DATAIN), FromINTEGER(REQUEST))"),
            "{text}"
        );
        assert!(text.contains("case INIT"), "{text}");
        assert!(text.contains("case WAIT_B_FULL"), "{text}");
        assert!(text.contains("int PUT(int REQUEST)"), "{text}");
        assert!(text.contains("return DONE;"), "{text}");
    }

    #[test]
    fn pcat_view_uses_inport_outport() {
        let unit = fig3_unit();
        let text = render_service(
            &unit,
            unit.service("put").unwrap(),
            View::SwSynth(SwTarget::PcAtBus),
        );
        assert!(text.contains("inport(map(B_FULL))"), "{text}");
        assert!(
            text.contains("outport(map(DATAIN), FromINTEGER(REQUEST))"),
            "{text}"
        );
        assert!(!text.contains("cliOutput"), "{text}");
    }

    #[test]
    fn ipc_view_uses_ipc_calls() {
        let unit = fig3_unit();
        let text = render_service(
            &unit,
            unit.service("put").unwrap(),
            View::SwSynth(SwTarget::UnixIpc),
        );
        assert!(text.contains("ipc_read(chan(B_FULL))"), "{text}");
        assert!(text.contains("ipc_write(chan(DATAIN)"), "{text}");
    }

    #[test]
    fn microcode_view_uses_mc_calls() {
        let unit = fig3_unit();
        let text = render_service(
            &unit,
            unit.service("put").unwrap(),
            View::SwSynth(SwTarget::Microcode),
        );
        assert!(text.contains("mc_read(B_FULL)"), "{text}");
        assert!(text.contains("mc_write(DATAIN"), "{text}");
    }

    #[test]
    fn bit_comparisons_use_tobit() {
        let unit = fig3_unit();
        let text = render_service(&unit, unit.service("put").unwrap(), View::SwSim);
        assert!(
            text.contains("(ToBIT(cliGetPortValue(map(B_FULL))) == BIT_1)"),
            "{text}"
        );
    }

    #[test]
    fn views_share_the_fsm_skeleton() {
        // The FSM skeleton (states, transitions order) must be identical
        // across views — only port accesses differ.
        let unit = fig3_unit();
        let svc = unit.service("put").unwrap();
        let sim = render_service(&unit, svc, View::SwSim);
        let syn = render_service(&unit, svc, View::SwSynth(SwTarget::PcAtBus));
        let skeleton = |s: &str| {
            s.lines()
                .filter(|l| l.contains("case") || l.contains("NEXTSTATE ="))
                .map(str::trim)
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(skeleton(&sim), skeleton(&syn));
    }

    #[test]
    fn service_with_result_emits_result_accessor() {
        let mut u = CommUnitBuilder::new("hs");
        let data = u.wire("DATA", Type::INT16, Value::Int(0));
        let mut s = ServiceSpecBuilder::new("get");
        let r = s.returns(Type::INT16);
        let st = s.state("READ");
        s.actions(
            st,
            vec![
                Stmt::assign(r, Expr::port(data)),
                Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true)),
            ],
        );
        s.transition(st, None, st);
        s.initial(st);
        u.service(s.build().unwrap());
        let unit = u.build().unwrap();
        let text = render_service(&unit, unit.service("get").unwrap(), View::SwSim);
        assert!(text.contains("int GET_RESULT(void)"), "{text}");
        assert!(text.contains("static int RESULT = 0;"), "{text}");
    }

    #[test]
    fn module_renders_fig6_shape() {
        let mut mb = ModuleBuilder::new("distribution", ModuleKind::Software);
        let done = mb.var("CTL_DONE", Type::Bool, Value::Bool(false));
        let b = mb.binding("Distribution_Interface", "swhw_link");
        let start = mb.state("Start");
        let setup = mb.state("SetupControlCall");
        let step = mb.state("Step");
        mb.transition(start, None, setup);
        mb.actions(
            setup,
            vec![Stmt::Call(crate::stmt::ServiceCall {
                binding: b,
                service: "SetupControl".into(),
                args: vec![],
                done: Some(done),
                result: None,
            })],
        );
        mb.transition(setup, Some(Expr::var(done)), step);
        mb.transition(step, None, start);
        mb.initial(start);
        let m = mb.build().unwrap();
        let text = render_module(&m, View::SwSim);
        assert!(text.contains("int DISTRIBUTION(void)"), "{text}");
        assert!(text.contains("case SetupControlCall"), "{text}");
        assert!(text.contains("CTL_DONE = SETUPCONTROL();"), "{text}");
        assert!(text.contains("if (CTL_DONE)"), "{text}");
        assert!(text.contains("int DONE = 1;"), "{text}");
    }

    #[test]
    #[should_panic(expected = "HW view")]
    fn hw_view_panics_in_c_renderer() {
        let unit = fig3_unit();
        let _ = render_service(&unit, unit.service("put").unwrap(), View::Hw);
    }
}
