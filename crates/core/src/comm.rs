//! Communication units: the paper's central abstraction.
//!
//! A [`CommUnitSpec`] is "an entity able to execute a communication scheme
//! invoked through a procedure call mechanism" (§3). It owns internal
//! *wires* (hardware ports / shared state), an optional *controller* FSM
//! that guards global state and resolves conflicts, and a set of
//! *services* (access procedures such as `put`/`get`), each of which is a
//! protocol FSM over the same wires.
//!
//! Modules never see the wires — they call services, and each call
//! activates one step of the service FSM (returning a completion flag),
//! exactly like the `PUT` procedure of Figure 3.

use crate::fsm::{Fsm, FsmBuildError, FsmBuilder};
use crate::ids::{PortId, StateId, VarId};
use crate::module::Variable;
use crate::stmt::Stmt;
use crate::value::{Type, Value};
use crate::Expr;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An internal wire (signal or shared register) of a communication unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Wire {
    name: String,
    ty: Type,
    init: Value,
}

impl Wire {
    /// Wire name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Wire type.
    #[must_use]
    pub fn ty(&self) -> &Type {
        &self.ty
    }

    /// Initial value.
    #[must_use]
    pub fn init(&self) -> &Value {
        &self.init
    }
}

/// The unit-internal controller process (optional): an FSM with private
/// variables that runs autonomously — every co-simulation cycle — and
/// arbitrates the wires (the "communication controller" of Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Controller {
    /// Private controller variables.
    pub vars: Vec<Variable>,
    /// Controller behaviour; `Expr::Port` refers to unit wires.
    pub fsm: Fsm,
}

/// Conventional id of the completion flag local inside every service.
pub const SERVICE_DONE_VAR: VarId = VarId::new(0);
/// Conventional id of the result local inside services that return a
/// value.
pub const SERVICE_RESULT_VAR: VarId = VarId::new(1);

/// An access procedure of a communication unit.
///
/// By convention local variable 0 is the `DONE` flag (set by the protocol
/// FSM on completion) and, when the service returns a value, local
/// variable 1 is the result register. [`ServiceSpecBuilder`] enforces the
/// convention.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    name: String,
    args: Vec<(String, Type)>,
    returns: Option<Type>,
    locals: Vec<Variable>,
    fsm: Fsm,
}

impl ServiceSpec {
    /// Service name (e.g. `"put"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Formal arguments.
    #[must_use]
    pub fn args(&self) -> &[(String, Type)] {
        &self.args
    }

    /// Return type, if the service produces a value (e.g. `get`).
    #[must_use]
    pub fn returns(&self) -> Option<&Type> {
        self.returns.as_ref()
    }

    /// Local variables (index 0 is `DONE`; index 1 is `RESULT` when
    /// `returns` is set).
    #[must_use]
    pub fn locals(&self) -> &[Variable] {
        &self.locals
    }

    /// Protocol FSM.
    #[must_use]
    pub fn fsm(&self) -> &Fsm {
        &self.fsm
    }
}

/// Builder for [`ServiceSpec`]; creates the `DONE` (and `RESULT`) locals
/// automatically.
///
/// # Examples
///
/// ```
/// use cosma_core::comm::ServiceSpecBuilder;
/// use cosma_core::{Type, Expr, Stmt};
/// use cosma_core::comm::SERVICE_DONE_VAR;
///
/// let mut b = ServiceSpecBuilder::new("ping");
/// let s = b.state("GO");
/// b.actions(s, vec![Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true))]);
/// b.transition(s, None, s);
/// b.initial(s);
/// let svc = b.build()?;
/// assert_eq!(svc.name(), "ping");
/// assert_eq!(svc.locals()[0].name(), "DONE");
/// # Ok::<(), cosma_core::comm::CommBuildError>(())
/// ```
#[derive(Debug)]
pub struct ServiceSpecBuilder {
    name: String,
    args: Vec<(String, Type)>,
    returns: Option<Type>,
    locals: Vec<Variable>,
    fsm: FsmBuilder,
}

impl ServiceSpecBuilder {
    /// Starts a service. Local 0 (`DONE: bool`) is created immediately.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ServiceSpecBuilder {
            name: name.into(),
            args: vec![],
            returns: None,
            locals: vec![Variable::new("DONE", Type::Bool, Value::Bool(false))],
            fsm: FsmBuilder::new(),
        }
    }

    /// Declares a formal argument; returns its index for [`Expr::Arg`].
    ///
    /// [`Expr::Arg`]: crate::Expr::Arg
    pub fn arg(&mut self, name: impl Into<String>, ty: Type) -> u32 {
        self.args.push((name.into(), ty));
        (self.args.len() - 1) as u32
    }

    /// Declares that the service returns a value of `ty`; creates the
    /// `RESULT` local (id [`SERVICE_RESULT_VAR`]).
    ///
    /// # Panics
    ///
    /// Panics if called twice or after other locals were declared (the
    /// result register must be local 1).
    pub fn returns(&mut self, ty: Type) -> VarId {
        assert!(self.returns.is_none(), "returns() called twice");
        assert_eq!(
            self.locals.len(),
            1,
            "returns() must be declared before other locals"
        );
        let init = ty.default_value();
        self.returns = Some(ty.clone());
        self.locals.push(Variable::new("RESULT", ty, init));
        SERVICE_RESULT_VAR
    }

    /// Declares an additional protocol-local variable.
    pub fn local(&mut self, name: impl Into<String>, ty: Type, init: Value) -> VarId {
        let id = VarId::new(self.locals.len() as u32);
        self.locals.push(Variable::new(name, ty, init));
        id
    }

    /// Declares (or fetches) a protocol state.
    pub fn state(&mut self, name: impl Into<String>) -> StateId {
        self.fsm.state(name)
    }

    /// Appends entry actions to a state.
    pub fn actions(&mut self, state: StateId, stmts: Vec<Stmt>) -> &mut Self {
        self.fsm.actions(state, stmts);
        self
    }

    /// Adds a transition.
    pub fn transition(&mut self, from: StateId, guard: Option<Expr>, target: StateId) -> &mut Self {
        self.fsm.transition(from, guard, target);
        self
    }

    /// Adds a transition with actions.
    pub fn transition_with(
        &mut self,
        from: StateId,
        guard: Option<Expr>,
        actions: Vec<Stmt>,
        target: StateId,
    ) -> &mut Self {
        self.fsm.transition_with(from, guard, actions, target);
        self
    }

    /// Sets the initial state.
    pub fn initial(&mut self, state: StateId) -> &mut Self {
        self.fsm.initial(state);
        self
    }

    /// Finalizes the service (wire references are checked later, by
    /// [`CommUnitBuilder::build`], which knows the wire table).
    ///
    /// # Errors
    ///
    /// Returns [`CommBuildError`] if the protocol FSM fails to build.
    pub fn build(self) -> Result<ServiceSpec, CommBuildError> {
        let fsm = self.fsm.build().map_err(|e| CommBuildError::Fsm {
            item: format!("service {}", self.name),
            source: e,
        })?;
        Ok(ServiceSpec {
            name: self.name,
            args: self.args,
            returns: self.returns,
            locals: self.locals,
            fsm,
        })
    }
}

/// A communication-unit type: wires + optional controller + services.
///
/// Specs are immutable and shared (`Arc`) between the library, system
/// descriptions and runtime instances.
#[derive(Debug, Clone, PartialEq)]
pub struct CommUnitSpec {
    name: String,
    wires: Vec<Wire>,
    controller: Option<Controller>,
    services: Vec<ServiceSpec>,
}

impl CommUnitSpec {
    /// Unit type name (e.g. `"handshake"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Internal wires in id order (`Expr::Port` inside controller and
    /// services indexes this table).
    ///
    /// [`Expr::Port`]: crate::Expr::Port
    #[must_use]
    pub fn wires(&self) -> &[Wire] {
        &self.wires
    }

    /// The controller, if any.
    #[must_use]
    pub fn controller(&self) -> Option<&Controller> {
        self.controller.as_ref()
    }

    /// All services.
    #[must_use]
    pub fn services(&self) -> &[ServiceSpec] {
        &self.services
    }

    /// Finds a service by name. Lookup is exact first, then
    /// case-insensitive (VHDL callers upper-case procedure names).
    #[must_use]
    pub fn service(&self, name: &str) -> Option<&ServiceSpec> {
        self.service_index(name).map(|i| &self.services[i])
    }

    /// Resolves a service name to its index in [`CommUnitSpec::services`],
    /// under the same exact-then-case-insensitive policy as
    /// [`CommUnitSpec::service`] — the single definition of name
    /// resolution, shared by runtimes that keep per-service tables
    /// parallel to the spec (session keys, interned names).
    #[must_use]
    pub fn service_index(&self, name: &str) -> Option<usize> {
        self.services
            .iter()
            .position(|s| s.name == name)
            .or_else(|| {
                self.services
                    .iter()
                    .position(|s| s.name.eq_ignore_ascii_case(name))
            })
    }

    /// Finds a wire id by name.
    #[must_use]
    pub fn wire_id(&self, name: &str) -> Option<PortId> {
        self.wires
            .iter()
            .position(|w| w.name == name)
            .map(|i| PortId::new(i as u32))
    }
}

/// Builder for [`CommUnitSpec`].
#[derive(Debug)]
pub struct CommUnitBuilder {
    name: String,
    wires: Vec<Wire>,
    wire_names: HashMap<String, PortId>,
    controller: Option<Controller>,
    services: Vec<ServiceSpec>,
    duplicate: Option<String>,
}

impl CommUnitBuilder {
    /// Starts a unit type.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        CommUnitBuilder {
            name: name.into(),
            wires: vec![],
            wire_names: HashMap::new(),
            controller: None,
            services: vec![],
            duplicate: None,
        }
    }

    /// Declares an internal wire.
    pub fn wire(&mut self, name: impl Into<String>, ty: Type, init: Value) -> PortId {
        let name = name.into();
        let id = PortId::new(self.wires.len() as u32);
        if self.wire_names.insert(name.clone(), id).is_some() {
            self.duplicate.get_or_insert(format!("wire {name}"));
        }
        self.wires.push(Wire { name, ty, init });
        id
    }

    /// Declares a wire initialized to its type default.
    pub fn wire_default(&mut self, name: impl Into<String>, ty: Type) -> PortId {
        let init = ty.default_value();
        self.wire(name, ty, init)
    }

    /// Installs the controller.
    pub fn controller(&mut self, vars: Vec<Variable>, fsm: Fsm) -> &mut Self {
        self.controller = Some(Controller { vars, fsm });
        self
    }

    /// Adds a service.
    pub fn service(&mut self, svc: ServiceSpec) -> &mut Self {
        if self.services.iter().any(|s| s.name == svc.name) {
            self.duplicate
                .get_or_insert(format!("service {}", svc.name));
        }
        self.services.push(svc);
        self
    }

    /// Finalizes and cross-checks the unit.
    ///
    /// # Errors
    ///
    /// Returns [`CommBuildError`] for duplicate names or for service /
    /// controller FSMs that reference wires, locals or arguments out of
    /// range (see [`crate::validate`]).
    pub fn build(self) -> Result<Arc<CommUnitSpec>, CommBuildError> {
        if let Some(dup) = self.duplicate {
            return Err(CommBuildError::Duplicate {
                unit: self.name,
                item: dup,
            });
        }
        let spec = CommUnitSpec {
            name: self.name,
            wires: self.wires,
            controller: self.controller,
            services: self.services,
        };
        crate::validate::check_unit(&spec).map_err(|detail| CommBuildError::Invalid {
            unit: spec.name.clone(),
            detail,
        })?;
        Ok(Arc::new(spec))
    }
}

/// Errors from communication-unit construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommBuildError {
    /// Duplicate wire or service name.
    Duplicate {
        /// Unit being built.
        unit: String,
        /// Which declaration clashed.
        item: String,
    },
    /// Underlying FSM construction failed.
    Fsm {
        /// Which service/controller.
        item: String,
        /// FSM error.
        source: FsmBuildError,
    },
    /// Cross-reference validation failed.
    Invalid {
        /// Unit being built.
        unit: String,
        /// Violation description.
        detail: String,
    },
}

impl fmt::Display for CommBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommBuildError::Duplicate { unit, item } => {
                write!(f, "communication unit {unit}: duplicate {item}")
            }
            CommBuildError::Fsm { item, source } => write!(f, "{item}: {source}"),
            CommBuildError::Invalid { unit, detail } => {
                write!(f, "communication unit {unit}: {detail}")
            }
        }
    }
}

impl std::error::Error for CommBuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CommBuildError::Fsm { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit::Bit;

    /// A minimal one-wire unit with a `ping` service that completes
    /// immediately.
    fn tiny_unit() -> Arc<CommUnitSpec> {
        let mut u = CommUnitBuilder::new("tiny");
        let flag = u.wire("FLAG", Type::Bit, Value::Bit(Bit::Zero));
        let mut s = ServiceSpecBuilder::new("ping");
        let go = s.state("GO");
        s.actions(
            go,
            vec![
                Stmt::drive(flag, Expr::bit(Bit::One)),
                Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true)),
            ],
        );
        s.transition(go, None, go);
        s.initial(go);
        u.service(s.build().unwrap());
        u.build().unwrap()
    }

    #[test]
    fn unit_lookup() {
        let u = tiny_unit();
        assert_eq!(u.name(), "tiny");
        assert_eq!(u.wires().len(), 1);
        assert_eq!(u.wire_id("FLAG"), Some(PortId::new(0)));
        assert_eq!(u.wire_id("NOPE"), None);
        assert!(u.service("ping").is_some());
        assert!(u.service("put").is_none());
    }

    #[test]
    fn service_convention_locals() {
        let u = tiny_unit();
        let svc = u.service("ping").unwrap();
        assert_eq!(svc.locals()[SERVICE_DONE_VAR.index()].name(), "DONE");
        assert_eq!(svc.returns(), None);
    }

    #[test]
    fn returns_creates_result_local() {
        let mut s = ServiceSpecBuilder::new("get");
        let r = s.returns(Type::INT16);
        assert_eq!(r, SERVICE_RESULT_VAR);
        let st = s.state("S");
        s.transition(st, None, st);
        s.initial(st);
        let svc = s.build().unwrap();
        assert_eq!(svc.locals()[1].name(), "RESULT");
        assert_eq!(svc.returns(), Some(&Type::INT16));
    }

    #[test]
    #[should_panic(expected = "returns() called twice")]
    fn double_returns_panics() {
        let mut s = ServiceSpecBuilder::new("get");
        s.returns(Type::INT16);
        s.returns(Type::INT16);
    }

    #[test]
    fn duplicate_wire_rejected() {
        let mut u = CommUnitBuilder::new("dup");
        u.wire("A", Type::Bit, Value::Bit(Bit::Zero));
        u.wire("A", Type::Bit, Value::Bit(Bit::Zero));
        assert!(matches!(u.build(), Err(CommBuildError::Duplicate { .. })));
    }

    #[test]
    fn duplicate_service_rejected() {
        let mut u = CommUnitBuilder::new("dup");
        for _ in 0..2 {
            let mut s = ServiceSpecBuilder::new("ping");
            let st = s.state("S");
            s.transition(st, None, st);
            s.initial(st);
            u.service(s.build().unwrap());
        }
        assert!(matches!(u.build(), Err(CommBuildError::Duplicate { .. })));
    }

    #[test]
    fn service_referencing_unknown_wire_rejected() {
        let mut u = CommUnitBuilder::new("bad");
        // No wires declared, but the service drives wire 0.
        let mut s = ServiceSpecBuilder::new("ping");
        let st = s.state("S");
        s.actions(st, vec![Stmt::drive(PortId::new(0), Expr::bit(Bit::One))]);
        s.transition(st, None, st);
        s.initial(st);
        u.service(s.build().unwrap());
        assert!(matches!(u.build(), Err(CommBuildError::Invalid { .. })));
    }

    #[test]
    fn service_arg_out_of_range_rejected() {
        let mut u = CommUnitBuilder::new("bad");
        let w = u.wire("D", Type::INT16, Value::Int(0));
        let mut s = ServiceSpecBuilder::new("put");
        s.arg("REQUEST", Type::INT16);
        let st = s.state("S");
        s.actions(st, vec![Stmt::drive(w, Expr::arg(1))]); // only arg 0 exists
        s.transition(st, None, st);
        s.initial(st);
        u.service(s.build().unwrap());
        assert!(matches!(u.build(), Err(CommBuildError::Invalid { .. })));
    }

    #[test]
    fn nested_service_call_rejected() {
        let mut u = CommUnitBuilder::new("bad");
        let mut s = ServiceSpecBuilder::new("ping");
        let st = s.state("S");
        s.actions(
            st,
            vec![Stmt::Call(crate::stmt::ServiceCall {
                binding: crate::ids::BindingId::new(0),
                service: "other".into(),
                args: vec![],
                done: None,
                result: None,
            })],
        );
        s.transition(st, None, st);
        s.initial(st);
        u.service(s.build().unwrap());
        assert!(matches!(u.build(), Err(CommBuildError::Invalid { .. })));
    }

    #[test]
    fn error_display() {
        let e = CommBuildError::Duplicate {
            unit: "u".into(),
            item: "wire A".into(),
        };
        assert!(e.to_string().contains("duplicate wire A"));
    }
}
