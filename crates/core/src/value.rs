//! Runtime values and the small type system shared by the hardware and
//! software sides of the unified model.
//!
//! Every signal, port, variable and service argument in the IR carries a
//! [`Type`]; the interpreter, the co-simulation kernel and the synthesized
//! artifacts all exchange [`Value`]s. Integer values are clamped to their
//! declared bit width on assignment, which is what makes the interpreted
//! FSM, the C views and the synthesized RTL agree bit-for-bit.

use crate::bit::Bit;
use std::fmt;
use std::sync::Arc;

/// An enumeration type (the IR image of C `typedef enum` and of VHDL
/// enumerated types such as the `STATETABLE` in the paper's Figure 3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EnumType {
    name: String,
    variants: Vec<String>,
}

impl EnumType {
    /// Creates an enum type from a name and variant list.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty; an enum with no variants has no
    /// values and cannot initialize a variable.
    #[must_use]
    pub fn new(name: impl Into<String>, variants: Vec<String>) -> Arc<Self> {
        assert!(
            !variants.is_empty(),
            "enum type must have at least one variant"
        );
        Arc::new(EnumType {
            name: name.into(),
            variants,
        })
    }

    /// The type's declared name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered variant names.
    #[must_use]
    pub fn variants(&self) -> &[String] {
        &self.variants
    }

    /// Index of a variant by name.
    #[must_use]
    pub fn index_of(&self, variant: &str) -> Option<u32> {
        self.variants
            .iter()
            .position(|v| v == variant)
            .map(|i| i as u32)
    }

    /// Number of bits needed to encode the enum in binary.
    #[must_use]
    pub fn encoding_width(&self) -> u32 {
        let n = self.variants.len() as u32;
        if n <= 1 {
            1
        } else {
            32 - (n - 1).leading_zeros()
        }
    }
}

/// The IR type of a port, signal, variable or service argument.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// Single four-valued logic bit (VHDL `std_logic`-like).
    Bit,
    /// Boolean (guards, flags).
    Bool,
    /// Integer with an explicit bit width and signedness.
    ///
    /// The paper's `INTEGER` maps to `Type::int(16, true)` on the 16-bit
    /// PC-AT bus target.
    Int {
        /// Number of bits (1..=63).
        width: u32,
        /// Two's-complement when `true`.
        signed: bool,
    },
    /// Enumerated type (FSM state tables and friends).
    Enum(Arc<EnumType>),
}

impl Type {
    /// Convenience constructor for integer types.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 63 (values are stored in
    /// `i64`, and 64-bit unsigned would not fit).
    #[must_use]
    pub fn int(width: u32, signed: bool) -> Type {
        assert!((1..=63).contains(&width), "integer width must be in 1..=63");
        Type::Int { width, signed }
    }

    /// The canonical 16-bit signed integer used by the paper's examples.
    pub const INT16: Type = Type::Int {
        width: 16,
        signed: true,
    };

    /// Unsigned 16-bit integer (bus words).
    pub const UINT16: Type = Type::Int {
        width: 16,
        signed: false,
    };

    /// Bit width occupied by this type when synthesized to hardware.
    #[must_use]
    pub fn bit_width(&self) -> u32 {
        match self {
            Type::Bit | Type::Bool => 1,
            Type::Int { width, .. } => *width,
            Type::Enum(e) => e.encoding_width(),
        }
    }

    /// The default initial value for the type (`'0'`, `false`, `0` or the
    /// first enum variant).
    #[must_use]
    pub fn default_value(&self) -> Value {
        match self {
            Type::Bit => Value::Bit(Bit::Zero),
            Type::Bool => Value::Bool(false),
            Type::Int { .. } => Value::Int(0),
            Type::Enum(e) => Value::Enum(EnumValue {
                ty: e.clone(),
                index: 0,
            }),
        }
    }

    /// Clamps an integer to this type's width/signedness. Non-integer
    /// types return the input unchanged.
    #[must_use]
    pub fn clamp(&self, v: Value) -> Value {
        match (self, v) {
            (Type::Int { width, signed }, Value::Int(i)) => {
                Value::Int(clamp_int(i, *width, *signed))
            }
            (_, v) => v,
        }
    }

    /// Whether `v` is a value of this type (after clamping).
    #[must_use]
    pub fn admits(&self, v: &Value) -> bool {
        match (self, v) {
            (Type::Bit, Value::Bit(_))
            | (Type::Bool, Value::Bool(_))
            | (Type::Int { .. }, Value::Int(_)) => true,
            (Type::Enum(e), Value::Enum(ev)) => Arc::ptr_eq(e, &ev.ty) || **e == *ev.ty,
            _ => false,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bit => write!(f, "bit"),
            Type::Bool => write!(f, "bool"),
            Type::Int {
                width,
                signed: true,
            } => write!(f, "int{width}"),
            Type::Int {
                width,
                signed: false,
            } => write!(f, "uint{width}"),
            Type::Enum(e) => write!(f, "enum {}", e.name()),
        }
    }
}

/// Wraps `i` into the representable range of a `width`-bit integer.
fn clamp_int(i: i64, width: u32, signed: bool) -> i64 {
    let mask: u64 = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let raw = (i as u64) & mask;
    if signed {
        let sign_bit = 1u64 << (width - 1);
        if raw & sign_bit != 0 {
            (raw | !mask) as i64
        } else {
            raw as i64
        }
    } else {
        raw as i64
    }
}

/// A value of an enumerated type: the type plus a variant index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EnumValue {
    ty: Arc<EnumType>,
    index: u32,
}

impl EnumValue {
    /// Creates an enum value by variant name.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::NoSuchVariant`] if `variant` is not declared
    /// by `ty`.
    pub fn new(ty: Arc<EnumType>, variant: &str) -> Result<Self, ValueError> {
        match ty.index_of(variant) {
            Some(index) => Ok(EnumValue { ty, index }),
            None => Err(ValueError::NoSuchVariant {
                ty: ty.name().to_string(),
                variant: variant.to_string(),
            }),
        }
    }

    /// Creates an enum value by index.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::NoSuchVariant`] if `index` is out of range.
    pub fn from_index(ty: Arc<EnumType>, index: u32) -> Result<Self, ValueError> {
        if (index as usize) < ty.variants().len() {
            Ok(EnumValue { ty, index })
        } else {
            Err(ValueError::NoSuchVariant {
                ty: ty.name().to_string(),
                variant: format!("#{index}"),
            })
        }
    }

    /// The value's type.
    #[must_use]
    pub fn ty(&self) -> &Arc<EnumType> {
        &self.ty
    }

    /// The variant index.
    #[must_use]
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The variant name.
    #[must_use]
    pub fn variant(&self) -> &str {
        &self.ty.variants()[self.index as usize]
    }
}

/// A runtime value flowing through the interpreter, the co-simulation
/// kernel, the ISS and the synthesized netlists.
///
/// # Examples
///
/// ```
/// use cosma_core::{Value, Bit};
///
/// let v = Value::Int(300);
/// assert_eq!(v.as_int().unwrap(), 300);
/// assert_eq!(Value::Bit(Bit::One).truthy(), Some(true));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Four-valued logic bit.
    Bit(Bit),
    /// Boolean.
    Bool(bool),
    /// Integer (stored as `i64`, clamped to declared widths on assignment).
    Int(i64),
    /// Enumerated value.
    Enum(EnumValue),
}

impl Value {
    /// The integer payload, if this is an integer.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::TypeMismatch`] otherwise.
    pub fn as_int(&self) -> Result<i64, ValueError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(ValueError::type_mismatch("int", other)),
        }
    }

    /// The bit payload, if this is a bit.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::TypeMismatch`] otherwise.
    pub fn as_bit(&self) -> Result<Bit, ValueError> {
        match self {
            Value::Bit(b) => Ok(*b),
            other => Err(ValueError::type_mismatch("bit", other)),
        }
    }

    /// The boolean payload, if this is a bool.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::TypeMismatch`] otherwise.
    pub fn as_bool(&self) -> Result<bool, ValueError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ValueError::type_mismatch("bool", other)),
        }
    }

    /// Interprets the value as a condition: `Bool` directly, `Bit::One` /
    /// `Bit::Zero` as true/false, nonzero integers as true. `X`/`Z` bits
    /// are *not* conditions and yield `None` (unknown propagation).
    #[must_use]
    pub fn truthy(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Bit(b) => b.to_bool(),
            Value::Int(i) => Some(*i != 0),
            Value::Enum(_) => None,
        }
    }

    /// Converts the value into the raw bits used on a bus of `width` bits.
    /// Bits map to 0/1 (X and Z read as 0, matching a real sampled bus),
    /// booleans to 0/1, enums to their index.
    #[must_use]
    pub fn to_bus_word(&self, width: u32) -> u64 {
        let mask = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let raw = match self {
            Value::Bit(b) => u64::from(*b == Bit::One),
            Value::Bool(b) => u64::from(*b),
            Value::Int(i) => *i as u64,
            Value::Enum(e) => u64::from(e.index()),
        };
        raw & mask
    }

    /// Reconstructs a value of type `ty` from raw bus bits.
    ///
    /// # Errors
    ///
    /// Returns [`ValueError::NoSuchVariant`] if an enum index is out of
    /// range.
    pub fn from_bus_word(ty: &Type, word: u64) -> Result<Value, ValueError> {
        Ok(match ty {
            Type::Bit => Value::Bit(Bit::from(word & 1 == 1)),
            Type::Bool => Value::Bool(word & 1 == 1),
            Type::Int { width, signed } => Value::Int(clamp_int(word as i64, *width, *signed)),
            Type::Enum(e) => Value::Enum(EnumValue::from_index(e.clone(), word as u32)?),
        })
    }

    /// The [`Type`] this value naturally belongs to (integers report the
    /// canonical 16-bit signed type used throughout the paper's example).
    #[must_use]
    pub fn ty(&self) -> Type {
        match self {
            Value::Bit(_) => Type::Bit,
            Value::Bool(_) => Type::Bool,
            Value::Int(_) => Type::INT16,
            Value::Enum(e) => Type::Enum(e.ty().clone()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bit(b) => write!(f, "'{b}'"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Enum(e) => write!(f, "{}", e.variant()),
        }
    }
}

impl From<Bit> for Value {
    fn from(b: Bit) -> Self {
        Value::Bit(b)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

/// Errors produced by value conversions and typed assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    /// The value did not have the expected kind.
    TypeMismatch {
        /// What the operation needed.
        expected: String,
        /// What it got (display form).
        found: String,
    },
    /// An enum variant name or index was not declared by the type.
    NoSuchVariant {
        /// Enum type name.
        ty: String,
        /// Offending variant.
        variant: String,
    },
}

impl ValueError {
    fn type_mismatch(expected: &str, found: &Value) -> Self {
        ValueError::TypeMismatch {
            expected: expected.to_string(),
            found: format!("{found:?}"),
        }
    }
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::TypeMismatch { expected, found } => {
                write!(f, "expected {expected} value, found {found}")
            }
            ValueError::NoSuchVariant { ty, variant } => {
                write!(f, "enum {ty} has no variant {variant}")
            }
        }
    }
}

impl std::error::Error for ValueError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_table() -> Arc<EnumType> {
        EnumType::new(
            "STATETABLE",
            vec![
                "INIT".into(),
                "WAIT_B_FULL".into(),
                "DATA_RDY".into(),
                "IDLE".into(),
            ],
        )
    }

    #[test]
    fn enum_indexing_and_names() {
        let t = state_table();
        assert_eq!(t.index_of("INIT"), Some(0));
        assert_eq!(t.index_of("IDLE"), Some(3));
        assert_eq!(t.index_of("BOGUS"), None);
        let v = EnumValue::new(t.clone(), "DATA_RDY").unwrap();
        assert_eq!(v.index(), 2);
        assert_eq!(v.variant(), "DATA_RDY");
    }

    #[test]
    fn enum_encoding_width() {
        let t = state_table();
        assert_eq!(t.encoding_width(), 2);
        let one = EnumType::new("ONE", vec!["A".into()]);
        assert_eq!(one.encoding_width(), 1);
        let five = EnumType::new(
            "FIVE",
            vec!["A".into(), "B".into(), "C".into(), "D".into(), "E".into()],
        );
        assert_eq!(five.encoding_width(), 3);
    }

    #[test]
    fn enum_unknown_variant_is_error() {
        let t = state_table();
        let err = EnumValue::new(t.clone(), "NOPE").unwrap_err();
        assert!(err.to_string().contains("NOPE"));
        assert!(EnumValue::from_index(t, 99).is_err());
    }

    #[test]
    fn int_clamp_signed() {
        let t = Type::int(4, true);
        assert_eq!(t.clamp(Value::Int(7)), Value::Int(7));
        assert_eq!(t.clamp(Value::Int(8)), Value::Int(-8));
        assert_eq!(t.clamp(Value::Int(-1)), Value::Int(-1));
        assert_eq!(t.clamp(Value::Int(16)), Value::Int(0));
    }

    #[test]
    fn int_clamp_unsigned() {
        let t = Type::int(4, false);
        assert_eq!(t.clamp(Value::Int(15)), Value::Int(15));
        assert_eq!(t.clamp(Value::Int(16)), Value::Int(0));
        assert_eq!(t.clamp(Value::Int(-1)), Value::Int(15));
    }

    #[test]
    #[should_panic(expected = "integer width")]
    fn zero_width_int_panics() {
        let _ = Type::int(0, false);
    }

    #[test]
    fn default_values() {
        assert_eq!(Type::Bit.default_value(), Value::Bit(Bit::Zero));
        assert_eq!(Type::Bool.default_value(), Value::Bool(false));
        assert_eq!(Type::INT16.default_value(), Value::Int(0));
        let t = state_table();
        match Type::Enum(t).default_value() {
            Value::Enum(e) => assert_eq!(e.variant(), "INIT"),
            other => panic!("unexpected default {other:?}"),
        }
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::Bool(true).truthy(), Some(true));
        assert_eq!(Value::Bit(Bit::One).truthy(), Some(true));
        assert_eq!(Value::Bit(Bit::X).truthy(), None);
        assert_eq!(Value::Int(0).truthy(), Some(false));
        assert_eq!(Value::Int(-3).truthy(), Some(true));
    }

    #[test]
    fn bus_word_round_trip() {
        let t = Type::INT16;
        let v = Value::Int(-2);
        let w = v.to_bus_word(16);
        assert_eq!(w, 0xFFFE);
        assert_eq!(Value::from_bus_word(&t, w).unwrap(), Value::Int(-2));

        let tb = Type::Bit;
        assert_eq!(Value::Bit(Bit::One).to_bus_word(1), 1);
        assert_eq!(Value::from_bus_word(&tb, 1).unwrap(), Value::Bit(Bit::One));
    }

    #[test]
    fn bus_word_x_reads_as_zero() {
        assert_eq!(Value::Bit(Bit::X).to_bus_word(1), 0);
        assert_eq!(Value::Bit(Bit::Z).to_bus_word(1), 0);
    }

    #[test]
    fn admits_checks_types() {
        let t = state_table();
        let v = Value::Enum(EnumValue::new(t.clone(), "INIT").unwrap());
        assert!(Type::Enum(t.clone()).admits(&v));
        assert!(!Type::INT16.admits(&v));
        assert!(Type::INT16.admits(&Value::Int(5)));
        assert!(!Type::Bit.admits(&Value::Bool(true)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Bit(Bit::One).to_string(), "'1'");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Type::INT16.to_string(), "int16");
        assert_eq!(Type::int(8, false).to_string(), "uint8");
    }
}
