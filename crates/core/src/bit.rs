//! Four-valued logic bit, modelled on the subset of IEEE 1164 `std_logic`
//! that the paper's VHDL descriptions use.
//!
//! The co-simulation kernel and the synthesized netlists both operate on
//! [`Bit`] values so that `'X'` (unknown) propagation during reset and `'Z'`
//! (high impedance) on shared buses behave the same in both flows.

use std::fmt;

/// A four-valued logic level: `0`, `1`, unknown (`X`) or high-impedance (`Z`).
///
/// # Examples
///
/// ```
/// use cosma_core::Bit;
///
/// assert_eq!(Bit::One & Bit::Zero, Bit::Zero);
/// assert_eq!(Bit::One & Bit::X, Bit::X);
/// assert_eq!(Bit::from(true), Bit::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Bit {
    /// Logic low.
    #[default]
    Zero,
    /// Logic high.
    One,
    /// Unknown / uninitialized.
    X,
    /// High impedance (undriven bus).
    Z,
}

impl Bit {
    /// All four levels, in declaration order.
    pub const ALL: [Bit; 4] = [Bit::Zero, Bit::One, Bit::X, Bit::Z];

    /// Returns `true` if the bit is a defined logic level (`0` or `1`).
    ///
    /// ```
    /// use cosma_core::Bit;
    /// assert!(Bit::One.is_defined());
    /// assert!(!Bit::X.is_defined());
    /// ```
    #[must_use]
    pub fn is_defined(self) -> bool {
        matches!(self, Bit::Zero | Bit::One)
    }

    /// Converts a defined level to `bool`; `X`/`Z` yield `None`.
    #[must_use]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Bit::Zero => Some(false),
            Bit::One => Some(true),
            Bit::X | Bit::Z => None,
        }
    }

    /// Logical negation. `X` and `Z` both negate to `X` (as in `std_logic`).
    #[allow(clippy::should_implement_trait)] // also provided via `std::ops::Not`
    #[must_use]
    pub fn not(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
            Bit::X | Bit::Z => Bit::X,
        }
    }

    /// Two-driver bus resolution, following the `std_logic` resolution
    /// table restricted to our four levels: `Z` is dominated by everything,
    /// conflicting strong drivers yield `X`.
    ///
    /// ```
    /// use cosma_core::Bit;
    /// assert_eq!(Bit::Z.resolve(Bit::One), Bit::One);
    /// assert_eq!(Bit::Zero.resolve(Bit::One), Bit::X);
    /// assert_eq!(Bit::Z.resolve(Bit::Z), Bit::Z);
    /// ```
    #[must_use]
    pub fn resolve(self, other: Bit) -> Bit {
        match (self, other) {
            (Bit::Z, b) | (b, Bit::Z) => b,
            (a, b) if a == b => a,
            _ => Bit::X,
        }
    }

    /// Character representation (`'0'`, `'1'`, `'X'`, `'Z'`).
    #[must_use]
    pub fn to_char(self) -> char {
        match self {
            Bit::Zero => '0',
            Bit::One => '1',
            Bit::X => 'X',
            Bit::Z => 'Z',
        }
    }

    /// Parses a character into a bit. Accepts lower- and upper-case
    /// `x`/`z`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBitError`] for any other character.
    pub fn from_char(c: char) -> Result<Bit, ParseBitError> {
        match c {
            '0' => Ok(Bit::Zero),
            '1' => Ok(Bit::One),
            'x' | 'X' => Ok(Bit::X),
            'z' | 'Z' => Ok(Bit::Z),
            other => Err(ParseBitError(other)),
        }
    }
}

/// Error returned by [`Bit::from_char`] for characters outside `01XZxz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseBitError(pub char);

impl fmt::Display for ParseBitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid logic level character {:?}", self.0)
    }
}

impl std::error::Error for ParseBitError {}

impl From<bool> for Bit {
    fn from(b: bool) -> Self {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl std::ops::BitAnd for Bit {
    type Output = Bit;
    fn bitand(self, rhs: Bit) -> Bit {
        match (self, rhs) {
            (Bit::Zero, _) | (_, Bit::Zero) => Bit::Zero,
            (Bit::One, Bit::One) => Bit::One,
            _ => Bit::X,
        }
    }
}

impl std::ops::BitOr for Bit {
    type Output = Bit;
    fn bitor(self, rhs: Bit) -> Bit {
        match (self, rhs) {
            (Bit::One, _) | (_, Bit::One) => Bit::One,
            (Bit::Zero, Bit::Zero) => Bit::Zero,
            _ => Bit::X,
        }
    }
}

impl std::ops::BitXor for Bit {
    type Output = Bit;
    fn bitxor(self, rhs: Bit) -> Bit {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => Bit::from(a ^ b),
            _ => Bit::X,
        }
    }
}

impl std::ops::Not for Bit {
    type Output = Bit;
    fn not(self) -> Bit {
        Bit::not(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_truth_table() {
        assert_eq!(Bit::Zero & Bit::Zero, Bit::Zero);
        assert_eq!(Bit::Zero & Bit::One, Bit::Zero);
        assert_eq!(Bit::One & Bit::One, Bit::One);
        // Zero dominates unknowns.
        assert_eq!(Bit::Zero & Bit::X, Bit::Zero);
        assert_eq!(Bit::Zero & Bit::Z, Bit::Zero);
        assert_eq!(Bit::One & Bit::X, Bit::X);
        assert_eq!(Bit::X & Bit::X, Bit::X);
        assert_eq!(Bit::Z & Bit::One, Bit::X);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Bit::One | Bit::X, Bit::One);
        assert_eq!(Bit::Zero | Bit::X, Bit::X);
        assert_eq!(Bit::Zero | Bit::Zero, Bit::Zero);
        assert_eq!(Bit::One | Bit::One, Bit::One);
    }

    #[test]
    fn xor_unknown_poisons() {
        assert_eq!(Bit::One ^ Bit::One, Bit::Zero);
        assert_eq!(Bit::One ^ Bit::Zero, Bit::One);
        assert_eq!(Bit::One ^ Bit::X, Bit::X);
        assert_eq!(Bit::Z ^ Bit::Zero, Bit::X);
    }

    #[test]
    fn not_maps_unknowns_to_x() {
        assert_eq!(!Bit::Zero, Bit::One);
        assert_eq!(!Bit::One, Bit::Zero);
        assert_eq!(!Bit::X, Bit::X);
        assert_eq!(!Bit::Z, Bit::X);
    }

    #[test]
    fn resolution_is_commutative() {
        for a in Bit::ALL {
            for b in Bit::ALL {
                assert_eq!(a.resolve(b), b.resolve(a), "resolve({a}, {b})");
            }
        }
    }

    #[test]
    fn resolution_z_is_identity() {
        for a in Bit::ALL {
            assert_eq!(Bit::Z.resolve(a), a);
        }
    }

    #[test]
    fn char_round_trip() {
        for b in Bit::ALL {
            assert_eq!(Bit::from_char(b.to_char()), Ok(b));
        }
        assert!(Bit::from_char('q').is_err());
        let err = Bit::from_char('q').unwrap_err();
        assert!(err.to_string().contains('q'));
    }

    #[test]
    fn bool_conversions() {
        assert_eq!(Bit::from(true), Bit::One);
        assert_eq!(Bit::from(false), Bit::Zero);
        assert_eq!(Bit::One.to_bool(), Some(true));
        assert_eq!(Bit::Z.to_bool(), None);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Bit::default(), Bit::Zero);
    }
}
