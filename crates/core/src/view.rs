//! The multi-view mechanism: one protocol FSM, many renderings.
//!
//! The paper's Figure 3 shows the same `PUT` access procedure in three
//! views: a SW synthesis view (C over `inport`/`outport`), a SW simulation
//! view (C over the simulator's C-language interface) and a HW view
//! (VHDL). In COSMA the single source of truth is the service's protocol
//! FSM ([`crate::comm::ServiceSpec`]); views are *renderings* of that FSM,
//! so their behavioural equivalence holds by construction and the
//! co-simulation/co-synthesis **coherence** problem disappears.

use crate::comm::{CommUnitSpec, ServiceSpec};
use crate::module::Module;
use std::collections::BTreeMap;
use std::fmt;

/// Software synthesis targets — each yields a different SW synthesis view
/// of the same procedure, as in the stacked views of Figure 3a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SwTarget {
    /// Memory-mapped I/O over a PC-AT style bus: calls become
    /// `inport`/`outport` accesses to physical addresses.
    PcAtBus,
    /// Software-only platform: calls become operating-system IPC
    /// primitives (the paper's "Inter Process Communication of UNIX").
    UnixIpc,
    /// Embedded software on a micro-coded controller: calls become
    /// micro-code routine invocations.
    Microcode,
}

impl SwTarget {
    /// All supported targets.
    pub const ALL: [SwTarget; 3] = [SwTarget::PcAtBus, SwTarget::UnixIpc, SwTarget::Microcode];
}

impl fmt::Display for SwTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwTarget::PcAtBus => write!(f, "pc-at-bus"),
            SwTarget::UnixIpc => write!(f, "unix-ipc"),
            SwTarget::Microcode => write!(f, "microcode"),
        }
    }
}

/// A view of a communication procedure or module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum View {
    /// Hardware view: VHDL, used both for co-simulation and hardware
    /// synthesis.
    Hw,
    /// Software simulation view: C over the VHDL simulator's C-language
    /// interface (`cliGetPortValue` / `cliOutput`).
    SwSim,
    /// Software synthesis view for a concrete target architecture.
    SwSynth(SwTarget),
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            View::Hw => write!(f, "hw"),
            View::SwSim => write!(f, "sw-sim"),
            View::SwSynth(t) => write!(f, "sw-synth({t})"),
        }
    }
}

/// All rendered views of one access procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceViews {
    /// VHDL procedure text (Fig. 3c).
    pub hw_vhdl: String,
    /// C simulation-view text (Fig. 3b).
    pub sw_sim: String,
    /// C synthesis-view text per target (Fig. 3a's stack).
    pub sw_synth: BTreeMap<SwTarget, String>,
}

impl ServiceViews {
    /// Fetches the text of a given view, if rendered.
    #[must_use]
    pub fn view(&self, v: View) -> Option<&str> {
        match v {
            View::Hw => Some(&self.hw_vhdl),
            View::SwSim => Some(&self.sw_sim),
            View::SwSynth(t) => self.sw_synth.get(&t).map(String::as_str),
        }
    }
}

/// Renders every view of a service: one VHDL view, one SW simulation view
/// and one SW synthesis view per requested target.
///
/// # Examples
///
/// ```
/// use cosma_core::view::{render_service_views, SwTarget, View};
/// # use cosma_core::comm::{CommUnitBuilder, ServiceSpecBuilder, SERVICE_DONE_VAR};
/// # use cosma_core::{Expr, Stmt, Type, Value, Bit};
/// # let mut u = CommUnitBuilder::new("link");
/// # let w = u.wire("FLAG", Type::Bit, Value::Bit(Bit::Zero));
/// # let mut s = ServiceSpecBuilder::new("ping");
/// # let st = s.state("GO");
/// # s.actions(st, vec![Stmt::drive(w, Expr::bit(Bit::One)),
/// #                    Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true))]);
/// # s.transition(st, None, st);
/// # s.initial(st);
/// # u.service(s.build()?);
/// # let unit = u.build()?;
/// let views = render_service_views(&unit, unit.service("ping").unwrap(),
///                                  &[SwTarget::PcAtBus]);
/// assert!(views.sw_sim.contains("cliOutput"));
/// assert!(views.sw_synth[&SwTarget::PcAtBus].contains("outport"));
/// assert!(views.hw_vhdl.contains("procedure PING"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn render_service_views(
    unit: &CommUnitSpec,
    svc: &ServiceSpec,
    targets: &[SwTarget],
) -> ServiceViews {
    let hw_vhdl = crate::render::vhdl::render_service(unit, svc);
    let sw_sim = crate::render::c::render_service(unit, svc, View::SwSim);
    let sw_synth = targets
        .iter()
        .map(|&t| {
            (
                t,
                crate::render::c::render_service(unit, svc, View::SwSynth(t)),
            )
        })
        .collect();
    ServiceViews {
        hw_vhdl,
        sw_sim,
        sw_synth,
    }
}

/// Renders a module in the view appropriate for its kind: VHDL for
/// hardware modules, C for software modules (simulation or synthesis
/// flavour depending on `view`).
#[must_use]
pub fn render_module(module: &Module, view: View) -> String {
    match view {
        View::Hw => crate::render::vhdl::render_module(module),
        View::SwSim | View::SwSynth(_) => crate::render::c::render_module(module, view),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(View::Hw.to_string(), "hw");
        assert_eq!(View::SwSim.to_string(), "sw-sim");
        assert_eq!(
            View::SwSynth(SwTarget::PcAtBus).to_string(),
            "sw-synth(pc-at-bus)"
        );
        assert_eq!(SwTarget::UnixIpc.to_string(), "unix-ipc");
    }

    #[test]
    fn all_targets_enumerated() {
        assert_eq!(SwTarget::ALL.len(), 3);
    }
}
