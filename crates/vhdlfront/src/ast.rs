//! Abstract syntax tree for the VHDL subset.

/// A VHDL type mark in the subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VType {
    /// `std_logic` (also accepts `bit`).
    StdLogic,
    /// `integer`.
    Integer,
    /// `boolean`.
    Boolean,
    /// An enumeration type declared in the architecture.
    Named(String),
}

/// A VHDL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum VExpr {
    /// Integer literal.
    Int(i64),
    /// Character literal (`'0'`, `'1'`, `'X'`, `'Z'`).
    Char(char),
    /// `true`/`false`.
    Bool(bool),
    /// Identifier (signal, variable, enum literal, or `<SVC>_DONE` /
    /// `<SVC>_RESULT` service accessors).
    Ident(String),
    /// Unary op: `not`, `-`.
    Unary(&'static str, Box<VExpr>),
    /// Binary op.
    Binary(&'static str, Box<VExpr>, Box<VExpr>),
}

/// A sequential statement.
#[derive(Debug, Clone, PartialEq)]
pub enum VStmt {
    /// `target := expr;` (variable assignment).
    VarAssign(String, VExpr),
    /// `target <= expr;` (signal assignment).
    SigAssign(String, VExpr),
    /// `if .. then .. {elsif ..} [else ..] end if;`
    If {
        /// `(condition, body)` per branch, first is the `if`.
        arms: Vec<(VExpr, Vec<VStmt>)>,
        /// `else` body.
        else_body: Vec<VStmt>,
    },
    /// `case expr is when X => .. end case;`
    Case {
        /// Scrutinee (a variable name).
        scrutinee: String,
        /// `(label, body)`; label `None` = `when others`.
        arms: Vec<(Option<String>, Vec<VStmt>)>,
    },
    /// Procedure (communication service) call: `Name;` or `Name(args);`
    Call(String, Vec<VExpr>),
    /// `wait for <ident>;` / `wait;` — process activation boundary.
    Wait,
    /// `null;`
    Null,
}

/// A process inside an architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct VProcess {
    /// Label (`POSITION : process ...`), or a generated name.
    pub name: String,
    /// Declared variables: `(name, type, initializer)`.
    pub vars: Vec<(String, VType, Option<VExpr>)>,
    /// Body statements.
    pub body: Vec<VStmt>,
}

/// A port declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VPort {
    /// Port name.
    pub name: String,
    /// `in` / `out` / `inout`.
    pub dir: String,
    /// Port type.
    pub ty: VType,
}

/// An entity + architecture pair.
#[derive(Debug, Clone, PartialEq)]
pub struct VEntity {
    /// Entity name.
    pub name: String,
    /// Entity ports.
    pub ports: Vec<VPort>,
    /// Enum type declarations `(name, variants)`.
    pub enums: Vec<(String, Vec<String>)>,
    /// Architecture signals: `(name, type, initializer)`.
    pub signals: Vec<(String, VType, Option<VExpr>)>,
    /// Processes.
    pub processes: Vec<VProcess>,
}

/// A parsed design file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VDesign {
    /// Entities in declaration order.
    pub entities: Vec<VEntity>,
}

impl VDesign {
    /// Finds an entity by (case-insensitive) name.
    #[must_use]
    pub fn entity(&self, name: &str) -> Option<&VEntity> {
        let upper = name.to_uppercase();
        self.entities.iter().find(|e| e.name == upper)
    }
}
