//! # cosma-vhdl — VHDL subset front-end
//!
//! Parses the paper's VHDL module style (Figure 7: an entity whose
//! architecture holds parallel processes communicating through signals and
//! calling communication procedures) and elaborates each process into a
//! unified-IR hardware module. Architecture signals become shared *nets*
//! that the co-simulation backplane realizes as kernel signals.
//!
//! ## Example
//!
//! ```
//! use cosma_vhdl::{compile_entity, ElabOptions};
//!
//! let src = r#"
//! entity COUNTER is
//!   port ( TICK : out integer );
//! end entity;
//! architecture rtl of COUNTER is
//! begin
//!   main : process
//!     variable N : integer := 0;
//!   begin
//!     N := N + 1;
//!     TICK <= N;
//!     wait for CYCLE;
//!   end process;
//! end architecture;
//! "#;
//! let hw = compile_entity(src, "COUNTER", &ElabOptions::default())?;
//! assert_eq!(hw.modules.len(), 1);
//! assert_eq!(hw.nets.len(), 1);
//! # Ok::<(), cosma_vhdl::ElabError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod elab;
mod lexer;
mod parser;

pub use elab::{
    compile_entity, elaborate_entity, ElabError, ElabOptions, HwEntity, NetSpec, ServiceBinding,
};
pub use lexer::{lex, LexError, Spanned, Tok};
pub use parser::{parse, ParseError};

#[cfg(test)]
mod tests {
    use super::*;
    use cosma_core::{FsmExec, MapEnv, ModuleKind, PortDir, Type, Value};

    /// A Figure-7-flavoured Speed Control entity: three parallel units
    /// (Position, Core, Timer) over shared signals, calling the
    /// Control_Interface and Motor_Interface communication procedures.
    const SPEED_CONTROL: &str = r#"
entity SPEED_CONTROL is
  port (
    PULSE : out std_logic
  );
end entity;

architecture fsm of SPEED_CONTROL is
  type POS_STATES is (SETUP, WAITPOS, SERVE);
  signal RESIDUAL : integer := 0;
  signal TARGET   : integer := 0;
begin
  POSITION : process
    variable NEXT_STATE : POS_STATES := SETUP;
    variable P : integer := 0;
  begin
    case NEXT_STATE is
      when SETUP =>
        ReadMotorConstraints;
        if READMOTORCONSTRAINTS_DONE then
          NEXT_STATE := WAITPOS;
        end if;
      when WAITPOS =>
        ReadMotorPosition;
        if READMOTORPOSITION_DONE then
          P := READMOTORPOSITION_RESULT;
          TARGET <= P;
          NEXT_STATE := SERVE;
        end if;
      when SERVE =>
        ReturnMotorState(RESIDUAL);
        if RETURNMOTORSTATE_DONE then
          NEXT_STATE := WAITPOS;
        end if;
      when others =>
        NEXT_STATE := SETUP;
    end case;
    wait for CYCLE;
  end process;

  CORE : process
    variable DIR : integer := 0;
  begin
    ReadSampledData;
    if READSAMPLEDDATA_DONE then
      DIR := READSAMPLEDDATA_RESULT;
      RESIDUAL <= TARGET - DIR;
    end if;
    wait for CYCLE;
  end process;

  TIMER : process
  begin
    if RESIDUAL > 0 then
      SendMotorPulses(1);
      PULSE <= '1';
    else
      PULSE <= '0';
    end if;
    wait for CYCLE;
  end process;
end architecture;
"#;

    fn opts() -> ElabOptions {
        ElabOptions {
            bindings: vec![
                ServiceBinding::new(
                    "Control_Interface",
                    "swhw_link",
                    &[
                        "READMOTORCONSTRAINTS",
                        "READMOTORPOSITION",
                        "RETURNMOTORSTATE",
                    ],
                ),
                ServiceBinding::new(
                    "Motor_Interface",
                    "hwhw_link",
                    &["READSAMPLEDDATA", "SENDMOTORPULSES"],
                ),
            ],
        }
    }

    #[test]
    fn three_parallel_units_elaborate() {
        let hw = compile_entity(SPEED_CONTROL, "SPEED_CONTROL", &opts()).unwrap();
        assert_eq!(hw.modules.len(), 3);
        assert_eq!(hw.nets.len(), 3); // PULSE, RESIDUAL, TARGET
        let names: Vec<_> = hw.modules.iter().map(|m| m.name().to_string()).collect();
        assert!(names.contains(&"speed_control_position".to_string()));
        assert!(names.contains(&"speed_control_core".to_string()));
        assert!(names.contains(&"speed_control_timer".to_string()));
        for m in &hw.modules {
            assert_eq!(m.kind(), ModuleKind::Hardware);
            assert_eq!(m.ports().len(), 3, "all modules see all nets");
        }
    }

    #[test]
    fn fsm_process_gets_states() {
        let hw = compile_entity(SPEED_CONTROL, "SPEED_CONTROL", &opts()).unwrap();
        let pos = hw
            .modules
            .iter()
            .find(|m| m.name().ends_with("position"))
            .unwrap();
        assert_eq!(pos.fsm().state_count(), 3);
        assert!(pos.fsm().find_state("SETUP").is_some());
        assert_eq!(pos.fsm().state(pos.fsm().initial()).name(), "SETUP");
    }

    #[test]
    fn straightline_process_gets_single_state() {
        let hw = compile_entity(SPEED_CONTROL, "SPEED_CONTROL", &opts()).unwrap();
        let core = hw
            .modules
            .iter()
            .find(|m| m.name().ends_with("core"))
            .unwrap();
        assert_eq!(core.fsm().state_count(), 1);
        assert_eq!(core.fsm().transition_count(), 1);
    }

    #[test]
    fn signal_directions_per_usage() {
        let hw = compile_entity(SPEED_CONTROL, "SPEED_CONTROL", &opts()).unwrap();
        let timer = hw
            .modules
            .iter()
            .find(|m| m.name().ends_with("timer"))
            .unwrap();
        // TIMER writes PULSE (entity out) and reads RESIDUAL.
        let pulse = timer.port_id("PULSE").unwrap();
        assert_eq!(timer.port(pulse).dir(), PortDir::Out);
        let residual = timer.port_id("RESIDUAL").unwrap();
        assert_eq!(timer.port(residual).dir(), PortDir::In);
        // CORE writes RESIDUAL.
        let core = hw
            .modules
            .iter()
            .find(|m| m.name().ends_with("core"))
            .unwrap();
        let residual = core.port_id("RESIDUAL").unwrap();
        assert_eq!(core.port(residual).dir(), PortDir::Out);
    }

    #[test]
    fn net_index_lookup() {
        let hw = compile_entity(SPEED_CONTROL, "SPEED_CONTROL", &opts()).unwrap();
        assert_eq!(hw.net_index("pulse"), Some(0));
        assert_eq!(hw.net_index("RESIDUAL"), Some(1));
        assert_eq!(hw.net_index("NOPE"), None);
    }

    #[test]
    fn timer_executes_against_env() {
        // The TIMER process (single state) should drive PULSE from
        // RESIDUAL without touching services when RESIDUAL <= 0.
        let hw = compile_entity(SPEED_CONTROL, "SPEED_CONTROL", &opts()).unwrap();
        let timer = hw
            .modules
            .iter()
            .find(|m| m.name().ends_with("timer"))
            .unwrap();
        let mut env = MapEnv::new();
        for p in timer.ports() {
            env.add_port(p.ty().clone(), p.ty().default_value());
        }
        for v in timer.vars() {
            env.add_var(v.ty().clone(), v.init().clone());
        }
        let mut exec = FsmExec::new(timer.fsm());
        exec.step(timer.fsm(), &mut env).unwrap();
        let pulse = timer.port_id("PULSE").unwrap();
        assert_eq!(env.port(pulse), &Value::Bit(cosma_core::Bit::Zero));
        // Raise RESIDUAL; service call will fail in MapEnv, which proves
        // the guard actually took the then-branch.
        let residual = timer.port_id("RESIDUAL").unwrap();
        env.set_port(residual, Value::Int(5));
        let err = exec.step(timer.fsm(), &mut env).unwrap_err();
        assert!(err.to_string().contains("SENDMOTORPULSES"), "{err}");
    }

    #[test]
    fn unknown_service_reported() {
        let src = r#"
entity E is end entity;
architecture a of E is
begin
  process
  begin
    Mystery;
    wait;
  end process;
end architecture;
"#;
        let e = compile_entity(src, "E", &ElabOptions::default()).unwrap_err();
        assert!(e.to_string().contains("MYSTERY"), "{e}");
    }

    #[test]
    fn unknown_entity_reported() {
        let e =
            compile_entity("entity E is end entity;", "F", &ElabOptions::default()).unwrap_err();
        assert!(e.to_string().contains('F'), "{e}");
    }

    #[test]
    fn bad_case_scrutinee_reported() {
        let src = r#"
entity E is end entity;
architecture a of E is
begin
  process
    variable X : integer := 0;
  begin
    case X is
      when FOO => X := 1;
    end case;
    wait;
  end process;
end architecture;
"#;
        let e = compile_entity(src, "E", &ElabOptions::default()).unwrap_err();
        assert!(e.to_string().contains("enum-typed"), "{e}");
    }

    #[test]
    fn signal_init_respected() {
        let src = r#"
entity E is end entity;
architecture a of E is
  signal S : integer := 42;
begin
  process
  begin
    wait;
  end process;
end architecture;
"#;
        let hw = compile_entity(src, "E", &ElabOptions::default()).unwrap();
        assert_eq!(hw.nets[0].init, Value::Int(42));
        assert_eq!(hw.nets[0].ty, Type::INT16);
    }
}
