//! Elaboration: VHDL subset AST → unified IR.
//!
//! Each process of an architecture becomes one IR [`Module`] (hardware
//! kind). Architecture signals become *nets* shared by the processes: the
//! co-simulation backplane allocates one kernel signal per net and binds
//! every process module's like-named port to it — exactly VHDL's
//! signal semantics under our one-activation-per-cycle execution.
//!
//! A process whose body is a `case` over an enum variable elaborates with
//! the same state-variable translation as the C front-end; other processes
//! become single-state FSMs whose statements run every activation.

use crate::ast::{VDesign, VEntity, VExpr, VProcess, VStmt, VType};
use cosma_core::ids::{BindingId, VarId};
use cosma_core::{
    Bit, EnumType, EnumValue, Expr, Module, ModuleBuilder, ModuleKind, PortDir, ServiceCall, Stmt,
    Type, Value,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Declares that a set of service names is reachable through a named
/// interface binding of a given unit type (VHDL side — e.g. the paper's
/// `Motor_Interface`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceBinding {
    /// Binding name.
    pub binding: String,
    /// Expected unit type.
    pub unit_type: String,
    /// Service names (matched case-insensitively against VHDL calls).
    pub services: Vec<String>,
}

impl ServiceBinding {
    /// Convenience constructor.
    #[must_use]
    pub fn new(binding: &str, unit_type: &str, services: &[&str]) -> Self {
        ServiceBinding {
            binding: binding.to_string(),
            unit_type: unit_type.to_string(),
            services: services.iter().map(|s| (*s).to_string()).collect(),
        }
    }
}

/// Elaboration options.
#[derive(Debug, Clone, Default)]
pub struct ElabOptions {
    /// Interface bindings available to every process of the entity.
    pub bindings: Vec<ServiceBinding>,
}

/// Elaboration error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabError {
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ElabError {}

fn err<T>(message: impl Into<String>) -> Result<T, ElabError> {
    Err(ElabError {
        message: message.into(),
    })
}

/// A net of the elaborated entity: an architecture signal or entity port,
/// to be realized as one kernel signal shared by the process modules.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSpec {
    /// Net name (upper case, as in the source).
    pub name: String,
    /// IR type.
    pub ty: Type,
    /// Initial value.
    pub init: Value,
    /// Direction at the entity boundary (`None` for internal signals).
    pub dir: Option<PortDir>,
}

/// An elaborated entity: one module per process plus the shared nets.
#[derive(Debug, Clone)]
pub struct HwEntity {
    /// Entity name (upper case).
    pub name: String,
    /// All nets: entity ports first, then architecture signals.
    pub nets: Vec<NetSpec>,
    /// One hardware module per process. Every module's port table lists
    /// all nets in the same order, so like-named ports share net indexes.
    pub modules: Vec<Module>,
}

impl HwEntity {
    /// Finds a net index by name.
    #[must_use]
    pub fn net_index(&self, name: &str) -> Option<usize> {
        let upper = name.to_uppercase();
        self.nets.iter().position(|n| n.name == upper)
    }
}

fn vtype_to_ir(ty: &VType, enums: &HashMap<String, Arc<EnumType>>) -> Result<Type, ElabError> {
    Ok(match ty {
        VType::StdLogic => Type::Bit,
        VType::Integer => Type::INT16,
        VType::Boolean => Type::Bool,
        VType::Named(n) => match enums.get(n) {
            Some(e) => Type::Enum(e.clone()),
            None => return err(format!("unknown type {n}")),
        },
    })
}

fn const_value(
    e: &VExpr,
    enums: &HashMap<String, (Arc<EnumType>, u32)>,
) -> Result<Value, ElabError> {
    Ok(match e {
        VExpr::Int(i) => Value::Int(*i),
        VExpr::Bool(b) => Value::Bool(*b),
        VExpr::Char(c) => Value::Bit(Bit::from_char(*c).map_err(|e| ElabError {
            message: e.to_string(),
        })?),
        VExpr::Ident(name) => match enums.get(name) {
            Some((ty, idx)) => {
                Value::Enum(EnumValue::from_index(ty.clone(), *idx).expect("index from same table"))
            }
            None => return err(format!("initializer {name} is not a constant")),
        },
        VExpr::Unary("-", inner) => match const_value(inner, enums)? {
            Value::Int(i) => Value::Int(-i),
            other => return err(format!("cannot negate {other}")),
        },
        other => return err(format!("unsupported constant initializer {other:?}")),
    })
}

struct ProcElab<'a> {
    vars: HashMap<String, VarId>,
    ports: HashMap<String, cosma_core::ids::PortId>,
    variants: &'a HashMap<String, (Arc<EnumType>, u32)>,
    services: HashMap<String, (BindingId, VarId, VarId)>,
}

impl ProcElab<'_> {
    fn lower_expr(&self, e: &VExpr) -> Result<Expr, ElabError> {
        Ok(match e {
            VExpr::Int(i) => Expr::int(*i),
            VExpr::Bool(b) => Expr::bool(*b),
            VExpr::Char(c) => Expr::bit(Bit::from_char(*c).map_err(|e| ElabError {
                message: e.to_string(),
            })?),
            VExpr::Ident(name) => {
                if let Some(&v) = self.vars.get(name) {
                    Expr::var(v)
                } else if let Some(&p) = self.ports.get(name) {
                    Expr::port(p)
                } else if let Some((ty, idx)) = self.variants.get(name) {
                    Expr::Const(Value::Enum(
                        EnumValue::from_index(ty.clone(), *idx).expect("same table"),
                    ))
                } else if let Some(rest) = name.strip_suffix("_DONE") {
                    match self.services.get(rest) {
                        Some((_, done, _)) => Expr::var(*done),
                        None => return err(format!("unknown service in {name}")),
                    }
                } else if let Some(rest) = name.strip_suffix("_RESULT") {
                    match self.services.get(rest) {
                        Some((_, _, res)) => Expr::var(*res),
                        None => return err(format!("unknown service in {name}")),
                    }
                } else {
                    return err(format!("unknown identifier {name}"));
                }
            }
            VExpr::Unary("not", inner) => self.lower_expr(inner)?.not(),
            VExpr::Unary("-", inner) => self.lower_expr(inner)?.neg(),
            VExpr::Unary(op, _) => return err(format!("unsupported unary {op}")),
            VExpr::Binary(op, a, b) => {
                let a = self.lower_expr(a)?;
                let b = self.lower_expr(b)?;
                match *op {
                    "+" => a.add(b),
                    "-" => a.sub(b),
                    "*" => a.mul(b),
                    "/" => a.div(b),
                    "mod" => Expr::Binary(cosma_core::BinOp::Rem, Box::new(a), Box::new(b)),
                    "=" => a.eq(b),
                    "/=" => a.ne(b),
                    "<" => a.lt(b),
                    "<=" => a.le(b),
                    ">" => a.gt(b),
                    ">=" => a.ge(b),
                    "and" => a.and(b),
                    "or" => a.or(b),
                    "xor" => Expr::Binary(cosma_core::BinOp::Xor, Box::new(a), Box::new(b)),
                    other => return err(format!("unsupported operator {other}")),
                }
            }
        })
    }

    fn lower_stmts(
        &self,
        stmts: &[VStmt],
        state_var: Option<&str>,
        targets: &mut Vec<String>,
        out: &mut Vec<Stmt>,
    ) -> Result<(), ElabError> {
        for s in stmts {
            match s {
                VStmt::Null | VStmt::Wait => {}
                VStmt::VarAssign(name, rhs) => {
                    if Some(name.as_str()) == state_var {
                        if let VExpr::Ident(variant) = rhs {
                            if !targets.contains(variant) {
                                targets.push(variant.clone());
                            }
                        } else {
                            return err("state variable must be assigned a state name");
                        }
                    }
                    let Some(&v) = self.vars.get(name) else {
                        return err(format!("assignment to undeclared variable {name}"));
                    };
                    let e = self.lower_expr(rhs)?;
                    out.push(Stmt::assign(v, e));
                }
                VStmt::SigAssign(name, rhs) => {
                    let Some(&p) = self.ports.get(name) else {
                        return err(format!("signal assignment to unknown signal {name}"));
                    };
                    let e = self.lower_expr(rhs)?;
                    out.push(Stmt::drive(p, e));
                }
                VStmt::If { arms, else_body } => {
                    // Build nested if/else from the elsif chain.
                    let mut lowered_else = vec![];
                    self.lower_stmts(else_body, state_var, targets, &mut lowered_else)?;
                    let mut acc = lowered_else;
                    for (cond, body) in arms.iter().rev() {
                        let c = self.lower_expr(cond)?;
                        let mut b = vec![];
                        self.lower_stmts(body, state_var, targets, &mut b)?;
                        acc = vec![Stmt::if_else(c, b, acc)];
                    }
                    out.append(&mut acc);
                }
                VStmt::Call(name, args) => {
                    let Some((binding, done, res)) = self.services.get(name).copied() else {
                        return err(format!(
                            "call to unknown service {name} (bindings offer: {})",
                            self.services.keys().cloned().collect::<Vec<_>>().join(", ")
                        ));
                    };
                    let mut ir_args = Vec::with_capacity(args.len());
                    for a in args {
                        ir_args.push(self.lower_expr(a)?);
                    }
                    out.push(Stmt::Call(ServiceCall {
                        binding,
                        service: name.as_str().into(),
                        args: ir_args,
                        done: Some(done),
                        result: Some(res),
                    }));
                }
                VStmt::Case { .. } => {
                    return err("nested case statements are not supported");
                }
            }
        }
        Ok(())
    }
}

/// Elaborates one entity (all its processes) into IR modules + nets.
///
/// # Errors
///
/// Returns [`ElabError`] when the source uses features outside the subset
/// or references unknown identifiers/services.
pub fn elaborate_entity(entity: &VEntity, opts: &ElabOptions) -> Result<HwEntity, ElabError> {
    // Enum tables.
    let mut enums: HashMap<String, Arc<EnumType>> = HashMap::new();
    let mut variants: HashMap<String, (Arc<EnumType>, u32)> = HashMap::new();
    for (name, vs) in &entity.enums {
        let ty = EnumType::new(name.clone(), vs.clone());
        for (i, v) in vs.iter().enumerate() {
            variants.insert(v.clone(), (ty.clone(), i as u32));
        }
        enums.insert(name.clone(), ty);
    }

    // Nets: entity ports then architecture signals.
    let mut nets = vec![];
    for p in &entity.ports {
        let ty = vtype_to_ir(&p.ty, &enums)?;
        let dir = match p.dir.as_str() {
            "IN" => PortDir::In,
            "OUT" => PortDir::Out,
            _ => PortDir::InOut,
        };
        nets.push(NetSpec {
            name: p.name.clone(),
            init: ty.default_value(),
            ty,
            dir: Some(dir),
        });
    }
    for (name, ty, init) in &entity.signals {
        let ty = vtype_to_ir(ty, &enums)?;
        let init = match init {
            Some(e) => const_value(e, &variants)?,
            None => ty.default_value(),
        };
        if !ty.admits(&init) {
            return err(format!("initializer for signal {name} has the wrong type"));
        }
        nets.push(NetSpec {
            name: name.clone(),
            ty,
            init,
            dir: None,
        });
    }

    let mut modules = vec![];
    for proc in &entity.processes {
        modules.push(elaborate_process(
            entity, proc, &nets, &enums, &variants, opts,
        )?);
    }
    Ok(HwEntity {
        name: entity.name.clone(),
        nets,
        modules,
    })
}

fn elaborate_process(
    entity: &VEntity,
    proc: &VProcess,
    nets: &[NetSpec],
    enums: &HashMap<String, Arc<EnumType>>,
    variants: &HashMap<String, (Arc<EnumType>, u32)>,
    opts: &ElabOptions,
) -> Result<Module, ElabError> {
    let mut builder = ModuleBuilder::new(
        format!("{}_{}", entity.name, proc.name).to_lowercase(),
        ModuleKind::Hardware,
    );

    // Which nets does this process write?
    let mut written: Vec<String> = vec![];
    collect_sig_writes(&proc.body, &mut written);

    // Ports: all nets, direction per usage (entity-port direction is kept
    // unless the process writes an internal signal).
    let mut ports = HashMap::new();
    for n in nets {
        let dir = match n.dir {
            Some(d) => d,
            None => {
                if written.contains(&n.name) {
                    PortDir::Out
                } else {
                    PortDir::In
                }
            }
        };
        let id = builder.port(n.name.clone(), dir, n.ty.clone());
        ports.insert(n.name.clone(), id);
    }

    // Bindings + hidden service variables.
    let mut services = HashMap::new();
    for sb in &opts.bindings {
        let bid = builder.binding(sb.binding.clone(), sb.unit_type.clone());
        for svc in &sb.services {
            let upper = svc.to_uppercase();
            let done = builder.var(format!("__done_{upper}"), Type::Bool, Value::Bool(false));
            let res = builder.var(format!("__res_{upper}"), Type::INT16, Value::Int(0));
            services.insert(upper, (bid, done, res));
        }
    }

    // Process variables.
    let mut vars = HashMap::new();
    let mut state_candidate: Option<(String, Arc<EnumType>, usize)> = None;
    for (name, ty, init) in &proc.vars {
        let ir_ty = vtype_to_ir(ty, enums)?;
        let init_v = match init {
            Some(e) => const_value(e, variants)?,
            None => ir_ty.default_value(),
        };
        if !ir_ty.admits(&init_v) {
            return err(format!(
                "initializer for variable {name} has the wrong type"
            ));
        }
        if let (Type::Enum(e), Value::Enum(ev)) = (&ir_ty, &init_v) {
            state_candidate = Some((name.clone(), e.clone(), ev.index() as usize));
        }
        let id = builder.var(name.clone(), ir_ty, init_v);
        vars.insert(name.clone(), id);
    }

    let elab = ProcElab {
        vars,
        ports,
        variants,
        services,
    };

    // Find a case over an enum variable.
    let mut prologue: Vec<&VStmt> = vec![];
    let mut epilogue: Vec<&VStmt> = vec![];
    type CaseArms = [(Option<String>, Vec<VStmt>)];
    let mut the_case: Option<(&String, &CaseArms)> = None;
    for s in &proc.body {
        match s {
            VStmt::Case { scrutinee, arms } => {
                if the_case.is_some() {
                    return err("process must contain at most one top-level case");
                }
                the_case = Some((scrutinee, arms));
            }
            VStmt::Wait => {}
            other => {
                if the_case.is_none() {
                    prologue.push(other);
                } else {
                    epilogue.push(other);
                }
            }
        }
    }

    if let Some((scrutinee, arms)) = the_case {
        let Some((sv_name, state_enum, init_idx)) = state_candidate
            .filter(|(n, _, _)| n == scrutinee)
            .or_else(|| {
                // The state variable may not be the last enum declared;
                // find it by name.
                proc.vars.iter().find_map(|(n, ty, init)| {
                    if n != scrutinee {
                        return None;
                    }
                    let VType::Named(tn) = ty else { return None };
                    let e = enums.get(tn)?;
                    let idx = match init {
                        Some(VExpr::Ident(v)) => e.index_of(v)? as usize,
                        _ => 0,
                    };
                    Some((n.clone(), e.clone(), idx))
                })
            })
        else {
            return err(format!(
                "case scrutinee {scrutinee} must be an enum-typed variable"
            ));
        };
        let state_var_id = elab.vars[&sv_name];
        let mut arm_map: HashMap<&str, &Vec<VStmt>> = HashMap::new();
        let mut default_arm: Option<&Vec<VStmt>> = None;
        for (label, body) in arms {
            match label {
                Some(l) => {
                    if state_enum.index_of(l).is_none() {
                        return err(format!(
                            "case label {l} is not a variant of {}",
                            state_enum.name()
                        ));
                    }
                    arm_map.insert(l.as_str(), body);
                }
                None => default_arm = Some(body),
            }
        }
        let state_ids: Vec<_> = state_enum
            .variants()
            .iter()
            .map(|v| builder.state(v.clone()))
            .collect();
        for (vi, vname) in state_enum.variants().iter().enumerate() {
            let sid = state_ids[vi];
            let body: &[VStmt] = match arm_map.get(vname.as_str()) {
                Some(b) => b,
                None => default_arm.map(|b| &b[..]).unwrap_or(&[]),
            };
            let mut actions = vec![];
            let mut targets = vec![];
            for p in &prologue {
                elab.lower_stmts(
                    std::slice::from_ref(*p),
                    Some(&sv_name),
                    &mut targets,
                    &mut actions,
                )?;
            }
            elab.lower_stmts(body, Some(&sv_name), &mut targets, &mut actions)?;
            for e in &epilogue {
                elab.lower_stmts(
                    std::slice::from_ref(*e),
                    Some(&sv_name),
                    &mut targets,
                    &mut actions,
                )?;
            }
            builder.actions(sid, actions);
            for target in targets {
                let Some(tidx) = state_enum.index_of(&target) else {
                    return err(format!("state target {target} is not a variant"));
                };
                let guard = Expr::var(state_var_id).eq(Expr::Const(Value::Enum(
                    EnumValue::from_index(state_enum.clone(), tidx).expect("valid"),
                )));
                builder.transition(sid, Some(guard), state_ids[tidx as usize]);
            }
        }
        builder.initial(state_ids[init_idx]);
    } else {
        // Straight-line process: one state, all statements every cycle.
        let sid = builder.state("BODY");
        let mut actions = vec![];
        let mut targets = vec![];
        elab.lower_stmts(&proc.body, None, &mut targets, &mut actions)?;
        builder.actions(sid, actions);
        builder.transition(sid, None, sid);
        builder.initial(sid);
    }
    builder.build().map_err(|e| ElabError {
        message: e.to_string(),
    })
}

fn collect_sig_writes(stmts: &[VStmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            VStmt::SigAssign(name, _) if !out.contains(name) => {
                out.push(name.clone());
            }
            VStmt::SigAssign(_, _) => {}
            VStmt::If { arms, else_body } => {
                for (_, b) in arms {
                    collect_sig_writes(b, out);
                }
                collect_sig_writes(else_body, out);
            }
            VStmt::Case { arms, .. } => {
                for (_, b) in arms {
                    collect_sig_writes(b, out);
                }
            }
            _ => {}
        }
    }
}

/// Parses and elaborates a single-entity design in one step.
///
/// # Errors
///
/// Propagates parse errors (as [`ElabError`]) and elaboration errors.
pub fn compile_entity(src: &str, entity: &str, opts: &ElabOptions) -> Result<HwEntity, ElabError> {
    let design: VDesign = crate::parser::parse(src).map_err(|e| ElabError {
        message: e.to_string(),
    })?;
    let Some(e) = design.entity(entity) else {
        return err(format!("no entity named {entity}"));
    };
    elaborate_entity(e, opts)
}
