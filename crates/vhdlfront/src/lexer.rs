//! Tokenizer for the VHDL subset. VHDL is case-insensitive; identifiers
//! are normalized to upper case.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword, upper-cased.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Character literal `'0'`, `'1'`, `'X'`, `'Z'`.
    Char(char),
    /// Punctuation/operator, e.g. `"<="`, `":="`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Char(c) => write!(f, "'{c}'"),
            Tok::Punct(p) => write!(f, "{p}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line.
    pub line: usize,
    /// Offending character.
    pub ch: char,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: unexpected character {:?}", self.line, self.ch)
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    "<=", ">=", ":=", "/=", "=>", "=", "<", ">", "(", ")", ";", ":", ",", "+", "-", "*", "/", "'",
    ".",
];

/// Tokenizes VHDL-subset source. `--` comments are skipped.
///
/// # Errors
///
/// Returns [`LexError`] on characters outside the subset.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = vec![];
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '-' && i + 1 < chars.len() && chars[i + 1] == '-' {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect::<String>().to_uppercase();
            out.push(Spanned {
                tok: Tok::Ident(word),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let v = text.parse().map_err(|_| LexError { line, ch: c })?;
            out.push(Spanned {
                tok: Tok::Int(v),
                line,
            });
            continue;
        }
        if c == '\'' && i + 2 < chars.len() && chars[i + 2] == '\'' {
            out.push(Spanned {
                tok: Tok::Char(chars[i + 1].to_ascii_uppercase()),
                line,
            });
            i += 3;
            continue;
        }
        let mut matched = false;
        for p in PUNCTS {
            let pc: Vec<char> = p.chars().collect();
            if chars[i..].starts_with(&pc) {
                out.push(Spanned {
                    tok: Tok::Punct(p),
                    line,
                });
                i += pc.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(LexError { line, ch: c });
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn identifiers_uppercased() {
        assert_eq!(
            toks("entity Speed_Control is"),
            vec![
                Tok::Ident("ENTITY".into()),
                Tok::Ident("SPEED_CONTROL".into()),
                Tok::Ident("IS".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn signal_assign_vs_le() {
        assert_eq!(
            toks("a <= b; c := 1;"),
            vec![
                Tok::Ident("A".into()),
                Tok::Punct("<="),
                Tok::Ident("B".into()),
                Tok::Punct(";"),
                Tok::Ident("C".into()),
                Tok::Punct(":="),
                Tok::Int(1),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn char_literals() {
        assert_eq!(
            toks("'1' 'z'"),
            vec![Tok::Char('1'), Tok::Char('Z'), Tok::Eof]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a -- comment\nb"),
            vec![Tok::Ident("A".into()), Tok::Ident("B".into()), Tok::Eof]
        );
    }

    #[test]
    fn ne_operator() {
        assert_eq!(
            toks("a /= b"),
            vec![
                Tok::Ident("A".into()),
                Tok::Punct("/="),
                Tok::Ident("B".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn arrow_in_case() {
        assert_eq!(
            toks("when INIT =>"),
            vec![
                Tok::Ident("WHEN".into()),
                Tok::Ident("INIT".into()),
                Tok::Punct("=>"),
                Tok::Eof
            ]
        );
    }
}
