//! Recursive-descent parser for the VHDL subset.

use crate::ast::{VDesign, VEntity, VExpr, VPort, VProcess, VStmt, VType};
use crate::lexer::{lex, LexError, Spanned, Tok};
use std::fmt;

/// Parse error with 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            message: e.to_string(),
        }
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    anon_procs: u32,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        self.is_kw(kw) && {
            self.bump();
            true
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`, found {}",
                kw.to_lowercase(),
                self.peek()
            )))
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        matches!(self.peek(), Tok::Punct(q) if *q == p) && {
            self.bump();
            true
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected {p:?}, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn parse_type(&mut self) -> Result<VType, ParseError> {
        let name = self.expect_ident()?;
        Ok(match name.as_str() {
            "STD_LOGIC" | "BIT" => VType::StdLogic,
            "INTEGER" | "NATURAL" | "POSITIVE" => VType::Integer,
            "BOOLEAN" => VType::Boolean,
            _ => VType::Named(name),
        })
    }

    fn parse_design(&mut self) -> Result<VDesign, ParseError> {
        let mut design = VDesign::default();
        while !matches!(self.peek(), Tok::Eof) {
            // Skip library/use clauses.
            if self.eat_kw("LIBRARY") || self.eat_kw("USE") {
                while !self.eat_punct(";") {
                    if matches!(self.peek(), Tok::Eof) {
                        return Err(self.err("unterminated library/use clause"));
                    }
                    self.bump();
                }
                continue;
            }
            if self.is_kw("ENTITY") {
                let (name, ports) = self.parse_entity_decl()?;
                design.entities.push(VEntity {
                    name,
                    ports,
                    enums: vec![],
                    signals: vec![],
                    processes: vec![],
                });
                continue;
            }
            if self.is_kw("ARCHITECTURE") {
                self.parse_architecture(&mut design)?;
                continue;
            }
            return Err(self.err(format!(
                "expected entity or architecture, found {}",
                self.peek()
            )));
        }
        Ok(design)
    }

    fn parse_entity_decl(&mut self) -> Result<(String, Vec<VPort>), ParseError> {
        self.expect_kw("ENTITY")?;
        let name = self.expect_ident()?;
        self.expect_kw("IS")?;
        let mut ports = vec![];
        if self.eat_kw("PORT") {
            self.expect_punct("(")?;
            loop {
                // name {, name} : dir type
                let mut names = vec![self.expect_ident()?];
                while self.eat_punct(",") {
                    names.push(self.expect_ident()?);
                }
                self.expect_punct(":")?;
                let dir = self.expect_ident()?;
                if !matches!(dir.as_str(), "IN" | "OUT" | "INOUT") {
                    return Err(self.err(format!("invalid port direction {dir}")));
                }
                let ty = self.parse_type()?;
                for n in names {
                    ports.push(VPort {
                        name: n,
                        dir: dir.clone(),
                        ty: ty.clone(),
                    });
                }
                if self.eat_punct(";") {
                    continue;
                }
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                break;
            }
        }
        self.expect_kw("END")?;
        let _ = self.eat_kw("ENTITY");
        if matches!(self.peek(), Tok::Ident(_)) {
            self.bump();
        }
        self.expect_punct(";")?;
        Ok((name, ports))
    }

    fn parse_architecture(&mut self, design: &mut VDesign) -> Result<(), ParseError> {
        self.expect_kw("ARCHITECTURE")?;
        let _arch_name = self.expect_ident()?;
        self.expect_kw("OF")?;
        let entity_name = self.expect_ident()?;
        self.expect_kw("IS")?;
        let Some(idx) = design.entities.iter().position(|e| e.name == entity_name) else {
            return Err(self.err(format!("architecture for unknown entity {entity_name}")));
        };
        // Declarative part.
        let mut enums = vec![];
        let mut signals = vec![];
        while !self.eat_kw("BEGIN") {
            if self.eat_kw("TYPE") {
                let tname = self.expect_ident()?;
                self.expect_kw("IS")?;
                self.expect_punct("(")?;
                let mut variants = vec![self.expect_ident()?];
                while self.eat_punct(",") {
                    variants.push(self.expect_ident()?);
                }
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                enums.push((tname, variants));
                continue;
            }
            if self.eat_kw("SIGNAL") {
                let mut names = vec![self.expect_ident()?];
                while self.eat_punct(",") {
                    names.push(self.expect_ident()?);
                }
                self.expect_punct(":")?;
                let ty = self.parse_type()?;
                let init = if self.eat_punct(":=") {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                self.expect_punct(";")?;
                for n in names {
                    signals.push((n, ty.clone(), init.clone()));
                }
                continue;
            }
            return Err(self.err(format!(
                "unsupported architecture declaration starting with {}",
                self.peek()
            )));
        }
        // Statement part: labelled processes.
        let mut processes = vec![];
        while !self.eat_kw("END") {
            processes.push(self.parse_process()?);
        }
        let _ = self.eat_kw("ARCHITECTURE");
        if matches!(self.peek(), Tok::Ident(_)) {
            self.bump();
        }
        self.expect_punct(";")?;
        let e = &mut design.entities[idx];
        e.enums = enums;
        e.signals = signals;
        e.processes = processes;
        Ok(())
    }

    fn parse_process(&mut self) -> Result<VProcess, ParseError> {
        // [label :] process [(sensitivity)] [is] {decls} begin {stmts} end process [label];
        let name = if matches!(self.peek(), Tok::Ident(s) if s != "PROCESS")
            && matches!(self.peek2(), Tok::Punct(":"))
        {
            let n = self.expect_ident()?;
            self.expect_punct(":")?;
            n
        } else {
            self.anon_procs += 1;
            format!("PROC{}", self.anon_procs)
        };
        self.expect_kw("PROCESS")?;
        if self.eat_punct("(") {
            // Sensitivity list ignored (activation is per cycle).
            while !self.eat_punct(")") {
                self.bump();
            }
        }
        let _ = self.eat_kw("IS");
        let mut vars = vec![];
        while !self.eat_kw("BEGIN") {
            self.expect_kw("VARIABLE")?;
            let mut names = vec![self.expect_ident()?];
            while self.eat_punct(",") {
                names.push(self.expect_ident()?);
            }
            self.expect_punct(":")?;
            let ty = self.parse_type()?;
            let init = if self.eat_punct(":=") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            for n in names {
                vars.push((n, ty.clone(), init.clone()));
            }
        }
        let body = self.parse_stmts(&["END"])?;
        self.expect_kw("END")?;
        self.expect_kw("PROCESS")?;
        if matches!(self.peek(), Tok::Ident(_)) {
            self.bump();
        }
        self.expect_punct(";")?;
        Ok(VProcess { name, vars, body })
    }

    /// Parses statements until one of the terminator keywords is next
    /// (without consuming it).
    fn parse_stmts(&mut self, terminators: &[&str]) -> Result<Vec<VStmt>, ParseError> {
        let mut out = vec![];
        loop {
            if terminators.iter().any(|t| self.is_kw(t)) {
                return Ok(out);
            }
            if matches!(self.peek(), Tok::Eof) {
                return Err(self.err("unexpected end of file in statement list"));
            }
            out.push(self.parse_stmt()?);
        }
    }

    fn parse_stmt(&mut self) -> Result<VStmt, ParseError> {
        if self.eat_kw("NULL") {
            self.expect_punct(";")?;
            return Ok(VStmt::Null);
        }
        if self.eat_kw("WAIT") {
            // wait; | wait for X; | wait on a, b; — all treated as the
            // activation boundary.
            while !self.eat_punct(";") {
                if matches!(self.peek(), Tok::Eof) {
                    return Err(self.err("unterminated wait"));
                }
                self.bump();
            }
            return Ok(VStmt::Wait);
        }
        if self.eat_kw("IF") {
            let mut arms = vec![];
            let cond = self.parse_expr()?;
            self.expect_kw("THEN")?;
            let body = self.parse_stmts(&["ELSIF", "ELSE", "END"])?;
            arms.push((cond, body));
            let mut else_body = vec![];
            loop {
                if self.eat_kw("ELSIF") {
                    let c = self.parse_expr()?;
                    self.expect_kw("THEN")?;
                    let b = self.parse_stmts(&["ELSIF", "ELSE", "END"])?;
                    arms.push((c, b));
                    continue;
                }
                if self.eat_kw("ELSE") {
                    else_body = self.parse_stmts(&["END"])?;
                }
                break;
            }
            self.expect_kw("END")?;
            self.expect_kw("IF")?;
            self.expect_punct(";")?;
            return Ok(VStmt::If { arms, else_body });
        }
        if self.eat_kw("CASE") {
            let scrutinee = self.expect_ident()?;
            self.expect_kw("IS")?;
            let mut arms = vec![];
            while self.eat_kw("WHEN") {
                let label = if self.eat_kw("OTHERS") {
                    None
                } else {
                    Some(self.expect_ident()?)
                };
                self.expect_punct("=>")?;
                let body = self.parse_stmts(&["WHEN", "END"])?;
                arms.push((label, body));
            }
            self.expect_kw("END")?;
            self.expect_kw("CASE")?;
            self.expect_punct(";")?;
            return Ok(VStmt::Case { scrutinee, arms });
        }
        // Assignment or call.
        let name = self.expect_ident()?;
        if self.eat_punct(":=") {
            let e = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(VStmt::VarAssign(name, e));
        }
        if self.eat_punct("<=") {
            let e = self.parse_expr()?;
            self.expect_punct(";")?;
            return Ok(VStmt::SigAssign(name, e));
        }
        if self.eat_punct("(") {
            let mut args = vec![];
            if !self.eat_punct(")") {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat_punct(",") {
                        self.expect_punct(")")?;
                        break;
                    }
                }
            }
            self.expect_punct(";")?;
            return Ok(VStmt::Call(name, args));
        }
        // Bare procedure call: `ReadSampledData;` (also tolerate the
        // paper's style without the semicolon before a keyword).
        let _ = self.eat_punct(";");
        Ok(VStmt::Call(name, vec![]))
    }

    fn parse_expr(&mut self) -> Result<VExpr, ParseError> {
        self.parse_binary(0)
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<VExpr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec): (&'static str, u8) = match self.peek() {
                Tok::Ident(s) if s == "OR" => ("or", 1),
                Tok::Ident(s) if s == "XOR" => ("xor", 1),
                Tok::Ident(s) if s == "AND" => ("and", 2),
                Tok::Punct("=") => ("=", 3),
                Tok::Punct("/=") => ("/=", 3),
                Tok::Punct("<") => ("<", 3),
                Tok::Punct("<=") => ("<=", 3),
                Tok::Punct(">") => (">", 3),
                Tok::Punct(">=") => (">=", 3),
                Tok::Punct("+") => ("+", 4),
                Tok::Punct("-") => ("-", 4),
                Tok::Punct("*") => ("*", 5),
                Tok::Punct("/") => ("/", 5),
                Tok::Ident(s) if s == "MOD" => ("mod", 5),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = VExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<VExpr, ParseError> {
        if self.eat_kw("NOT") {
            return Ok(VExpr::Unary("not", Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("-") {
            return Ok(VExpr::Unary("-", Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<VExpr, ParseError> {
        match self.bump() {
            Tok::Int(i) => Ok(VExpr::Int(i)),
            Tok::Char(c) => Ok(VExpr::Char(c)),
            Tok::Ident(s) if s == "TRUE" => Ok(VExpr::Bool(true)),
            Tok::Ident(s) if s == "FALSE" => Ok(VExpr::Bool(false)),
            Tok::Ident(s) => Ok(VExpr::Ident(s)),
            Tok::Punct("(") => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(ParseError {
                line: self.toks[self.pos.saturating_sub(1)].line,
                message: format!("unexpected token {other}"),
            }),
        }
    }
}

/// Parses a VHDL-subset design file.
///
/// # Errors
///
/// Returns [`ParseError`] on lexical or syntactic errors.
pub fn parse(src: &str) -> Result<VDesign, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        anon_procs: 0,
    };
    p.parse_design()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEED_CONTROL: &str = r#"
entity SPEED_CONTROL is
  port (
    CLK   : in  std_logic;
    PULSE : out std_logic
  );
end entity;

architecture fsm of SPEED_CONTROL is
  type CORE_STATES is (IDLE, COMPUTE);
  signal RESIDUAL : integer := 0;
begin
  CORE : process
    variable NEXT_STATE : CORE_STATES := IDLE;
    variable SPEED : integer := 0;
  begin
    case NEXT_STATE is
      when IDLE =>
        if RESIDUAL > 0 then
          NEXT_STATE := COMPUTE;
        end if;
      when COMPUTE =>
        SPEED := SPEED + 1;
        RESIDUAL <= RESIDUAL - 1;
        NEXT_STATE := IDLE;
      when others =>
        NEXT_STATE := IDLE;
    end case;
    wait for CYCLE;
  end process;

  TIMER : process
  begin
    SendMotorPulses;
    PULSE <= '1';
    wait for CYCLE;
  end process;
end architecture;
"#;

    #[test]
    fn full_entity_parses() {
        let d = parse(SPEED_CONTROL).unwrap();
        let e = d.entity("speed_control").expect("entity found");
        assert_eq!(e.ports.len(), 2);
        assert_eq!(e.ports[0].name, "CLK");
        assert_eq!(e.ports[0].dir, "IN");
        assert_eq!(e.enums.len(), 1);
        assert_eq!(e.signals.len(), 1);
        assert_eq!(e.processes.len(), 2);
        assert_eq!(e.processes[0].name, "CORE");
        assert_eq!(e.processes[1].name, "TIMER");
    }

    #[test]
    fn case_arms_parse() {
        let d = parse(SPEED_CONTROL).unwrap();
        let p = &d.entity("SPEED_CONTROL").unwrap().processes[0];
        match &p.body[0] {
            VStmt::Case { scrutinee, arms } => {
                assert_eq!(scrutinee, "NEXT_STATE");
                assert_eq!(arms.len(), 3);
                assert_eq!(arms[0].0.as_deref(), Some("IDLE"));
                assert_eq!(arms[2].0, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn calls_and_sig_assigns() {
        let d = parse(SPEED_CONTROL).unwrap();
        let p = &d.entity("SPEED_CONTROL").unwrap().processes[1];
        assert_eq!(p.body[0], VStmt::Call("SENDMOTORPULSES".into(), vec![]));
        assert_eq!(
            p.body[1],
            VStmt::SigAssign("PULSE".into(), VExpr::Char('1'))
        );
        assert_eq!(p.body[2], VStmt::Wait);
    }

    #[test]
    fn elsif_chain() {
        let src = r#"
entity E is end entity;
architecture a of E is
begin
  process
    variable X : integer := 0;
  begin
    if X = 0 then X := 1;
    elsif X = 1 then X := 2;
    else X := 0;
    end if;
    wait;
  end process;
end architecture;
"#;
        let d = parse(src).unwrap();
        let p = &d.entity("E").unwrap().processes[0];
        match &p.body[0] {
            VStmt::If { arms, else_body } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn library_use_skipped() {
        let src = "library IEEE;\nuse IEEE.std_logic_1164.all;\nentity E is end entity;\n";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn multiple_port_names_share_type() {
        let src = "entity E is port ( A, B : in integer; C : out std_logic ); end entity;\n";
        let d = parse(src).unwrap();
        let e = d.entity("E").unwrap();
        assert_eq!(e.ports.len(), 3);
        assert_eq!(e.ports[1].name, "B");
        assert_eq!(e.ports[1].ty, VType::Integer);
    }

    #[test]
    fn operator_precedence() {
        let src = r#"
entity E is end entity;
architecture a of E is
begin
  process
    variable X : boolean := false;
    variable A : integer := 0;
  begin
    if A + 1 * 2 = 2 and X then A := 1; end if;
    wait;
  end process;
end architecture;
"#;
        let d = parse(src).unwrap();
        let p = &d.entity("E").unwrap().processes[0];
        match &p.body[0] {
            VStmt::If { arms, .. } => match &arms[0].0 {
                VExpr::Binary("and", lhs, _) => {
                    assert!(matches!(**lhs, VExpr::Binary("=", _, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_reports_line() {
        let e = parse("entity E is port ( X : sideways integer ); end entity;\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("direction"));
    }
}
