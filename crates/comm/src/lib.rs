//! # cosma-comm — the communication-unit library
//!
//! The paper's central abstraction made concrete: communication units with
//! controllers and access procedures, in two flavours:
//!
//! * **FSM units** ([`library`](crate)) — fully described in the IR,
//!   executable over plain wires or kernel signals, renderable into every
//!   view (HW VHDL / SW simulation C / SW synthesis C per target) and
//!   synthesizable. [`handshake_unit`] *is* the paper's Figure 2/3
//!   channel.
//! * **Native units** — models of existing communication platforms (UNIX
//!   IPC mailboxes, OS FIFOs, lock-guarded shared memory) whose internals
//!   are not synthesized, only their access procedures retargeted.
//!
//! [`FsmUnitRuntime`] executes FSM units with one protocol session per
//! caller (each module links "its own copy" of the procedure, as in the
//! paper), and [`StandaloneUnit`] gives both flavours one interface.
//!
//! Every flavour is checkpointable: [`FsmUnitRuntime::capture_state`] /
//! [`BatchedLink::capture_state`] produce canonical state values
//! ([`FsmUnitState`], [`BatchedLinkState`]) that restore into any
//! identically-configured instance, and native units implement
//! [`NativeUnit::save_state`] / [`NativeUnit::load_state`] /
//! [`NativeUnit::fork_fresh`] (or opt out, failing a whole-backplane
//! restore cleanly by name). Units own only their *internal* state —
//! wire values belong to whoever hosts them (kernel signals in the
//! backplane, [`LocalWires`] standalone) and must be captured there.

#![warn(missing_docs)]

mod batch;
mod library;
mod native;
mod runtime;
mod standalone;

pub use batch::{BatchedLink, BatchedLinkState, BusTiming};
pub use library::{batched_handshake_unit, handshake_unit, register_bank_unit, shared_reg_unit};
pub use native::{
    FifoChannel, Mailbox, NativeServiceDesc, NativeUnit, NativeUnitState, SharedMemory,
};
pub use runtime::{
    CallerId, FsmUnitRuntime, FsmUnitState, LocalWires, PeekScratch, PeekedCall, ReadWires,
    ServiceStats, UnitStats, WireStore,
};
pub use standalone::StandaloneUnit;
