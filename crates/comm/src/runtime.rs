//! Runtime execution of FSM-described communication units.
//!
//! A [`FsmUnitRuntime`] holds the live state of one unit instance: the
//! controller's executor and variables, plus one *session* (protocol FSM
//! executor + locals) per calling module and service — mirroring the
//! paper's model where every module links its own copy of each access
//! procedure with its own `static NEXTSTATE`.
//!
//! Wire state is externalized behind [`WireStore`], so the same runtime
//! drives plain in-memory wires (standalone use, tests) or delta-cycle
//! kernel signals (co-simulation).

use cosma_core::comm::{CommUnitSpec, ServiceSpec, SERVICE_DONE_VAR, SERVICE_RESULT_VAR};
use cosma_core::ids::{PortId, VarId};
use cosma_core::{
    DeferredCall, Env, EvalError, FsmExec, ReadEnv, ServiceCall, ServiceOutcome, Value, Variable,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifies a calling module (or test harness) so each caller gets its
/// own protocol session per service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallerId(pub u64);

/// External wire state of a unit instance.
pub trait WireStore {
    /// Reads a wire.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown wire ids.
    fn read_wire(&self, w: PortId) -> Result<Value, EvalError>;

    /// Writes a wire. Implementations decide whether the write is
    /// immediate (standalone) or delta-delayed (kernel signals).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown wire ids.
    fn write_wire(&mut self, w: PortId, v: Value) -> Result<(), EvalError>;

    /// Schedules a wire write to take effect `cycles` clock cycles in
    /// the future, returning `Ok(true)` when the store supports timed
    /// writes and accepted the schedule, `Ok(false)` when it does not
    /// (the default) — the caller then falls back to writing the value
    /// cycle by cycle. Kernel-backed stores implement this over the
    /// simulator's timed-drive queue, which lets a burst of known shape
    /// (e.g. the payload beats of a batched bus transaction) be
    /// scheduled once at transaction start instead of re-activating the
    /// writer every cycle.
    ///
    /// Scheduled writes participate in simulator state capture exactly
    /// like any other pending drive, so checkpoints taken between
    /// scheduled beats restore and replay bit-identically.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown wire ids.
    fn write_wire_after(&mut self, w: PortId, v: Value, cycles: u64) -> Result<bool, EvalError> {
        let _ = (w, v, cycles);
        Ok(false)
    }

    /// Schedules a whole pre-computed value *train* onto a wire in one
    /// pass: `values[k]` takes effect `start_cycles + k·stride_cycles`
    /// clock cycles in the future. Returns `Ok(true)` when the store
    /// supports bulk timed writes and accepted the schedule, `Ok(false)`
    /// when it does not (the default) — the caller then falls back to
    /// [`WireStore::write_wire_after`] per beat or to cycle-by-cycle
    /// writes. Kernel-backed stores implement this over the simulator's
    /// bulk burst-insert API, which lands every beat of a batched bus
    /// transaction into the timer wheel in a single amortized-O(1)-per-
    /// beat pass.
    ///
    /// Like single scheduled writes, train beats participate in
    /// simulator state capture as ordinary pending drives, so mid-train
    /// checkpoints restore and replay bit-identically.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown wire ids.
    fn write_wire_train(
        &mut self,
        w: PortId,
        start_cycles: u64,
        stride_cycles: u64,
        values: &[Value],
    ) -> Result<bool, EvalError> {
        let _ = (w, start_cycles, stride_cycles, values);
        Ok(false)
    }
}

/// A read-only view of a unit's wires: what a *speculative* call
/// ([`FsmUnitRuntime::peek_call`]) is allowed to see. Two-phase
/// schedulers implement this over their cycle-start signal snapshot;
/// writes performed by the peeked protocol step are counted and
/// discarded (they are re-issued for real at commit time).
pub trait ReadWires {
    /// Reads a wire.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown wire ids.
    fn read_wire(&self, w: PortId) -> Result<Value, EvalError>;
}

impl ReadWires for LocalWires {
    fn read_wire(&self, w: PortId) -> Result<Value, EvalError> {
        WireStore::read_wire(self, w)
    }
}

/// WireStore adapter for peeks: reads delegate to a [`ReadWires`] view,
/// writes are captured instead of applied. Under delta-cycle semantics
/// a protocol step never observes its own writes within the activation,
/// so capturing them is exact — they are re-issued for real if the peek
/// is committed ([`FsmUnitRuntime::commit_peeked`]).
struct PeekWires<'a> {
    inner: &'a dyn ReadWires,
    writes: Vec<(PortId, Value)>,
}

impl WireStore for PeekWires<'_> {
    fn read_wire(&self, w: PortId) -> Result<Value, EvalError> {
        self.inner.read_wire(w)
    }
    fn write_wire(&mut self, w: PortId, v: Value) -> Result<(), EvalError> {
        self.writes.push((w, v));
        Ok(())
    }
}

/// Reusable buffer pools for the speculative peek path
/// ([`FsmUnitRuntime::peek_call_scratch`] /
/// [`FsmUnitRuntime::commit_peeked_reclaim`]). A two-phase scheduler
/// keeps one per worker arena: peeked session clones borrow their
/// locals vector and wire-write capture vector from the pools, and the
/// commit (or an abandoned peek, via [`PeekScratch::reclaim`]) hands
/// them back — so steady-state speculation peeks without heap
/// allocation however many calls it evaluates.
#[derive(Debug, Default)]
pub struct PeekScratch {
    /// Pooled local-variable vectors for peeked session clones.
    locals: Vec<Vec<Value>>,
    /// Pooled wire-write capture vectors for [`PeekWires`].
    writes: Vec<Vec<(PortId, Value)>>,
}

impl PeekScratch {
    fn take_locals(&mut self) -> Vec<Value> {
        self.locals.pop().unwrap_or_default()
    }

    fn take_writes(&mut self) -> Vec<(PortId, Value)> {
        self.writes.pop().unwrap_or_default()
    }

    fn put_locals(&mut self, mut v: Vec<Value>) {
        v.clear();
        self.locals.push(v);
    }

    fn put_writes(&mut self, mut v: Vec<(PortId, Value)>) {
        v.clear();
        self.writes.push(v);
    }

    /// Reclaims the buffers a no-longer-needed peek still owns (e.g. a
    /// speculative result abandoned on divergence or fallback), so the
    /// next peek reuses them instead of allocating.
    pub fn reclaim(&mut self, peeked: PeekedCall) {
        if let Some(PeekDelta::Session(delta)) = peeked.delta {
            self.put_locals(delta.post.locals);
            self.put_writes(delta.writes);
        }
    }

    /// Approximate bytes retained across the pools (capacity-based),
    /// for arena high-water accounting.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let locals: usize = self
            .locals
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<Value>())
            .sum();
        let writes: usize = self
            .writes
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<(PortId, Value)>())
            .sum();
        locals + writes
    }
}

/// The buffered effects a peek computed, kept so a validated commit can
/// *install* them instead of re-running the call.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PeekDelta {
    /// An FSM-unit protocol step ([`FsmUnitRuntime::peek_call`]).
    Session(SessionDelta),
    /// A batched-link queue operation ([`crate::BatchedLink::peek_call`]).
    Queue(crate::batch::QueueDelta),
}

/// The session effects a peek computed, kept so a validated commit can
/// *install* them instead of re-running the protocol step.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SessionDelta {
    /// Pre-step fingerprint: the peeked session's state and step count.
    /// Sessions are caller-private and step counts are monotone, so an
    /// unchanged fingerprint proves the session is exactly as peeked.
    pre_state: cosma_core::ids::StateId,
    pre_steps: u64,
    /// Post-step session (before any completion reset).
    post: Session,
    /// Wire writes the protocol step performed, in order.
    writes: Vec<(PortId, Value)>,
}

/// Result of a speculative service-call step ([`FsmUnitRuntime::peek_call`],
/// [`crate::BatchedLink::peek_call`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PeekedCall {
    /// The outcome the real call would produce against the current
    /// committed unit state.
    pub outcome: ServiceOutcome,
    /// Whether the call would be a provable no-op (pending outcome,
    /// nothing written) — the caller-parking signal, mirroring
    /// [`FsmUnitRuntime::last_call_stable`].
    pub stable: bool,
    /// Buffered call effects — a session delta for FSM-unit peeks, a
    /// queue-op journal entry for batched-link peeks — so the commit
    /// can install them without re-dispatching the call.
    pub(crate) delta: Option<PeekDelta>,
}

/// Plain in-memory wires initialized from a unit spec; writes are
/// immediate.
#[derive(Debug, Clone)]
pub struct LocalWires {
    values: Vec<Value>,
}

impl LocalWires {
    /// Creates wire storage matching `spec`'s wire table.
    #[must_use]
    pub fn new(spec: &CommUnitSpec) -> Self {
        LocalWires {
            values: spec.wires().iter().map(|w| w.init().clone()).collect(),
        }
    }

    /// Direct wire access for assertions.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn value(&self, w: PortId) -> &Value {
        &self.values[w.index()]
    }
}

impl WireStore for LocalWires {
    fn read_wire(&self, w: PortId) -> Result<Value, EvalError> {
        self.values
            .get(w.index())
            .cloned()
            .ok_or(EvalError::NoSuchPort(w))
    }
    fn write_wire(&mut self, w: PortId, v: Value) -> Result<(), EvalError> {
        match self.values.get_mut(w.index()) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(EvalError::NoSuchPort(w)),
        }
    }
}

/// Live state of one service session: protocol executor + locals.
#[derive(Debug, Clone, PartialEq)]
struct Session {
    exec: FsmExec,
    locals: Vec<Value>,
}

/// A point-in-time capture of all mutable [`FsmUnitRuntime`] state,
/// produced by [`FsmUnitRuntime::capture_state`] and consumed by
/// [`FsmUnitRuntime::restore_state`].
///
/// The capture is canonical: sessions are stored sorted by `(caller,
/// service)`, so two captures of identical logical states compare equal
/// (`PartialEq`) regardless of hash-map iteration order. The unit
/// *spec* is immutable and deliberately not part of the state — a
/// capture restores into any runtime built from the same spec.
#[derive(Debug, Clone, PartialEq)]
pub struct FsmUnitState {
    controller: Option<(FsmExec, Vec<Value>)>,
    /// `(caller, service, protocol executor, locals)`, sorted.
    sessions: Vec<(CallerId, Arc<str>, FsmExec, Vec<Value>)>,
    stats: UnitStats,
    ctrl_stable: bool,
    last_call_stable: bool,
}

impl FsmUnitState {
    /// Number of captured live sessions.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Captured statistics.
    #[must_use]
    pub fn stats(&self) -> &UnitStats {
        &self.stats
    }
}

/// One protocol-FSM activation of a service session against `wires`.
/// Returns the outcome plus whether the step was a provable no-op (no
/// wire writes, no local writes, same protocol state). Shared by the
/// mutating [`FsmUnitRuntime::call`] and the speculative
/// [`FsmUnitRuntime::peek_call`]. Does **not** reset completed sessions
/// or touch statistics — that is the caller's business.
fn step_session(
    svc: &ServiceSpec,
    session: &mut Session,
    args: &[Value],
    wires: &mut dyn WireStore,
) -> Result<(ServiceOutcome, bool), EvalError> {
    let state_before = session.exec.current();
    let mut counting = CountingWires {
        inner: wires,
        writes: 0,
    };
    let mut env = SessionEnv {
        locals: &mut session.locals,
        var_specs: svc.locals(),
        wires: &mut counting,
        args,
        var_writes: 0,
    };
    session.exec.step(svc.fsm(), &mut env)?;
    let var_writes = env.var_writes;
    let stable = counting.writes == 0 && var_writes == 0 && session.exec.current() == state_before;
    let done = session
        .locals
        .get(SERVICE_DONE_VAR.index())
        .ok_or(EvalError::NoSuchVar(SERVICE_DONE_VAR))?
        .truthy()
        .ok_or(EvalError::UnknownCondition)?;
    if done {
        let result = match svc.returns() {
            Some(_) => Some(
                session
                    .locals
                    .get(SERVICE_RESULT_VAR.index())
                    .cloned()
                    .ok_or(EvalError::NoSuchVar(SERVICE_RESULT_VAR))?,
            ),
            None => None,
        };
        Ok((ServiceOutcome { done: true, result }, stable))
    } else {
        Ok((ServiceOutcome::pending(), stable))
    }
}

/// Per-service call statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Activations (each returns done or pending).
    pub calls: u64,
    /// Completed protocol runs.
    pub completions: u64,
}

/// Statistics of a unit instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnitStats {
    /// Per-service stats, keyed by service name.
    pub services: HashMap<String, ServiceStats>,
    /// Controller activations.
    pub controller_steps: u64,
    /// Controller activations skipped because the previous step was a
    /// no-op and no wire input changed since
    /// ([`FsmUnitRuntime::step_controller_if_active`]).
    pub controller_skips: u64,
    /// Completed bus transactions (batched links only): one wire-level
    /// handshake per entry, however many values it carried.
    pub batches: u64,
    /// Total values carried by completed bus transactions.
    pub batched_values: u64,
    /// Largest single bus transaction, in values.
    pub max_batch_len: u64,
    /// Batch-length distribution in power-of-two buckets: `hist[i]`
    /// counts completed bus transactions carrying between `2^i` and
    /// `2^(i+1) - 1` values. Grown on demand; empty until the first
    /// batch completes.
    pub batch_len_hist: Vec<u64>,
    /// Payload beats streamed on the `DATA` wire (batched links under
    /// [`crate::BusTiming::PayloadBeats`] only): one beat per value per
    /// cycle, so this is the bus occupancy in cycles attributable to
    /// payload transport. Always zero under
    /// [`crate::BusTiming::LengthOnly`], and exactly `batched_values`
    /// under `PayloadBeats` (beats per batch == batch length; beats
    /// are recorded with the completed transaction, so a batch still
    /// mid-stream when a bounded run ends is not counted).
    pub payload_beats: u64,
}

impl UnitStats {
    /// Records one completed bus transaction of `len` values into the
    /// batch counters and the power-of-two length histogram.
    pub fn record_batch(&mut self, len: u64) {
        self.batches += 1;
        self.batched_values += len;
        self.max_batch_len = self.max_batch_len.max(len);
        let bucket = (u64::BITS - 1 - len.max(1).leading_zeros()) as usize;
        if self.batch_len_hist.len() <= bucket {
            self.batch_len_hist.resize(bucket + 1, 0);
        }
        self.batch_len_hist[bucket] += 1;
    }

    /// Mutable access to a service's stats row, allocating the map key
    /// only on first use — hot paths (one bump per call) pay a lookup
    /// but never a malloc once the row exists.
    pub(crate) fn service_mut(&mut self, name: &str) -> &mut ServiceStats {
        if !self.services.contains_key(name) {
            self.services
                .insert(name.to_string(), ServiceStats::default());
        }
        self.services
            .get_mut(name)
            .expect("service stats row just ensured")
    }
}

/// Wire-store wrapper counting writes, so a controller step can prove
/// itself a no-op.
struct CountingWires<'a> {
    inner: &'a mut dyn WireStore,
    writes: u32,
}

impl WireStore for CountingWires<'_> {
    fn read_wire(&self, w: PortId) -> Result<Value, EvalError> {
        self.inner.read_wire(w)
    }
    fn write_wire(&mut self, w: PortId, v: Value) -> Result<(), EvalError> {
        self.writes += 1;
        self.inner.write_wire(w, v)
    }
}

/// Environment adapter: locals as vars, wires as ports, call args as args.
struct SessionEnv<'a> {
    locals: &'a mut Vec<Value>,
    /// Variable declarations (write clamping), borrowed straight from
    /// the spec — no per-step type-table collection.
    var_specs: &'a [Variable],
    wires: &'a mut dyn WireStore,
    args: &'a [Value],
    /// Local-variable writes performed during the step (no-op detection
    /// for controller gating; conservative — equal-value writes count).
    var_writes: u32,
}

impl ReadEnv for SessionEnv<'_> {
    fn read_var(&self, v: VarId) -> Result<Value, EvalError> {
        self.locals
            .get(v.index())
            .cloned()
            .ok_or(EvalError::NoSuchVar(v))
    }
    fn read_port(&self, p: PortId) -> Result<Value, EvalError> {
        self.wires.read_wire(p)
    }
    fn read_arg(&self, i: u32) -> Result<Value, EvalError> {
        self.args
            .get(i as usize)
            .cloned()
            .ok_or(EvalError::NoSuchArg(i))
    }
}

impl Env for SessionEnv<'_> {
    fn write_var(&mut self, v: VarId, value: Value) -> Result<(), EvalError> {
        self.var_writes += 1;
        let ty = self
            .var_specs
            .get(v.index())
            .map(Variable::ty)
            .ok_or(EvalError::NoSuchVar(v))?;
        let slot = self
            .locals
            .get_mut(v.index())
            .ok_or(EvalError::NoSuchVar(v))?;
        *slot = ty.clamp(value);
        Ok(())
    }
    fn drive_port(&mut self, p: PortId, value: Value) -> Result<(), EvalError> {
        self.wires.write_wire(p, value)
    }
    fn call_service(
        &mut self,
        call: &ServiceCall,
        _args: &[Value],
    ) -> Result<ServiceOutcome, EvalError> {
        Err(EvalError::Service(format!(
            "nested service call to {}",
            call.service
        )))
    }
}

/// Executes an FSM-described communication unit instance.
///
/// # Examples
///
/// Drive the library handshake through a full put/get exchange:
///
/// ```
/// use cosma_comm::{handshake_unit, FsmUnitRuntime, LocalWires, CallerId};
/// use cosma_core::{Type, Value};
///
/// let spec = handshake_unit("hs", Type::INT16);
/// let mut unit = FsmUnitRuntime::new(spec.clone());
/// let mut wires = LocalWires::new(&spec);
/// let producer = CallerId(1);
/// let consumer = CallerId(2);
///
/// // Run producer, consumer and controller until the exchange completes.
/// let mut got = None;
/// for _ in 0..20 {
///     unit.call(producer, "put", &[Value::Int(42)], &mut wires)?;
///     let g = unit.call(consumer, "get", &[], &mut wires)?;
///     if g.done { got = g.result; break; }
///     unit.step_controller(&mut wires)?;
/// }
/// assert_eq!(got, Some(Value::Int(42)));
/// # Ok::<(), cosma_core::EvalError>(())
/// ```
pub struct FsmUnitRuntime {
    spec: Arc<CommUnitSpec>,
    controller: Option<(FsmExec, Vec<Value>)>,
    /// Interned service names, parallel to `spec.services()`. Session
    /// keys clone these `Arc`s (a refcount bump), so neither the
    /// immediate nor the deferred call path allocates a `String` key
    /// per call.
    interned: Vec<Arc<str>>,
    sessions: HashMap<(CallerId, Arc<str>), Session>,
    stats: UnitStats,
    /// Whether the last controller step provably changed nothing (same
    /// state, same vars, zero wire writes). While true, re-stepping with
    /// unchanged wire inputs must produce the same no-op, so the step
    /// can be skipped.
    ctrl_stable: bool,
    /// Whether the last [`FsmUnitRuntime::call`] was a provable no-op:
    /// pending outcome, same session state, no locals written, no wires
    /// written. While true, re-calling with unchanged wires repeats the
    /// identical no-op, so the *caller* can be parked until one of the
    /// service's completion wires events.
    last_call_stable: bool,
}

impl fmt::Debug for FsmUnitRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FsmUnitRuntime")
            .field("spec", &self.spec.name())
            .field("sessions", &self.sessions.len())
            .finish_non_exhaustive()
    }
}

impl FsmUnitRuntime {
    /// Creates the runtime for a unit spec.
    #[must_use]
    pub fn new(spec: Arc<CommUnitSpec>) -> Self {
        let controller = spec.controller().map(|c| {
            (
                FsmExec::new(&c.fsm),
                c.vars.iter().map(|v| v.init().clone()).collect(),
            )
        });
        let interned = spec
            .services()
            .iter()
            .map(|s| Arc::<str>::from(s.name()))
            .collect();
        FsmUnitRuntime {
            spec,
            controller,
            interned,
            sessions: HashMap::new(),
            stats: UnitStats::default(),
            ctrl_stable: false,
            last_call_stable: false,
        }
    }

    /// The unit spec.
    #[must_use]
    pub fn spec(&self) -> &Arc<CommUnitSpec> {
        &self.spec
    }

    /// Resolves a service name to its index in `spec.services()` (and
    /// the parallel `interned` table) via the spec's own
    /// exact-then-case-insensitive lookup, so VHDL-style upper-cased
    /// callers share the session (and stats row) of the canonical name
    /// instead of forking one keyed by their spelling.
    fn resolve(&self, service: &str) -> Option<usize> {
        self.spec.service_index(service)
    }

    /// Activates one step of `service` on behalf of `caller`.
    ///
    /// Returns `done = true` exactly once per completed protocol run; the
    /// session then resets for the next transaction.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::Service`] for unknown services or arity
    /// mismatches, and propagates expression-evaluation errors.
    pub fn call(
        &mut self,
        caller: CallerId,
        service: &str,
        args: &[Value],
        wires: &mut dyn WireStore,
    ) -> Result<ServiceOutcome, EvalError> {
        let Some(idx) = self.resolve(service) else {
            return Err(EvalError::Service(format!(
                "unit {} has no service {service}",
                self.spec.name()
            )));
        };
        let spec = Arc::clone(&self.spec);
        let svc = &spec.services()[idx];
        if svc.args().len() != args.len() {
            return Err(EvalError::Service(format!(
                "service {service} expects {} argument(s), got {}",
                svc.args().len(),
                args.len()
            )));
        }
        let key = (caller, Arc::clone(&self.interned[idx]));
        let session = self.sessions.entry(key).or_insert_with(|| Session {
            exec: FsmExec::new(svc.fsm()),
            locals: svc.locals().iter().map(|v| v.init().clone()).collect(),
        });
        let (outcome, stable) = step_session(svc, session, args, wires)?;
        self.last_call_stable = stable;
        // Stats rows key by the canonical service name too, so a
        // case-insensitive spelling feeds the same row as the session
        // it advances.
        let stats = self.stats.service_mut(svc.name());
        stats.calls += 1;
        if outcome.done {
            stats.completions += 1;
            // Reset the session for the next transaction, reusing the
            // locals buffer in place.
            session.exec = FsmExec::new(svc.fsm());
            session.locals.clear();
            session
                .locals
                .extend(svc.locals().iter().map(|v| v.init().clone()));
        }
        Ok(outcome)
    }

    /// Speculative (read-only) variant of [`FsmUnitRuntime::call`]: steps
    /// a *clone* of the caller's session against a read-only wire view,
    /// answering the outcome the real call would produce — without
    /// touching the runtime, the session, the wires or the statistics.
    ///
    /// Because sessions are caller-private and wire writes are
    /// delta-delayed (never observed within the same activation), the
    /// peeked outcome is exact whenever the session is stepped at most
    /// once per activation; a two-phase scheduler validates it again at
    /// commit time regardless.
    ///
    /// # Errors
    ///
    /// Same as [`FsmUnitRuntime::call`].
    pub fn peek_call(
        &self,
        caller: CallerId,
        service: &str,
        args: &[Value],
        wires: &dyn ReadWires,
    ) -> Result<PeekedCall, EvalError> {
        self.peek_call_scratch(caller, service, args, wires, &mut PeekScratch::default())
    }

    /// [`FsmUnitRuntime::peek_call`] with caller-owned buffer pools: the
    /// session clone's locals and the wire-write capture vector come
    /// from `scratch` instead of fresh allocations, and return there
    /// when the peek is committed ([`FsmUnitRuntime::commit_peeked_reclaim`])
    /// or abandoned ([`PeekScratch::reclaim`]).
    ///
    /// # Errors
    ///
    /// Same as [`FsmUnitRuntime::call`].
    pub fn peek_call_scratch(
        &self,
        caller: CallerId,
        service: &str,
        args: &[Value],
        wires: &dyn ReadWires,
        scratch: &mut PeekScratch,
    ) -> Result<PeekedCall, EvalError> {
        let Some(idx) = self.resolve(service) else {
            return Err(EvalError::Service(format!(
                "unit {} has no service {service}",
                self.spec.name()
            )));
        };
        let svc = &self.spec.services()[idx];
        if svc.args().len() != args.len() {
            return Err(EvalError::Service(format!(
                "service {service} expects {} argument(s), got {}",
                svc.args().len(),
                args.len()
            )));
        }
        let key = (caller, Arc::clone(&self.interned[idx]));
        let mut locals = scratch.take_locals();
        let mut session = match self.sessions.get(&key) {
            Some(s) => {
                locals.extend_from_slice(&s.locals);
                Session {
                    exec: s.exec.clone(),
                    locals,
                }
            }
            None => {
                locals.extend(svc.locals().iter().map(|v| v.init().clone()));
                Session {
                    exec: FsmExec::new(svc.fsm()),
                    locals,
                }
            }
        };
        let pre_state = session.exec.current();
        let pre_steps = session.exec.steps();
        let mut pw = PeekWires {
            inner: wires,
            writes: scratch.take_writes(),
        };
        let (outcome, stable) = step_session(svc, &mut session, args, &mut pw)?;
        Ok(PeekedCall {
            outcome,
            stable,
            delta: Some(PeekDelta::Session(SessionDelta {
                pre_state,
                pre_steps,
                post: session,
                writes: pw.writes,
            })),
        })
    }

    /// Commits a [`FsmUnitRuntime::peek_call`] result without re-running
    /// the protocol step: validates that the caller's session is still
    /// exactly as peeked (state + monotone step count — sessions are
    /// caller-private, so this only fails when the same module stepped
    /// the same session twice in one activation), then installs the
    /// peeked post-session, re-issues the captured wire writes, and
    /// performs the call bookkeeping `call` would have performed.
    ///
    /// Returns `false` (having changed nothing) when the fingerprint no
    /// longer matches or the peek carries no delta — the caller must
    /// fall back to a full [`FsmUnitRuntime::call`].
    ///
    /// # Errors
    ///
    /// Propagates wire-store errors from re-issuing the captured writes.
    pub fn commit_peeked(
        &mut self,
        caller: CallerId,
        service: &str,
        peeked: PeekedCall,
        wires: &mut dyn WireStore,
    ) -> Result<bool, EvalError> {
        self.commit_peeked_reclaim(caller, service, peeked, wires, &mut PeekScratch::default())
    }

    /// [`FsmUnitRuntime::commit_peeked`] with buffer reclamation: every
    /// pooled vector the peek borrowed — the captured writes after
    /// re-issue, the displaced old session's locals, the post-session's
    /// locals on a rejected fingerprint — is handed back to `scratch`
    /// for the next peek, and completion resets reuse the session's
    /// locals buffer in place.
    ///
    /// # Errors
    ///
    /// Propagates wire-store errors from re-issuing the captured writes.
    pub fn commit_peeked_reclaim(
        &mut self,
        caller: CallerId,
        service: &str,
        peeked: PeekedCall,
        wires: &mut dyn WireStore,
        scratch: &mut PeekScratch,
    ) -> Result<bool, EvalError> {
        let Some(PeekDelta::Session(mut delta)) = peeked.delta else {
            return Ok(false);
        };
        let Some(idx) = self.resolve(service) else {
            scratch.put_locals(delta.post.locals);
            scratch.put_writes(delta.writes);
            return Ok(false);
        };
        let spec = Arc::clone(&self.spec);
        let svc = &spec.services()[idx];
        let key = (caller, Arc::clone(&self.interned[idx]));
        let unchanged = match self.sessions.get(&key) {
            Some(s) => s.exec.current() == delta.pre_state && s.exec.steps() == delta.pre_steps,
            None => delta.pre_steps == 0 && delta.pre_state == svc.fsm().initial(),
        };
        if !unchanged {
            scratch.put_locals(delta.post.locals);
            scratch.put_writes(delta.writes);
            return Ok(false);
        }
        for (w, v) in delta.writes.drain(..) {
            wires.write_wire(w, v)?;
        }
        scratch.put_writes(delta.writes);
        let mut session = delta.post;
        if peeked.outcome.done {
            // Reset the session for the next transaction, like `call`,
            // reusing the pooled locals buffer in place.
            session.exec = FsmExec::new(svc.fsm());
            session.locals.clear();
            session
                .locals
                .extend(svc.locals().iter().map(|v| v.init().clone()));
        }
        if let Some(old) = self.sessions.insert(key, session) {
            scratch.put_locals(old.locals);
        }
        self.last_call_stable = peeked.stable;
        let stats = self.stats.service_mut(svc.name());
        stats.calls += 1;
        if peeked.outcome.done {
            stats.completions += 1;
        }
        Ok(true)
    }

    /// Standalone commit entry point of the two-phase model: applies a
    /// module's buffered call records to this unit, in the order given.
    /// Callers are responsible for the deterministic global ordering —
    /// records must arrive sorted by `(module id, call index)` so the
    /// commit reproduces exactly the mutation order of the
    /// immediate-application path. (The co-simulation backplane commits
    /// through the same [`FsmUnitRuntime::call`]/
    /// [`FsmUnitRuntime::commit_peeked`] dispatch one record at a time,
    /// interleaving per-call outcome validation that this batch
    /// interface cannot express.)
    ///
    /// Returns the actual outcome of every applied call, for validation
    /// against the outcomes speculated during the step phase.
    ///
    /// # Errors
    ///
    /// Same as [`FsmUnitRuntime::call`]; a malformed record (unknown
    /// service, arity mismatch) surfaces as a typed
    /// [`EvalError::Service`], never a panic.
    pub fn apply_calls(
        &mut self,
        caller: CallerId,
        calls: &[DeferredCall],
        wires: &mut dyn WireStore,
    ) -> Result<Vec<ServiceOutcome>, EvalError> {
        calls
            .iter()
            .map(|c| self.call(caller, &c.service, &c.args, wires))
            .collect()
    }

    /// Runs one controller activation (no-op for controller-less units).
    ///
    /// # Errors
    ///
    /// Propagates expression-evaluation errors from the controller FSM.
    pub fn step_controller(&mut self, wires: &mut dyn WireStore) -> Result<(), EvalError> {
        self.step_controller_inner(wires).map(|_| ())
    }

    /// Clock-gated controller activation: steps unless the previous step
    /// was provably a no-op (same state, same vars, no wire writes) *and*
    /// the caller reports no wire input changed since — in which case
    /// re-stepping would repeat the identical no-op and is skipped.
    ///
    /// The co-simulation backplane calls this on every clock edge with
    /// `inputs_changed` derived from the unit wires' kernel event counts,
    /// so idle units cost nothing per cycle. Returns whether a step ran.
    ///
    /// # Errors
    ///
    /// Propagates expression-evaluation errors from the controller FSM.
    pub fn step_controller_if_active(
        &mut self,
        wires: &mut dyn WireStore,
        inputs_changed: bool,
    ) -> Result<bool, EvalError> {
        if self.ctrl_stable && !inputs_changed {
            if self.spec.controller().is_some() {
                self.stats.controller_skips += 1;
            }
            return Ok(false);
        }
        self.step_controller_inner(wires)
    }

    fn step_controller_inner(&mut self, wires: &mut dyn WireStore) -> Result<bool, EvalError> {
        let Some(ctrl_spec) = self.spec.controller() else {
            // A controller-less unit is trivially stable.
            self.ctrl_stable = true;
            return Ok(false);
        };
        let (exec, vars) = self.controller.as_mut().ok_or_else(|| {
            EvalError::Service(format!(
                "unit {}: controller spec present but no controller state",
                self.spec.name()
            ))
        })?;
        let state_before = exec.current();
        let mut counting = CountingWires {
            inner: wires,
            writes: 0,
        };
        let mut env = SessionEnv {
            locals: vars,
            var_specs: &ctrl_spec.vars,
            wires: &mut counting,
            args: &[],
            var_writes: 0,
        };
        exec.step(&ctrl_spec.fsm, &mut env)?;
        let var_writes = env.var_writes;
        self.ctrl_stable =
            counting.writes == 0 && var_writes == 0 && exec.current() == state_before;
        self.stats.controller_steps += 1;
        Ok(true)
    }

    /// Call/completion statistics.
    #[must_use]
    pub fn stats(&self) -> &UnitStats {
        &self.stats
    }

    /// Whether the last controller step was provably a no-op — while
    /// true, re-stepping with unchanged wire inputs is guaranteed to
    /// change nothing, so schedulers (the sharded backplane) can park the
    /// unit entirely until one of its wires has an event.
    #[must_use]
    pub fn controller_stable(&self) -> bool {
        self.ctrl_stable
    }

    /// Whether the last [`FsmUnitRuntime::call`] was a provable no-op
    /// (pending outcome, session state unchanged, no locals written, no
    /// wires written). While true, re-calling with unchanged wires is
    /// guaranteed to repeat the no-op — schedulers can park the blocked
    /// caller until one of [`FsmUnitRuntime::completion_signals`] events.
    #[must_use]
    pub fn last_call_stable(&self) -> bool {
        self.last_call_stable
    }

    /// The wires whose events can unblock a caller of `service`: the
    /// read-set of the service's protocol FSM. A blocked session's next
    /// step depends only on its locals (frozen while the caller sleeps)
    /// and these wires, so a parked caller re-armed by any event on them
    /// observes exactly the behaviour of re-calling every cycle.
    ///
    /// Returns an empty set for unknown services (callers must then stay
    /// awake).
    #[must_use]
    pub fn completion_signals(&self, service: &str) -> Vec<PortId> {
        self.spec
            .service(service)
            .map(|svc| svc.fsm().port_reads())
            .unwrap_or_default()
    }

    /// Current controller state name, if a controller exists (useful in
    /// traces and the Fig. 2 harness).
    #[must_use]
    pub fn controller_state(&self) -> Option<&str> {
        let ctrl = self.spec.controller()?;
        let (exec, _) = self.controller.as_ref()?;
        Some(ctrl.fsm.state(exec.current()).name())
    }

    /// Drops a caller's session for a service (e.g. on module reset).
    pub fn reset_session(&mut self, caller: CallerId, service: &str) {
        if let Some(idx) = self.resolve(service) {
            let key = (caller, Arc::clone(&self.interned[idx]));
            self.sessions.remove(&key);
        }
    }

    /// Captures all mutable runtime state into a canonical
    /// [`FsmUnitState`]: controller executor + vars, every live session
    /// (sorted by caller and service), statistics, and the two
    /// stability flags. The immutable spec is not captured.
    #[must_use]
    pub fn capture_state(&self) -> FsmUnitState {
        let mut sessions: Vec<(CallerId, Arc<str>, FsmExec, Vec<Value>)> = self
            .sessions
            .iter()
            .map(|((caller, name), s)| {
                (*caller, Arc::clone(name), s.exec.clone(), s.locals.clone())
            })
            .collect();
        sessions.sort_by(|a, b| (a.0, a.1.as_ref()).cmp(&(b.0, b.1.as_ref())));
        FsmUnitState {
            controller: self.controller.clone(),
            sessions,
            stats: self.stats.clone(),
            ctrl_stable: self.ctrl_stable,
            last_call_stable: self.last_call_stable,
        }
    }

    /// Restores a previously captured [`FsmUnitState`]. The target must
    /// be built from the same spec (or one declaring the same services
    /// and controller); session keys are re-interned against this
    /// runtime's own name table, so a capture taken from one instance
    /// restores into another.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::Service`] (leaving this runtime untouched)
    /// if the capture references a service this spec doesn't declare,
    /// or its controller shape doesn't match.
    pub fn restore_state(&mut self, state: &FsmUnitState) -> Result<(), EvalError> {
        if state.controller.is_some() != self.controller.is_some() {
            return Err(EvalError::Service(format!(
                "unit {}: snapshot controller shape does not match spec",
                self.spec.name()
            )));
        }
        let mut sessions = HashMap::with_capacity(state.sessions.len());
        for (caller, name, exec, locals) in &state.sessions {
            let idx = self.resolve(name).ok_or_else(|| {
                EvalError::Service(format!(
                    "unit {}: snapshot session for unknown service {name}",
                    self.spec.name()
                ))
            })?;
            sessions.insert(
                (*caller, Arc::clone(&self.interned[idx])),
                Session {
                    exec: exec.clone(),
                    locals: locals.clone(),
                },
            );
        }
        self.sessions = sessions;
        self.controller.clone_from(&state.controller);
        self.stats.clone_from(&state.stats);
        self.ctrl_stable = state.ctrl_stable;
        self.last_call_stable = state.last_call_stable;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{handshake_unit, shared_reg_unit};
    use cosma_core::Type;

    #[test]
    fn unknown_service_is_error() {
        let spec = handshake_unit("hs", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let err = unit
            .call(CallerId(0), "bogus", &[], &mut wires)
            .unwrap_err();
        assert!(err.to_string().contains("no service"));
    }

    #[test]
    fn arity_mismatch_is_error() {
        let spec = handshake_unit("hs", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let err = unit.call(CallerId(0), "put", &[], &mut wires).unwrap_err();
        assert!(err.to_string().contains("argument"));
    }

    #[test]
    fn sessions_are_per_caller() {
        let spec = handshake_unit("hs", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        // Two producers start puts; their protocol FSMs advance
        // independently (each has its own NEXTSTATE).
        unit.call(CallerId(1), "put", &[Value::Int(1)], &mut wires)
            .unwrap();
        unit.call(CallerId(2), "put", &[Value::Int(2)], &mut wires)
            .unwrap();
        assert_eq!(unit.stats().services["put"].calls, 2);
        assert_eq!(unit.stats().services["put"].completions, 0);
        assert_eq!(unit.sessions.len(), 2);
    }

    #[test]
    fn stats_count_completions() {
        let spec = handshake_unit("hs", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let p = CallerId(1);
        let c = CallerId(2);
        let mut puts = 0;
        let mut gets = 0;
        for _ in 0..60 {
            if unit
                .call(p, "put", &[Value::Int(9)], &mut wires)
                .unwrap()
                .done
            {
                puts += 1;
            }
            if unit.call(c, "get", &[], &mut wires).unwrap().done {
                gets += 1;
            }
            unit.step_controller(&mut wires).unwrap();
            if puts >= 2 && gets >= 2 {
                break;
            }
        }
        assert!(puts >= 2, "two puts should complete, got {puts}");
        assert!(gets >= 2, "two gets should complete, got {gets}");
        assert_eq!(unit.stats().services["put"].completions, puts);
        assert!(unit.stats().controller_steps > 0);
    }

    #[test]
    fn sessions_key_by_interned_name() {
        // The session map is keyed by (CallerId, Arc<str>) cloned from
        // the spec's interned service names — so a case-insensitive
        // spelling (the VHDL-caller path) resolves to the SAME session
        // instead of forking a duplicate keyed by the caller's string.
        let spec = handshake_unit("hs", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let p = CallerId(1);
        unit.call(p, "put", &[Value::Int(1)], &mut wires).unwrap();
        assert_eq!(unit.sessions.len(), 1);
        unit.call(p, "PUT", &[Value::Int(1)], &mut wires).unwrap();
        assert_eq!(
            unit.sessions.len(),
            1,
            "upper-cased spelling advances the same session"
        );
        assert_eq!(
            unit.stats().services.get("put").map(|s| s.calls),
            Some(2),
            "and feeds the same canonical stats row"
        );
        assert!(
            !unit.stats().services.contains_key("PUT"),
            "no stats row forked under the caller's spelling"
        );
        // reset_session drops it regardless of spelling.
        unit.reset_session(p, "Put");
        assert_eq!(unit.sessions.len(), 0);
    }

    #[test]
    fn reset_session_restarts_protocol() {
        let spec = handshake_unit("hs", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let p = CallerId(1);
        unit.call(p, "put", &[Value::Int(1)], &mut wires).unwrap();
        unit.reset_session(p, "put");
        assert_eq!(unit.sessions.len(), 0);
    }

    #[test]
    fn gated_controller_skips_only_provable_noops() {
        let spec = handshake_unit("hs", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        // First activation always steps (nothing proven yet).
        assert!(unit.step_controller_if_active(&mut wires, false).unwrap());
        // An idle handshake controller self-loops without writes: once
        // stable, unchanged inputs are skipped...
        let mut skipped = 0;
        for _ in 0..10 {
            if !unit.step_controller_if_active(&mut wires, false).unwrap() {
                skipped += 1;
            }
        }
        assert!(skipped > 0, "idle controller must eventually be skippable");
        assert_eq!(unit.stats().controller_skips, skipped);
        // ...but an input change forces a real step.
        assert!(unit.step_controller_if_active(&mut wires, true).unwrap());
        // Gated and ungated runs observe the same protocol behaviour:
        // drive a full put/get exchange with gating on the controller,
        // deriving inputs_changed from actual wire changes.
        let mut gated = FsmUnitRuntime::new(spec.clone());
        let mut ungated = FsmUnitRuntime::new(spec.clone());
        let mut gw = LocalWires::new(&spec);
        let mut uw = LocalWires::new(&spec);
        let p = CallerId(1);
        let c = CallerId(2);
        let mut got_g = None;
        let mut got_u = None;
        for _ in 0..40 {
            let before: Vec<Value> = (0..spec.wires().len())
                .map(|i| gw.value(PortId::new(i as u32)).clone())
                .collect();
            gated.call(p, "put", &[Value::Int(7)], &mut gw).unwrap();
            if let Some(v) = gated.call(c, "get", &[], &mut gw).unwrap().result {
                got_g.get_or_insert(v);
            }
            let changed =
                (0..spec.wires().len()).any(|i| gw.value(PortId::new(i as u32)) != &before[i]);
            gated.step_controller_if_active(&mut gw, changed).unwrap();

            ungated.call(p, "put", &[Value::Int(7)], &mut uw).unwrap();
            if let Some(v) = ungated.call(c, "get", &[], &mut uw).unwrap().result {
                got_u.get_or_insert(v);
            }
            ungated.step_controller(&mut uw).unwrap();
        }
        assert_eq!(got_g, Some(Value::Int(7)));
        assert_eq!(got_g, got_u);
    }

    #[test]
    fn controller_state_visible() {
        let spec = handshake_unit("hs", Type::INT16);
        let unit = FsmUnitRuntime::new(spec);
        assert_eq!(unit.controller_state(), Some("IDLE"));
    }

    #[test]
    fn completion_signals_are_the_protocol_read_set() {
        let spec = handshake_unit("hs", Type::INT16);
        let unit = FsmUnitRuntime::new(spec.clone());
        // get blocks on B_FULL and copies DATA: both are in its read-set,
        // while REQ (producer-side only) is not.
        let get = unit.completion_signals("get");
        assert!(get.contains(&spec.wire_id("B_FULL").unwrap()));
        assert!(get.contains(&spec.wire_id("DATA").unwrap()));
        assert!(!get.contains(&spec.wire_id("REQ").unwrap()));
        // put waits on ACK and B_FULL.
        let put = unit.completion_signals("put");
        assert!(put.contains(&spec.wire_id("ACK").unwrap()));
        assert!(put.contains(&spec.wire_id("B_FULL").unwrap()));
        assert!(unit.completion_signals("bogus").is_empty());
    }

    #[test]
    fn peek_answers_the_outcome_the_real_call_produces() {
        // Against every reachable session state of the handshake, peek
        // then call must agree — and the peek must not mutate anything.
        let spec = handshake_unit("hs", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let p = CallerId(1);
        let c = CallerId(2);
        for step in 0..30 {
            let peeked_put = unit
                .peek_call(p, "put", &[Value::Int(step)], &wires)
                .unwrap();
            let real_put = unit
                .call(p, "put", &[Value::Int(step)], &mut wires)
                .unwrap();
            assert_eq!(peeked_put.outcome, real_put, "put step {step}");
            assert_eq!(
                peeked_put.stable,
                unit.last_call_stable(),
                "put step {step}"
            );
            let peeked_get = unit.peek_call(c, "get", &[], &wires).unwrap();
            let real_get = unit.call(c, "get", &[], &mut wires).unwrap();
            assert_eq!(peeked_get.outcome, real_get, "get step {step}");
            assert_eq!(
                peeked_get.stable,
                unit.last_call_stable(),
                "get step {step}"
            );
            unit.step_controller(&mut wires).unwrap();
        }
    }

    #[test]
    fn peek_is_read_only() {
        let spec = handshake_unit("hs", Type::INT16);
        let unit = FsmUnitRuntime::new(spec.clone());
        let wires = LocalWires::new(&spec);
        // Peeks create no sessions, bump no stats, write no wires.
        unit.peek_call(CallerId(1), "put", &[Value::Int(1)], &wires)
            .unwrap();
        unit.peek_call(CallerId(2), "get", &[], &wires).unwrap();
        assert_eq!(unit.sessions.len(), 0);
        assert!(unit.stats().services.is_empty());
        // Malformed peeks surface as typed errors, like real calls.
        assert!(unit.peek_call(CallerId(1), "bogus", &[], &wires).is_err());
        assert!(unit.peek_call(CallerId(1), "put", &[], &wires).is_err());
    }

    #[test]
    fn apply_calls_replays_in_order() {
        use cosma_core::DeferredCall;
        let spec = handshake_unit("hs", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let record = |service: &str, args: Vec<Value>| DeferredCall {
            binding: cosma_core::ids::BindingId::new(0),
            service: service.into(),
            args,
            outcome: ServiceOutcome::pending(),
        };
        let outs = unit
            .apply_calls(
                CallerId(1),
                &[
                    record("put", vec![Value::Int(9)]),
                    record("put", vec![Value::Int(9)]),
                ],
                &mut wires,
            )
            .unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(unit.stats().services["put"].calls, 2);
        // A malformed record is a typed error, not a panic.
        let err = unit
            .apply_calls(CallerId(1), &[record("nope", vec![])], &mut wires)
            .unwrap_err();
        assert!(err.to_string().contains("no service"));
    }

    #[test]
    fn blocked_call_is_stable_progressing_call_is_not() {
        let spec = handshake_unit("hs", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        // get on an empty channel: pending, nothing written, same state —
        // a provable no-op every time.
        for _ in 0..3 {
            let g = unit.call(CallerId(2), "get", &[], &mut wires).unwrap();
            assert!(!g.done);
            assert!(unit.last_call_stable(), "blocked get is a no-op");
        }
        // put's first activation drives DATA/REQ: pending but NOT stable.
        let p = unit
            .call(CallerId(1), "put", &[Value::Int(5)], &mut wires)
            .unwrap();
        assert!(!p.done);
        assert!(!unit.last_call_stable(), "put wrote wires");
    }

    #[test]
    fn capture_restore_resumes_mid_protocol_sessions() {
        let spec = handshake_unit("hs", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let p = CallerId(1);
        let c = CallerId(2);
        // Leave a put and a get parked mid-protocol, controller advanced.
        unit.call(p, "put", &[Value::Int(7)], &mut wires).unwrap();
        unit.call(c, "get", &[], &mut wires).unwrap();
        unit.step_controller(&mut wires).unwrap();
        let snap = unit.capture_state();
        let wires_snap = wires.clone();
        assert_eq!(snap.session_count(), 2, "both sessions live at capture");

        // Drive the original to completion, logging every observable.
        let run = |unit: &mut FsmUnitRuntime, wires: &mut LocalWires| {
            let mut log = vec![];
            for _ in 0..20 {
                let pr = unit.call(p, "put", &[Value::Int(7)], wires).unwrap();
                let gr = unit.call(c, "get", &[], wires).unwrap();
                unit.step_controller(wires).unwrap();
                log.push((pr.done, gr.done, gr.result));
            }
            log
        };
        let first = run(&mut unit, &mut wires);
        let end_stats = unit.stats().clone();
        assert!(
            first.iter().any(|(pd, gd, _)| *pd && *gd),
            "the handshake completed during the continuation"
        );

        // Restore into a *different* runtime built from the same spec
        // (session keys re-intern against its name table) and replay:
        // outcome-identical, stats land verbatim on the same totals.
        let mut twin = FsmUnitRuntime::new(spec.clone());
        let mut twin_wires = wires_snap;
        twin.restore_state(&snap).unwrap();
        assert_eq!(
            twin.capture_state(),
            snap,
            "canonical captures of identical states compare equal"
        );
        let second = run(&mut twin, &mut twin_wires);
        assert_eq!(second, first, "replay is outcome-identical");
        assert_eq!(twin.stats(), &end_stats);

        // A spec that doesn't declare the captured services refuses the
        // snapshot and is left untouched.
        let other_spec = shared_reg_unit("reg", Type::INT16);
        let mut other = FsmUnitRuntime::new(other_spec);
        let before = other.capture_state();
        let err = other.restore_state(&snap).unwrap_err();
        assert!(err.to_string().contains("snapshot"));
        assert_eq!(other.capture_state(), before, "refused load is a no-op");
    }
}
