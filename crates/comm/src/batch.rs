//! Batched bus transactions: coalescing per-value protocol transfers
//! into one wire-level handshake per batch.
//!
//! The classic [`handshake_unit`](crate::handshake_unit) pays a full
//! 4-phase handshake (several clock cycles of wire traffic plus
//! controller activations) for *every* value. On a backplane with
//! hundreds of units that per-value cost dominates. A [`BatchedLink`]
//! instead models a burst-capable bus: producer-side `put` calls append
//! to a vec-backed payload queue with no wire traffic at all, and the
//! runtime moves whole batches with a *single* handshake whose `DATA`
//! wire carries the batch length — one arbitration per burst, exactly
//! like a bus master issuing a block transfer.
//!
//! Wire protocol (see [`batched_handshake_unit`]):
//!
//! * `PENDING` — bus-request level, raised when values are queued for
//!   transport and lowered once the queues drain. Schedulers that park
//!   idle links (the sharded backplane) watch it to wake up.
//! * `DATA`/`REQ`/`ACK`/`B_FULL` — the classic handshake, run once per
//!   batch by the link's internal bus sessions.
//!
//! Batch size is **adaptive**: the link carries a batch *target* in
//! `1..=max_batch` that starts at 1 (a lone early value is never held
//! hostage to a large first batch), doubles while the outgoing queue
//! keeps up with it (bus-bound traffic, amortize the arbitration) and
//! halves while the queue runs shallow (light traffic, don't batch
//! latency in) — `max_batch` is only the hard ceiling.
//!
//! **Bus timing** is selectable per link ([`BusTiming`]):
//!
//! * [`BusTiming::LengthOnly`] (default) — the whole batch crosses in
//!   the one arbitration handshake; bus occupancy is independent of
//!   payload size. The co-simulation fast path.
//! * [`BusTiming::PayloadBeats`] — after the arbitration handshake the
//!   link streams one wire word per value per cycle on `DATA`, so a
//!   length-`n` batch occupies the bus for `n` beats and a
//!   cycle-accurate observer sees every word. Delivered-value semantics
//!   are bit-identical to `LengthOnly`; only timing differs, which is
//!   what makes a `PayloadBeats` run usable as the calibration side of
//!   batch-latency back-annotation (`cosma_cosim::annotate_batch_latency`).
//!
//! Per-unit statistics record batch counts and sizes
//! ([`UnitStats::batches`], [`UnitStats::batched_values`],
//! [`UnitStats::max_batch_len`]), a power-of-two batch-length histogram
//! ([`UnitStats::batch_len_hist`]) and, under `PayloadBeats`, the
//! payload-beat bus occupancy ([`UnitStats::payload_beats`]).

use crate::library::batched_handshake_unit;
use crate::runtime::{
    CallerId, FsmUnitRuntime, FsmUnitState, PeekDelta, PeekedCall, UnitStats, WireStore,
};
use cosma_core::comm::CommUnitSpec;
use cosma_core::ids::PortId;
use cosma_core::{Bit, DeferredCall, EvalError, ServiceOutcome, Type, Value};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Internal caller driving the producer side of the wire handshake.
const BUS_PRODUCER: CallerId = CallerId(u64::MAX);
/// Internal caller draining the consumer side of the wire handshake.
const BUS_CONSUMER: CallerId = CallerId(u64::MAX - 1);

/// How a batch occupies the bus at the wire level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BusTiming {
    /// One arbitration handshake moves the whole batch; `DATA` carries
    /// only the batch *length*, so bus occupancy is independent of
    /// payload size. The co-simulation fast path (default).
    #[default]
    LengthOnly,
    /// After the arbitration handshake the link streams one wire word
    /// per value per cycle on `DATA`: a length-`n` batch occupies the
    /// bus for `n` beats, a cycle-accurate observer sees every word,
    /// and [`UnitStats::payload_beats`] counts the occupancy. Delivered
    /// values are bit-identical to [`BusTiming::LengthOnly`]; only
    /// timing differs.
    PayloadBeats,
}

/// One journaled queue operation recorded by [`BatchedLink::peek_call`]
/// against the committed queues, installable at commit time by
/// [`BatchedLink::commit_peeked`] without re-dispatching the call. Each
/// variant carries its own validity fingerprint: the committed queues
/// must still answer the call exactly as peeked (earlier same-cycle
/// commits may have moved them — then the caller falls back to the full
/// [`BatchedLink::call`] dispatch).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum QueueDelta {
    /// `put` answered done: append this (already clamped) value. Valid
    /// while occupancy is still below capacity.
    Put(Value),
    /// `put` answered pending (backpressure); the rejected value rides
    /// along so the install can replay the exact call. Valid while
    /// still at capacity.
    PutFull(Value),
    /// `get` answered done with the front value. Valid while the
    /// delivered queue still fronts that exact value.
    Get(Value),
    /// `get` answered pending (nothing delivered). Valid while the
    /// delivered queue is still empty.
    GetEmpty,
}

/// A point-in-time capture of all mutable [`BatchedLink`] state,
/// produced by [`BatchedLink::capture_state`] and consumed by
/// [`BatchedLink::restore_state`]: the inner bus-protocol runtime's
/// state, all three payload queues, the handshake/streaming phase, and
/// the adaptive batch target. Immutable link configuration (spec, data
/// type, timing model, `max_batch`, capacity) is not captured — a
/// capture restores into any link built with the same configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedLinkState {
    inner: FsmUnitState,
    batch_target: usize,
    outgoing: Vec<Value>,
    in_flight: Vec<Value>,
    delivered: Vec<Value>,
    sending: bool,
    streaming: bool,
    scheduled: bool,
    beat: usize,
    last_call_stable: bool,
    stats: UnitStats,
}

impl BatchedLinkState {
    /// Captured total occupancy across all queues.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.outgoing.len() + self.in_flight.len() + self.delivered.len()
    }

    /// Captured adaptive batch target.
    #[must_use]
    pub fn batch_target(&self) -> usize {
        self.batch_target
    }
}

/// Converts a payload value into the word driven onto the INT16 `DATA`
/// wire during payload-beat streaming — the same 16-bit bus-word
/// encoding every other wire write uses.
fn wire_word(v: &Value) -> Value {
    // Infallible for INT16 (only enum types can fail to decode); the
    // expect states the invariant instead of masking a future
    // wire-type change with a silently wrong-kind drive.
    Value::from_bus_word(&Type::INT16, v.to_bus_word(16))
        .expect("INT16 bus words decode infallibly")
}

/// A burst-capable channel: vec-backed payload queues on both ends of a
/// single wire-level handshake that is run once per *batch*.
///
/// # Examples
///
/// Move eight values with one bus transaction:
///
/// ```
/// use cosma_comm::{BatchedLink, CallerId, LocalWires};
/// use cosma_core::{Type, Value};
///
/// let mut link = BatchedLink::new("bus", Type::INT16, 16, 32);
/// let mut wires = LocalWires::new(link.spec());
/// let (p, c) = (CallerId(1), CallerId(2));
/// for i in 0..8 {
///     assert!(link.put(p, Value::Int(i), &mut wires)?.done);
/// }
/// // Pump until the batches cross the bus. The adaptive target ramps
/// // from 1, so the burst still needs far fewer handshakes than
/// // values.
/// for _ in 0..40 {
///     link.pump(&mut wires, false)?;
/// }
/// let mut got = vec![];
/// while let Some(v) = link.get(c, &mut wires)?.result {
///     got.push(v);
/// }
/// assert_eq!(got, (0..8).map(Value::Int).collect::<Vec<_>>());
/// assert!(link.stats().batches < 8, "fewer transactions than values");
/// assert_eq!(link.stats().batched_values, 8);
/// # Ok::<(), cosma_core::EvalError>(())
/// ```
pub struct BatchedLink {
    inner: FsmUnitRuntime,
    data_ty: Type,
    pending_wire: PortId,
    /// The `DATA` wire (payload beats stream over it under
    /// [`BusTiming::PayloadBeats`]).
    data_wire: PortId,
    /// The `B_VALID` beat-boundary marker: One while payload words
    /// occupy `DATA`, Zero during the arbitration length word. Driven
    /// only under [`BusTiming::PayloadBeats`].
    valid_wire: PortId,
    /// The `B_LAST` burst-completion strobe: One on the cycle the final
    /// payload beat crosses `DATA` (the delivery cycle), Zero
    /// otherwise. Parked consumers watch it instead of `DATA`, so a
    /// burst wakes them once at delivery rather than once per beat.
    /// Driven only under [`BusTiming::PayloadBeats`].
    last_wire: PortId,
    /// Wire-level timing model.
    timing: BusTiming,
    /// Hard bound on values per bus transaction.
    max_batch: usize,
    /// Adaptive batch target in `1..=max_batch`: starts at 1, doubled
    /// when the outgoing queue is at least this deep at batch-load time
    /// (the bus is falling behind — amortize more per arbitration),
    /// halved when the queue is at a quarter or less (light traffic —
    /// don't hold values back waiting for a big batch).
    batch_target: usize,
    /// Bound on total occupancy (outgoing + in flight + delivered).
    capacity: usize,
    /// Producer-enqueued values not yet on the bus.
    outgoing: Vec<Value>,
    /// The batch currently crossing the bus.
    in_flight: Vec<Value>,
    /// Values delivered to the consumer side, popped by `get`.
    delivered: VecDeque<Value>,
    /// Whether the producer-side wire handshake is in progress.
    sending: bool,
    /// Whether payload beats are being streamed on `DATA`
    /// ([`BusTiming::PayloadBeats`] only).
    streaming: bool,
    /// Whether the current burst's beats were pre-scheduled as timed
    /// drives ([`WireStore::write_wire_after`]) at arbitration time —
    /// the pump then only counts beats down to the delivery cycle
    /// instead of writing wires itself. `false` on stores without timed
    /// writes (the cycle-by-cycle fallback).
    scheduled: bool,
    /// Next beat index into `in_flight` while streaming.
    beat: usize,
    /// Whether the last `put`/`get` was a provable no-op (pending, no
    /// state change) — see [`BatchedLink::last_call_stable`].
    last_call_stable: bool,
    /// Recycled scratch holding one burst's wire words for the bulk
    /// schedule ([`WireStore::write_wire_train`]). Always drained back
    /// to empty within `pump`, so it is derived state and not captured.
    beat_words: Vec<Value>,
    stats: UnitStats,
}

impl fmt::Debug for BatchedLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchedLink")
            .field("outgoing", &self.outgoing.len())
            .field("in_flight", &self.in_flight.len())
            .field("delivered", &self.delivered.len())
            .finish_non_exhaustive()
    }
}

impl BatchedLink {
    /// Creates a batched link. `max_batch` bounds one bus transaction
    /// and must fit the INT16 `DATA` wire (`<= i16::MAX` — the largest
    /// length the wire can carry without wrapping); `capacity` bounds
    /// total occupancy (producer backpressure).
    ///
    /// # Errors
    ///
    /// Returns a typed [`EvalError::Service`] when `max_batch` or
    /// `capacity` is zero, or when `max_batch` exceeds `i16::MAX` —
    /// the requested batch ceiling is **never** silently shrunk.
    pub fn try_new(
        name: &str,
        data_ty: Type,
        max_batch: usize,
        capacity: usize,
    ) -> Result<Self, EvalError> {
        if max_batch == 0 {
            return Err(EvalError::Service(format!(
                "batched link {name}: batch size must be nonzero"
            )));
        }
        if capacity == 0 {
            return Err(EvalError::Service(format!(
                "batched link {name}: link capacity must be nonzero"
            )));
        }
        if max_batch > i16::MAX as usize {
            return Err(EvalError::Service(format!(
                "batched link {name}: max_batch {max_batch} exceeds the INT16 DATA \
                 wire's largest representable batch length {}",
                i16::MAX
            )));
        }
        let spec = batched_handshake_unit(name);
        let pending_wire = spec
            .wire_id("PENDING")
            .expect("batched handshake spec has a PENDING wire");
        let data_wire = spec
            .wire_id("DATA")
            .expect("batched handshake spec has a DATA wire");
        let valid_wire = spec
            .wire_id("B_VALID")
            .expect("batched handshake spec has a B_VALID wire");
        let last_wire = spec
            .wire_id("B_LAST")
            .expect("batched handshake spec has a B_LAST wire");
        Ok(BatchedLink {
            inner: FsmUnitRuntime::new(spec),
            data_ty,
            pending_wire,
            data_wire,
            valid_wire,
            last_wire,
            timing: BusTiming::LengthOnly,
            max_batch,
            batch_target: 1,
            capacity,
            outgoing: Vec::new(),
            in_flight: Vec::new(),
            delivered: VecDeque::new(),
            sending: false,
            streaming: false,
            scheduled: false,
            beat: 0,
            last_call_stable: false,
            beat_words: Vec::new(),
            stats: UnitStats::default(),
        })
    }

    /// Creates a batched link, panicking on invalid parameters — see
    /// [`BatchedLink::try_new`] for the fallible variant.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `capacity` is zero, or if `max_batch`
    /// exceeds `i16::MAX` (the INT16 `DATA` wire's largest
    /// representable batch length).
    #[must_use]
    pub fn new(name: &str, data_ty: Type, max_batch: usize, capacity: usize) -> Self {
        match Self::try_new(name, data_ty, max_batch, capacity) {
            Ok(link) => link,
            Err(e) => panic!("{e}"),
        }
    }

    /// Selects the wire-level bus timing model (builder style;
    /// [`BusTiming::LengthOnly`] is the default).
    #[must_use]
    pub fn with_timing(mut self, timing: BusTiming) -> Self {
        self.timing = timing;
        self
    }

    /// The wire-level bus timing model.
    #[must_use]
    pub fn timing(&self) -> BusTiming {
        self.timing
    }

    /// The wire-level spec (for declaring kernel signals / local wires).
    #[must_use]
    pub fn spec(&self) -> &Arc<CommUnitSpec> {
        self.inner.spec()
    }

    /// Current total occupancy across all queues.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.outgoing.len() + self.in_flight.len() + self.delivered.len()
    }

    /// The current adaptive batch target (values per bus transaction),
    /// in `1..=max_batch`. Doubled under backlog, halved under light
    /// traffic — see [`BatchedLink::pump`].
    #[must_use]
    pub fn batch_target(&self) -> usize {
        self.batch_target
    }

    /// Whether the last `put`/`get` was a provable no-op (pending
    /// outcome, nothing mutated). While true, re-calling with unchanged
    /// link state repeats the no-op, so the caller can be parked.
    #[must_use]
    pub fn last_call_stable(&self) -> bool {
        self.last_call_stable
    }

    /// The wires whose events can unblock a pending caller of `service`.
    ///
    /// * `get` — the inner bus protocol's consumer read-set minus the
    ///   `DATA` wire, plus the `PENDING` bus-request and `B_LAST`
    ///   burst-completion wires. Delivery is always flanked by a
    ///   `B_FULL` event (the arbitration handshake completing) under
    ///   [`BusTiming::LengthOnly`] and a `B_LAST` strobe (the final
    ///   payload beat) under [`BusTiming::PayloadBeats`], and `PENDING`
    ///   rises the moment a producer enqueues, so a parked consumer
    ///   cannot miss an incoming value. `DATA` is deliberately *not*
    ///   watched: under payload streaming it carries one event per
    ///   beat, which would wake every parked consumer once per beat of
    ///   a burst none of them can pop until the delivery cycle.
    /// * `put` — **empty**: a put blocks only on capacity, and capacity
    ///   is released by `get` popping the delivered queue, which is not
    ///   wire-visible. Producers blocked on backpressure must therefore
    ///   keep polling (schedulers must not park them).
    #[must_use]
    pub fn completion_signals(&self, service: &str) -> Vec<PortId> {
        match service {
            "get" => match self.timing {
                // Every payload-beats delivery is marked by the B_LAST
                // rise on its delivery cycle (hand-driven on the final
                // beat, or pre-scheduled at burst start), so a starved
                // consumer needs exactly that one wire — the B_FULL /
                // PENDING churn of the arbitration phase carries no
                // deliverable values and would only cost spurious
                // wakeups mid-burst.
                BusTiming::PayloadBeats => vec![self.last_wire],
                // Length-only delivery completes with the arbitration
                // handshake itself, whose B_FULL flanks are the only
                // reliable delivery markers. DATA is deliberately not
                // watched: the length word it carries always rides
                // with a B_FULL flank, and payload beats don't exist
                // in this mode.
                BusTiming::LengthOnly => {
                    let mut wires = self.inner.completion_signals("get");
                    wires.retain(|w| *w != self.data_wire);
                    wires.push(self.pending_wire);
                    wires.sort_unstable();
                    wires.dedup();
                    wires
                }
            },
            _ => vec![],
        }
    }

    /// The wires whose events require pumping a quiescent link: only
    /// the `PENDING` bus-request wire is written by anyone other than
    /// the link itself (a producer's `put` raises it; every handshake,
    /// beat and marker wire is driven by the link's own pump — or its
    /// pre-scheduled burst drives — on cycles the link is already
    /// active). Schedulers use this as the parked link's wake set — and
    /// as the activation gate feeding [`BatchedLink::pump`]'s
    /// `inputs_changed` — instead of watching the full wire table.
    #[must_use]
    pub fn pump_wake_signals(&self) -> Vec<PortId> {
        vec![self.pending_wire]
    }

    /// Validates a `put` payload against the link's data type: the value
    /// kind must match (an `Int` link cannot carry a `Bit`); integer
    /// widths are clamped like every other port/var write.
    fn check_payload(&self, v: &Value) -> Result<(), EvalError> {
        let clamped = self.data_ty.clamp(v.clone());
        if !self.data_ty.admits(&clamped) {
            return Err(EvalError::Service(format!(
                "batched link {}: put of {v:?} does not fit data type {}",
                self.inner.spec().name(),
                self.data_ty
            )));
        }
        Ok(())
    }

    /// Dispatches one service activation by name — the single call entry
    /// point used by both the immediate-application path and the
    /// commit-phase replay. A malformed call (unknown service, wrong
    /// arity, payload of the wrong kind) surfaces as a typed
    /// [`EvalError::Service`], never a panic.
    ///
    /// # Errors
    ///
    /// Typed validation errors as above; wire-store errors propagate.
    pub fn call(
        &mut self,
        caller: CallerId,
        service: &str,
        args: &[Value],
        wires: &mut dyn WireStore,
    ) -> Result<ServiceOutcome, EvalError> {
        match (service, args) {
            ("put", [v]) => {
                self.check_payload(v)?;
                self.put(caller, v.clone(), wires)
            }
            ("get", []) => self.get(caller, wires),
            ("put" | "get", _) => Err(EvalError::Service(format!(
                "batched link {}: service {service} called with {} argument(s)",
                self.inner.spec().name(),
                args.len()
            ))),
            (other, _) => Err(EvalError::Service(format!(
                "batched link {} has no service {other}",
                self.inner.spec().name()
            ))),
        }
    }

    /// Speculative (read-only) variant of [`BatchedLink::call`]: answers
    /// the outcome the call would produce against the current committed
    /// queue state, without mutating anything, and records the queue
    /// operation as a journal entry ([`QueueDelta`]) that
    /// [`BatchedLink::commit_peeked`] can install at commit time without
    /// re-dispatching the call. Exact while no other same-cycle call
    /// moves the shared queues — a two-phase scheduler validates the
    /// answer again at commit time.
    ///
    /// # Errors
    ///
    /// Same typed validation as [`BatchedLink::call`].
    pub fn peek_call(&self, service: &str, args: &[Value]) -> Result<PeekedCall, EvalError> {
        match (service, args) {
            ("put", [v]) => {
                self.check_payload(v)?;
                if self.occupancy() >= self.capacity {
                    // Rejected by backpressure: a provable no-op.
                    Ok(PeekedCall {
                        outcome: ServiceOutcome::pending(),
                        stable: true,
                        delta: Some(PeekDelta::Queue(QueueDelta::PutFull(
                            self.data_ty.clamp(v.clone()),
                        ))),
                    })
                } else {
                    Ok(PeekedCall {
                        outcome: ServiceOutcome::done(),
                        stable: false,
                        delta: Some(PeekDelta::Queue(QueueDelta::Put(
                            self.data_ty.clamp(v.clone()),
                        ))),
                    })
                }
            }
            ("get", []) => match self.delivered.front() {
                Some(v) => Ok(PeekedCall {
                    outcome: ServiceOutcome::done_with(v.clone()),
                    stable: false,
                    delta: Some(PeekDelta::Queue(QueueDelta::Get(v.clone()))),
                }),
                None => Ok(PeekedCall {
                    outcome: ServiceOutcome::pending(),
                    stable: true,
                    delta: Some(PeekDelta::Queue(QueueDelta::GetEmpty)),
                }),
            },
            ("put" | "get", _) => Err(EvalError::Service(format!(
                "batched link {}: service {service} called with {} argument(s)",
                self.inner.spec().name(),
                args.len()
            ))),
            (other, _) => Err(EvalError::Service(format!(
                "batched link {} has no service {other}",
                self.inner.spec().name()
            ))),
        }
    }

    /// Commits a [`BatchedLink::peek_call`] result without re-dispatching
    /// the call: validates the journal entry's occupancy fingerprint —
    /// the committed queues must still answer the call exactly as peeked
    /// (a `put` still has room / is still rejected, a `get` still fronts
    /// the peeked value / is still empty) — then installs the queue
    /// operation and performs the bookkeeping [`BatchedLink::call`]
    /// would have performed. Mirrors
    /// [`FsmUnitRuntime::commit_peeked`](crate::FsmUnitRuntime::commit_peeked).
    ///
    /// Returns `false` (having changed nothing) when the fingerprint no
    /// longer matches or the peek carries no queue journal — the caller
    /// must fall back to a full [`BatchedLink::call`].
    ///
    /// # Errors
    ///
    /// Propagates wire-store errors from raising the `PENDING` wire.
    pub fn commit_peeked(
        &mut self,
        caller: CallerId,
        service: &str,
        peeked: PeekedCall,
        wires: &mut dyn WireStore,
    ) -> Result<bool, EvalError> {
        let Some(PeekDelta::Queue(delta)) = peeked.delta else {
            return Ok(false);
        };
        let valid = match (&delta, service) {
            (QueueDelta::Put(_), "put") => self.occupancy() < self.capacity,
            (QueueDelta::PutFull(_), "put") => self.occupancy() >= self.capacity,
            (QueueDelta::Get(v), "get") => self.delivered.front() == Some(v),
            (QueueDelta::GetEmpty, "get") => self.delivered.is_empty(),
            _ => false,
        };
        if !valid {
            return Ok(false);
        }
        // The fingerprint proved the committed queues still answer the
        // call exactly as peeked, so the install IS the real call —
        // delegate to it, keeping every stat/wire side effect in one
        // place instead of a second copy that can drift.
        match delta {
            QueueDelta::Put(v) | QueueDelta::PutFull(v) => {
                self.put(caller, v, wires)?;
            }
            QueueDelta::Get(_) | QueueDelta::GetEmpty => {
                self.get(caller, wires)?;
            }
        }
        Ok(true)
    }

    /// Standalone commit entry point of the two-phase model: applies a
    /// module's buffered call records in order (see
    /// [`crate::FsmUnitRuntime::apply_calls`] for the ordering contract
    /// and its relationship to the backplane's validating per-call
    /// commit, which routes through [`BatchedLink::call`]) and returns
    /// the actual outcomes for validation.
    ///
    /// # Errors
    ///
    /// Same typed validation as [`BatchedLink::call`].
    pub fn apply_calls(
        &mut self,
        caller: CallerId,
        calls: &[DeferredCall],
        wires: &mut dyn WireStore,
    ) -> Result<Vec<ServiceOutcome>, EvalError> {
        calls
            .iter()
            .map(|c| self.call(caller, &c.service, &c.args, wires))
            .collect()
    }

    /// Enqueues one value for transport. Completes immediately unless the
    /// link is at capacity; raises the `PENDING` bus-request wire.
    ///
    /// # Errors
    ///
    /// Propagates wire-store errors.
    pub fn put(
        &mut self,
        _caller: CallerId,
        v: Value,
        wires: &mut dyn WireStore,
    ) -> Result<ServiceOutcome, EvalError> {
        let full = self.occupancy() >= self.capacity;
        let stats = self.stats.service_mut("put");
        stats.calls += 1;
        if full {
            // Rejected by backpressure: nothing changed, so the call is
            // a provable no-op — but note that capacity release is not
            // wire-visible (`get` pops without wire traffic), which is
            // why completion_signals("put") is empty and blocked
            // producers are never parked.
            self.last_call_stable = true;
            return Ok(ServiceOutcome::pending());
        }
        self.last_call_stable = false;
        stats.completions += 1;
        self.outgoing.push(self.data_ty.clamp(v));
        if wires.read_wire(self.pending_wire)? != Value::Bit(Bit::One) {
            wires.write_wire(self.pending_wire, Value::Bit(Bit::One))?;
        }
        Ok(ServiceOutcome::done())
    }

    /// Pops one delivered value, if any.
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` for interface symmetry with FSM
    /// services.
    pub fn get(
        &mut self,
        _caller: CallerId,
        _wires: &mut dyn WireStore,
    ) -> Result<ServiceOutcome, EvalError> {
        let stats = self.stats.service_mut("get");
        stats.calls += 1;
        match self.delivered.pop_front() {
            Some(v) => {
                self.last_call_stable = false;
                stats.completions += 1;
                Ok(ServiceOutcome::done_with(v))
            }
            None => {
                // Empty: a no-op. Delivery always follows wire-level
                // handshake activity, so a parked consumer re-armed by
                // completion_signals("get") cannot miss it.
                self.last_call_stable = true;
                Ok(ServiceOutcome::pending())
            }
        }
    }

    /// Completes the in-flight payload stream: retires the burst,
    /// records its beats and delivers the values. Beats are recorded
    /// with the completed transaction (one per value), so
    /// `payload_beats == batched_values` holds exactly even when a
    /// bounded run ends with a batch still mid-stream.
    fn complete_stream(&mut self) {
        self.streaming = false;
        self.scheduled = false;
        self.beat = 0;
        let n = self.in_flight.len() as u64;
        self.stats.payload_beats += n;
        self.stats.record_batch(n);
        self.delivered.extend(self.in_flight.drain(..));
    }

    /// One clock activation of the link's bus machinery: loads a batch
    /// onto the bus, advances the wire handshake, streams payload beats
    /// (under [`BusTiming::PayloadBeats`]), delivers completed batches,
    /// steps the controller and manages the `PENDING` line.
    ///
    /// Returns whether anything happened (or could happen next cycle) —
    /// `false` means the link is provably idle and need not be pumped
    /// again until a wire input changes or `put` raises `PENDING`.
    ///
    /// # Errors
    ///
    /// Propagates protocol evaluation errors.
    pub fn pump(
        &mut self,
        wires: &mut dyn WireStore,
        inputs_changed: bool,
    ) -> Result<bool, EvalError> {
        let mut active = false;
        if self.in_flight.is_empty() && !self.outgoing.is_empty() && !self.sending {
            // Adapt the batch target to the observed queue depth before
            // loading: a backlog at least one target deep means the bus
            // is the bottleneck (amortize more values per arbitration);
            // a queue at a quarter or less means traffic is light (ship
            // small batches promptly instead of batching latency in).
            let depth = self.outgoing.len();
            if depth >= self.batch_target {
                self.batch_target = (self.batch_target * 2).min(self.max_batch);
            } else if depth <= self.batch_target / 4 {
                self.batch_target = (self.batch_target / 2).max(1);
            }
            let take = depth.min(self.batch_target);
            self.in_flight.extend(self.outgoing.drain(..take));
            self.sending = true;
            active = true;
        }
        if self.sending {
            // The arbitration handshake; DATA holds the batch length
            // (fits INT16: max_batch is bounded by i16::MAX).
            let len = self.in_flight.len() as i64;
            let out = self
                .inner
                .call(BUS_PRODUCER, "put", &[Value::Int(len)], wires)?;
            active = true;
            if out.done {
                self.sending = false;
            }
        }
        let mut streamed = false;
        if self.streaming && !self.sending {
            // PayloadBeats: one wire word per value per cycle on DATA —
            // the batch occupies the bus for as many beats as it
            // carries values, and a cycle-accurate observer sees every
            // word cross. B_VALID marks the beat cycles so the observer
            // can delimit payload from the arbitration length word;
            // B_LAST strobes the final beat (the delivery cycle).
            if self.scheduled {
                // Pre-scheduled burst: the kernel drives the beats, so
                // the pump only counts the burst down — no wire I/O
                // until the delivery cycle. (Staying *active* through
                // the countdown is deliberate: parking per burst was
                // measured slower — the shard watcher's sensitivity
                // rebuild and clock-demand churn per park/resume cost
                // more than the trivial countdown steps.)
                streamed = true;
                self.beat += 1;
                active = true;
                if self.beat >= self.in_flight.len() {
                    self.complete_stream();
                }
            } else {
                // Cycle-by-cycle fallback for stores without timed
                // writes: drive this cycle's beat by hand.
                let word = wire_word(&self.in_flight[self.beat]);
                wires.write_wire(self.data_wire, word)?;
                if wires.read_wire(self.valid_wire)? != Value::Bit(Bit::One) {
                    wires.write_wire(self.valid_wire, Value::Bit(Bit::One))?;
                }
                if self.beat + 1 >= self.in_flight.len() {
                    wires.write_wire(self.last_wire, Value::Bit(Bit::One))?;
                }
                streamed = true;
                self.beat += 1;
                active = true;
                if self.beat >= self.in_flight.len() {
                    self.complete_stream();
                }
            }
        } else if !self.in_flight.is_empty() && !self.sending {
            let out = self.inner.call(BUS_CONSUMER, "get", &[], wires)?;
            active = true;
            if out.done {
                match self.timing {
                    BusTiming::LengthOnly => {
                        let n = self.in_flight.len() as u64;
                        self.stats.record_batch(n);
                        self.delivered.extend(self.in_flight.drain(..));
                    }
                    BusTiming::PayloadBeats => {
                        // Arbitration granted: the payload itself still
                        // has to cross, one beat per cycle, starting
                        // next activation. On a store with timed writes
                        // the whole burst is pre-scheduled here — DATA
                        // beat k lands k+1 cycles out, the B_VALID
                        // window spans the beats, B_LAST rises on the
                        // delivery cycle — and the link then parks
                        // until the B_LAST wake; otherwise the beats
                        // are driven cycle by cycle above. B_LAST's
                        // fall is *not* scheduled: the pump drops it on
                        // the step after delivery (same timing as the
                        // fallback path), keeping it a level a late
                        // wake cannot miss.
                        let n = self.in_flight.len() as u64;
                        self.scheduled =
                            wires.write_wire_after(self.valid_wire, Value::Bit(Bit::One), 1)?;
                        if self.scheduled {
                            // Land the DATA beats as one train — a
                            // single bulk pass over the kernel's timer
                            // wheel instead of n separate schedules.
                            // The scratch is recycled across bursts so
                            // a warm streaming link allocates nothing.
                            debug_assert!(self.beat_words.is_empty());
                            self.beat_words.extend(self.in_flight.iter().map(wire_word));
                            let bulk =
                                wires.write_wire_train(self.data_wire, 1, 1, &self.beat_words)?;
                            if !bulk {
                                // Train-less store (but timed writes
                                // work, per the probe above): schedule
                                // the beats one by one.
                                for (k, v) in self.beat_words.iter().enumerate() {
                                    wires.write_wire_after(
                                        self.data_wire,
                                        v.clone(),
                                        k as u64 + 1,
                                    )?;
                                }
                            }
                            self.beat_words.clear();
                            wires.write_wire_after(
                                self.valid_wire,
                                Value::Bit(Bit::Zero),
                                n + 1,
                            )?;
                            wires.write_wire_after(self.last_wire, Value::Bit(Bit::One), n)?;
                        }
                        self.streaming = true;
                        self.beat = 0;
                    }
                }
            }
        }
        if !streamed && !self.scheduled && self.timing == BusTiming::PayloadBeats {
            if wires.read_wire(self.valid_wire)? == Value::Bit(Bit::One) {
                // First beat-free cycle after a batch's last beat: the
                // bus is back to (or about to carry) an arbitration
                // length word, so the beat marker drops. The last
                // beat's One thus stays observable for exactly one full
                // cycle, like every other beat. (Pre-scheduled bursts
                // schedule this drop themselves.)
                wires.write_wire(self.valid_wire, Value::Bit(Bit::Zero))?;
                active = true;
            }
            if wires.read_wire(self.last_wire)? == Value::Bit(Bit::One) {
                wires.write_wire(self.last_wire, Value::Bit(Bit::Zero))?;
                active = true;
            }
        }
        if self.outgoing.is_empty()
            && self.in_flight.is_empty()
            && wires.read_wire(self.pending_wire)? == Value::Bit(Bit::One)
        {
            wires.write_wire(self.pending_wire, Value::Bit(Bit::Zero))?;
            active = true;
        }
        let stepped = self
            .inner
            .step_controller_if_active(wires, inputs_changed || active)?;
        Ok(active || stepped)
    }

    /// Merged statistics: batch counters plus the inner controller's
    /// step/skip counts (the wire-level bus sessions are internal and not
    /// reported as services).
    #[must_use]
    pub fn stats(&self) -> UnitStats {
        let mut s = self.stats.clone();
        s.controller_steps = self.inner.stats().controller_steps;
        s.controller_skips = self.inner.stats().controller_skips;
        s
    }

    /// Captures all mutable link state into a [`BatchedLinkState`]: the
    /// inner bus-protocol runtime, the three payload queues, the
    /// handshake/streaming phase and the adaptive batch target.
    #[must_use]
    pub fn capture_state(&self) -> BatchedLinkState {
        BatchedLinkState {
            inner: self.inner.capture_state(),
            batch_target: self.batch_target,
            outgoing: self.outgoing.clone(),
            in_flight: self.in_flight.clone(),
            delivered: self.delivered.iter().cloned().collect(),
            sending: self.sending,
            streaming: self.streaming,
            scheduled: self.scheduled,
            beat: self.beat,
            last_call_stable: self.last_call_stable,
            stats: self.stats.clone(),
        }
    }

    /// Restores a previously captured [`BatchedLinkState`]. The target
    /// must be configured identically to the link that produced the
    /// capture (same spec, data type, timing, `max_batch`, capacity) —
    /// only mutable state is restored.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::Service`] (leaving this link untouched) if
    /// the captured batch target exceeds this link's `max_batch` or the
    /// captured occupancy exceeds its capacity — the signature of a
    /// capture from a differently-configured link.
    pub fn restore_state(&mut self, state: &BatchedLinkState) -> Result<(), EvalError> {
        if state.batch_target > self.max_batch {
            return Err(EvalError::Service(format!(
                "batched link {}: snapshot batch target {} exceeds max_batch {}",
                self.inner.spec().name(),
                state.batch_target,
                self.max_batch
            )));
        }
        if state.occupancy() > self.capacity {
            return Err(EvalError::Service(format!(
                "batched link {}: snapshot occupancy {} exceeds capacity {}",
                self.inner.spec().name(),
                state.occupancy(),
                self.capacity
            )));
        }
        self.inner.restore_state(&state.inner)?;
        self.batch_target = state.batch_target;
        self.outgoing.clone_from(&state.outgoing);
        self.in_flight.clone_from(&state.in_flight);
        self.delivered.clear();
        self.delivered.extend(state.delivered.iter().cloned());
        self.sending = state.sending;
        self.streaming = state.streaming;
        self.scheduled = state.scheduled;
        self.beat = state.beat;
        self.last_call_stable = state.last_call_stable;
        self.stats.clone_from(&state.stats);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::LocalWires;

    fn fresh() -> (BatchedLink, LocalWires) {
        let link = BatchedLink::new("bus", Type::INT16, 8, 64);
        let wires = LocalWires::new(link.spec());
        (link, wires)
    }

    #[test]
    fn one_handshake_carries_many_values() {
        let (mut link, mut wires) = fresh();
        let p = CallerId(1);
        for i in 0..5 {
            assert!(link.put(p, Value::Int(i), &mut wires).unwrap().done);
        }
        for _ in 0..40 {
            link.pump(&mut wires, false).unwrap();
        }
        let mut got = vec![];
        while let Some(v) = link.get(CallerId(2), &mut wires).unwrap().result {
            got.push(v.as_int().unwrap());
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        let st = link.stats();
        assert!(
            st.batches < 5,
            "the adaptive target amortizes a queued burst into fewer \
             transactions than values (got {})",
            st.batches
        );
        assert_eq!(st.batched_values, 5);
        assert!(st.max_batch_len >= 2, "the target ramped past 1");
    }

    #[test]
    fn batches_split_at_max_batch() {
        let mut link = BatchedLink::new("bus", Type::INT16, 3, 64);
        let mut wires = LocalWires::new(link.spec());
        let p = CallerId(1);
        for i in 0..7 {
            assert!(link.put(p, Value::Int(i), &mut wires).unwrap().done);
        }
        for _ in 0..64 {
            link.pump(&mut wires, false).unwrap();
        }
        let mut got = vec![];
        while let Some(v) = link.get(CallerId(2), &mut wires).unwrap().result {
            got.push(v.as_int().unwrap());
        }
        assert_eq!(got, (0..7).collect::<Vec<_>>(), "order preserved");
        let st = link.stats();
        assert_eq!(st.batches, 3, "7 values ramping 2+3+2 at max_batch 3");
        assert_eq!(st.batched_values, 7);
        assert_eq!(st.max_batch_len, 3, "the ceiling holds");
    }

    #[test]
    fn capacity_applies_backpressure() {
        let mut link = BatchedLink::new("bus", Type::INT16, 4, 2);
        let mut wires = LocalWires::new(link.spec());
        let p = CallerId(1);
        assert!(link.put(p, Value::Int(1), &mut wires).unwrap().done);
        assert!(link.put(p, Value::Int(2), &mut wires).unwrap().done);
        assert!(
            !link.put(p, Value::Int(3), &mut wires).unwrap().done,
            "at capacity"
        );
        // Drain one, space frees up.
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        assert!(link.get(CallerId(2), &mut wires).unwrap().done);
        assert!(link.put(p, Value::Int(3), &mut wires).unwrap().done);
    }

    #[test]
    fn pending_wire_tracks_queue_state() {
        let (mut link, mut wires) = fresh();
        let pending = link.spec().wire_id("PENDING").unwrap();
        assert_eq!(wires.value(pending), &Value::Bit(Bit::Zero));
        link.put(CallerId(1), Value::Int(9), &mut wires).unwrap();
        assert_eq!(
            wires.value(pending),
            &Value::Bit(Bit::One),
            "bus request raised"
        );
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        assert_eq!(
            wires.value(pending),
            &Value::Bit(Bit::Zero),
            "bus request lowered once the queues drained"
        );
        // Delivered-but-unconsumed values need no pumping: the link is idle.
        assert!(!link.pump(&mut wires, false).unwrap(), "provably idle");
        assert_eq!(
            link.get(CallerId(2), &mut wires).unwrap().result,
            Some(Value::Int(9))
        );
    }

    #[test]
    fn values_clamped_to_data_type() {
        let (mut link, mut wires) = fresh();
        link.put(CallerId(1), Value::Int(40_000), &mut wires)
            .unwrap();
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        let got = link.get(CallerId(2), &mut wires).unwrap().result.unwrap();
        assert_eq!(
            got,
            Value::Int(40_000 - 65_536),
            "wrapped into INT16 range, like every other port/var write"
        );
    }

    #[test]
    fn idle_link_is_stable_until_put() {
        let (mut link, mut wires) = fresh();
        // Settle the controller.
        for _ in 0..4 {
            link.pump(&mut wires, false).unwrap();
        }
        assert!(!link.pump(&mut wires, false).unwrap(), "idle link");
        link.put(CallerId(1), Value::Int(1), &mut wires).unwrap();
        assert!(link.pump(&mut wires, false).unwrap(), "work to do again");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_batch_panics() {
        let _ = BatchedLink::new("bus", Type::INT16, 0, 4);
    }

    #[test]
    fn batch_target_adapts_to_queue_depth() {
        let mut link = BatchedLink::new("bus", Type::INT16, 8, 64);
        let mut wires = LocalWires::new(link.spec());
        let p = CallerId(1);
        assert_eq!(
            link.batch_target(),
            1,
            "starts at 1 — light traffic ships immediately, never a \
             max-sized first batch"
        );
        // A sustained backlog ramps the target up to the ceiling (the
        // trailing small load halves it back — that's the adaptation
        // working, so the proof of the ramp is the max batch shipped).
        for i in 0..32 {
            link.put(p, Value::Int(i), &mut wires).unwrap();
        }
        for _ in 0..120 {
            link.pump(&mut wires, false).unwrap();
        }
        assert_eq!(
            link.stats().max_batch_len,
            8,
            "ceiling reached, not exceeded"
        );
        // Drain, then a single queued value halves it back down.
        while link.get(CallerId(2), &mut wires).unwrap().result.is_some() {}
        for _ in 0..3 {
            link.put(p, Value::Int(0), &mut wires).unwrap();
            for _ in 0..12 {
                link.pump(&mut wires, false).unwrap();
            }
            while link.get(CallerId(2), &mut wires).unwrap().result.is_some() {}
        }
        assert!(
            link.batch_target() <= 2,
            "halved under light traffic (target {})",
            link.batch_target()
        );
    }

    #[test]
    fn first_put_ships_immediately_as_a_small_batch() {
        // Regression: the target used to start at max_batch, so the
        // very first transaction shipped a maximal batch even under
        // light traffic — a lone early value must not be held hostage
        // to a huge first batch.
        let mut link = BatchedLink::new("bus", Type::INT16, 512, 1024);
        let mut wires = LocalWires::new(link.spec());
        link.put(CallerId(1), Value::Int(7), &mut wires).unwrap();
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        assert_eq!(
            link.get(CallerId(2), &mut wires).unwrap().result,
            Some(Value::Int(7)),
            "the single value crossed within one short handshake"
        );
        let st = link.stats();
        assert_eq!(st.batches, 1);
        assert_eq!(
            st.max_batch_len, 1,
            "first transaction sized by traffic, not by the ceiling"
        );
    }

    #[test]
    fn batch_length_histogram_buckets_by_power_of_two() {
        let (mut link, mut wires) = fresh(); // max_batch 8
        let p = CallerId(1);
        // A queued burst of 5 ramps 2 + 3 (buckets 1 and 1).
        for i in 0..5 {
            link.put(p, Value::Int(i), &mut wires).unwrap();
        }
        for _ in 0..40 {
            link.pump(&mut wires, false).unwrap();
        }
        // Then a lone value: a 1-batch (bucket 0).
        link.put(p, Value::Int(9), &mut wires).unwrap();
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        let st = link.stats();
        assert_eq!(st.batches, 3);
        assert_eq!(
            st.batch_len_hist,
            vec![1, 2],
            "one 1-batch, a 2-batch and a 3-batch"
        );
        assert_eq!(
            st.batch_len_hist.iter().sum::<u64>(),
            st.batches,
            "histogram accounts for every transaction"
        );
    }

    #[test]
    fn completion_signals_name_consumer_wake_wires() {
        let (link, _) = fresh();
        let get_wires = link.completion_signals("get");
        let pending = link.spec().wire_id("PENDING").unwrap();
        let b_full = link.spec().wire_id("B_FULL").unwrap();
        assert!(get_wires.contains(&pending), "put raises PENDING");
        assert!(get_wires.contains(&b_full), "delivery rides on B_FULL");
        assert!(
            link.completion_signals("put").is_empty(),
            "capacity release is not wire-visible: blocked puts must poll"
        );
    }

    #[test]
    fn call_dispatch_validates_and_matches_direct_calls() {
        let (mut link, mut wires) = fresh();
        let p = CallerId(1);
        assert!(
            link.call(p, "put", &[Value::Int(3)], &mut wires)
                .unwrap()
                .done
        );
        // Typed errors for malformed calls: unknown service, bad arity,
        // wrong payload kind — never a panic.
        assert!(link.call(p, "bogus", &[], &mut wires).is_err());
        assert!(link.call(p, "put", &[], &mut wires).is_err());
        assert!(link.call(p, "get", &[Value::Int(1)], &mut wires).is_err());
        let err = link
            .call(p, "put", &[Value::Bool(true)], &mut wires)
            .unwrap_err();
        assert!(
            err.to_string().contains("does not fit"),
            "kind mismatch is typed: {err}"
        );
    }

    #[test]
    fn peek_matches_real_call_on_committed_state() {
        let (mut link, mut wires) = fresh();
        let p = CallerId(1);
        let c = CallerId(2);
        // Empty link: get peeks pending+stable; put peeks done.
        let peek = link.peek_call("get", &[]).unwrap();
        assert_eq!(peek.outcome, ServiceOutcome::pending());
        assert!(peek.stable);
        let peek = link.peek_call("put", &[Value::Int(5)]).unwrap();
        let real = link.put(p, Value::Int(5), &mut wires).unwrap();
        assert_eq!(peek.outcome, real);
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        // Delivered value: peek names it without popping.
        let peek = link.peek_call("get", &[]).unwrap();
        assert_eq!(peek.outcome, ServiceOutcome::done_with(Value::Int(5)));
        let real = link.get(c, &mut wires).unwrap();
        assert_eq!(peek.outcome, real);
        // At capacity: put peeks pending+stable.
        let mut tight = BatchedLink::new("bus", Type::INT16, 4, 1);
        let mut tw = LocalWires::new(tight.spec());
        tight.put(p, Value::Int(1), &mut tw).unwrap();
        let peek = tight.peek_call("put", &[Value::Int(2)]).unwrap();
        assert_eq!(peek.outcome, ServiceOutcome::pending());
        assert!(peek.stable);
    }

    #[test]
    fn queue_journal_installs_peeked_ops_without_redispatch() {
        // The commit-phase journal: peeked put/get ops install directly
        // after the occupancy fingerprint check, with bookkeeping
        // identical to the full `call` dispatch.
        let (mut link, mut wires) = fresh();
        let p = CallerId(1);
        let c = CallerId(2);
        let peek = link.peek_call("put", &[Value::Int(42)]).unwrap();
        assert!(
            link.commit_peeked(p, "put", peek, &mut wires).unwrap(),
            "fresh journal installs"
        );
        assert_eq!(link.occupancy(), 1, "value enqueued by the journal");
        assert!(!link.last_call_stable());
        assert_eq!(link.stats().services["put"].calls, 1);
        assert_eq!(link.stats().services["put"].completions, 1);
        assert_eq!(
            wires.value(link.spec().wire_id("PENDING").unwrap()),
            &Value::Bit(Bit::One),
            "journal install raises the bus request, like call"
        );
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        // A peeked get installs the pop.
        let peek = link.peek_call("get", &[]).unwrap();
        assert_eq!(peek.outcome, ServiceOutcome::done_with(Value::Int(42)));
        assert!(link.commit_peeked(c, "get", peek, &mut wires).unwrap());
        assert_eq!(link.occupancy(), 0, "journal popped the delivered value");
        assert_eq!(link.stats().services["get"].completions, 1);
        // A blocked-get journal entry installs as a no-op.
        let peek = link.peek_call("get", &[]).unwrap();
        assert!(link.commit_peeked(c, "get", peek, &mut wires).unwrap());
        assert!(link.last_call_stable(), "no-op install parks the caller");
    }

    #[test]
    fn stale_queue_journal_is_rejected() {
        // The fingerprint check: a journal entry peeked against queue
        // state that a same-cycle commit has since moved must NOT
        // install — the caller falls back to the full dispatch.
        let (mut link, mut wires) = fresh();
        let p = CallerId(1);
        let c = CallerId(2);
        link.put(p, Value::Int(1), &mut wires).unwrap();
        link.put(p, Value::Int(2), &mut wires).unwrap();
        for _ in 0..40 {
            link.pump(&mut wires, false).unwrap();
        }
        // Both consumers peeked the same front value; the first commit
        // pops it, so the second journal is stale.
        let peek_a = link.peek_call("get", &[]).unwrap();
        let peek_b = link.peek_call("get", &[]).unwrap();
        assert!(link.commit_peeked(c, "get", peek_a, &mut wires).unwrap());
        assert!(
            !link.commit_peeked(c, "get", peek_b, &mut wires).unwrap(),
            "front moved: stale journal rejected"
        );
        // A stale put journal: fill to capacity between peek and commit.
        let mut tight = BatchedLink::new("bus", Type::INT16, 4, 1);
        let mut tw = LocalWires::new(tight.spec());
        let peek = tight.peek_call("put", &[Value::Int(9)]).unwrap();
        tight.put(p, Value::Int(8), &mut tw).unwrap();
        assert!(
            !tight.commit_peeked(p, "put", peek, &mut tw).unwrap(),
            "capacity verdict changed: stale journal rejected"
        );
    }

    #[test]
    fn max_batch_overflow_is_a_typed_error_not_a_silent_clamp() {
        // Regression: `new` used to silently clamp max_batch to
        // i16::MAX (the DATA wire width), shrinking the caller's
        // requested ceiling without telling anyone.
        let err = BatchedLink::try_new("bus", Type::INT16, i16::MAX as usize + 1, 64).unwrap_err();
        assert!(
            err.to_string().contains("exceeds"),
            "typed, descriptive error: {err}"
        );
        assert!(BatchedLink::try_new("bus", Type::INT16, i16::MAX as usize, 64).is_ok());
        assert!(BatchedLink::try_new("bus", Type::INT16, 0, 64).is_err());
        assert!(BatchedLink::try_new("bus", Type::INT16, 4, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn max_batch_overflow_panics_in_new() {
        let _ = BatchedLink::new("bus", Type::INT16, i16::MAX as usize + 1, 64);
    }

    #[test]
    fn payload_beats_streams_one_word_per_value_per_cycle() {
        // PayloadBeats: after the arbitration handshake every value
        // crosses the DATA wire, one beat per pump activation — a
        // cycle-accurate observer sees each word, and bus occupancy
        // (payload_beats) equals the value count.
        let mut link =
            BatchedLink::new("bus", Type::INT16, 8, 64).with_timing(BusTiming::PayloadBeats);
        let mut wires = LocalWires::new(link.spec());
        let data = link.spec().wire_id("DATA").unwrap();
        let p = CallerId(1);
        for v in [11, 22, 33] {
            link.put(p, Value::Int(v), &mut wires).unwrap();
        }
        let mut seen = vec![];
        for _ in 0..64 {
            link.pump(&mut wires, false).unwrap();
            if let Value::Int(v) = wires.value(data) {
                seen.push(*v);
            }
        }
        // Every payload word was visible on DATA in order (interleaved
        // with the handshake's batch-length words).
        let mut idx = 0;
        for want in [11i64, 22, 33] {
            while idx < seen.len() && seen[idx] != want {
                idx += 1;
            }
            assert!(
                idx < seen.len(),
                "word {want} never crossed the DATA wire: {seen:?}"
            );
        }
        let mut got = vec![];
        while let Some(v) = link.get(CallerId(2), &mut wires).unwrap().result {
            got.push(v.as_int().unwrap());
        }
        assert_eq!(got, vec![11, 22, 33], "delivered values bit-identical");
        let st = link.stats();
        assert_eq!(
            st.payload_beats, st.batched_values,
            "one beat per value: occupancy scales linearly with batch length"
        );
        assert_eq!(st.batched_values, 3);
    }

    #[test]
    fn b_valid_marks_exactly_the_payload_beats() {
        // Sampling B_VALID once per pump cycle, the number of cycles it
        // reads One equals the payload beat count — the wire
        // self-describes beat boundaries to a snooping observer. During
        // every non-beat cycle (arbitration length word included) it
        // reads Zero.
        let mut link =
            BatchedLink::new("bus", Type::INT16, 8, 64).with_timing(BusTiming::PayloadBeats);
        let mut wires = LocalWires::new(link.spec());
        let valid = link.spec().wire_id("B_VALID").unwrap();
        let p = CallerId(1);
        let c = CallerId(2);
        let mut asserted = 0u64;
        let mut sent = 0i64;
        let mut got = 0;
        for _ in 0..400 {
            if sent < 11 && link.put(p, Value::Int(sent), &mut wires).unwrap().done {
                sent += 1;
            }
            link.pump(&mut wires, false).unwrap();
            if wires.value(valid) == &Value::Bit(Bit::One) {
                asserted += 1;
            }
            if link.get(c, &mut wires).unwrap().done {
                got += 1;
            }
        }
        assert_eq!(got, 11, "all values delivered");
        let st = link.stats();
        assert!(st.payload_beats > 0, "beats streamed");
        assert_eq!(
            asserted, st.payload_beats,
            "B_VALID assertions count exactly the payload beats"
        );
        // LengthOnly never drives the marker.
        let mut link = BatchedLink::new("bus", Type::INT16, 8, 64);
        let mut wires = LocalWires::new(link.spec());
        link.put(p, Value::Int(1), &mut wires).unwrap();
        for _ in 0..40 {
            link.pump(&mut wires, false).unwrap();
            assert_eq!(wires.value(valid), &Value::Bit(Bit::Zero));
        }
    }

    #[test]
    fn payload_beats_and_length_only_deliver_identical_values() {
        let mk = |timing| {
            let mut link = BatchedLink::new("bus", Type::INT16, 4, 64).with_timing(timing);
            let mut wires = LocalWires::new(link.spec());
            let p = CallerId(1);
            let c = CallerId(2);
            let mut got = vec![];
            let mut sent = 0i64;
            for _ in 0..200 {
                if sent < 13 && link.put(p, Value::Int(sent * 3), &mut wires).unwrap().done {
                    sent += 1;
                }
                link.pump(&mut wires, false).unwrap();
                if let Some(v) = link.get(c, &mut wires).unwrap().result {
                    got.push(v.as_int().unwrap());
                }
            }
            (got, link.stats())
        };
        let (fast, fast_stats) = mk(BusTiming::LengthOnly);
        let (beats, beat_stats) = mk(BusTiming::PayloadBeats);
        assert_eq!(fast, beats, "delivered-value semantics bit-identical");
        assert_eq!(fast, (0..13).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(fast_stats.payload_beats, 0, "LengthOnly streams nothing");
        assert_eq!(
            beat_stats.payload_beats, beat_stats.batched_values,
            "PayloadBeats pays one bus cycle per value"
        );
    }

    #[test]
    fn blocked_get_is_stable_until_delivery() {
        let (mut link, mut wires) = fresh();
        assert!(!link.get(CallerId(2), &mut wires).unwrap().done);
        assert!(link.last_call_stable(), "empty get is a provable no-op");
        link.put(CallerId(1), Value::Int(4), &mut wires).unwrap();
        assert!(!link.last_call_stable(), "put mutated the link");
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        assert!(link.get(CallerId(2), &mut wires).unwrap().done);
        assert!(!link.last_call_stable(), "a completing get pops state");
    }

    #[test]
    fn capture_restore_resumes_mid_batch() {
        let (mut link, mut wires) = fresh();
        let p = CallerId(1);
        let c = CallerId(2);
        // Queue a burst and pump it part-way: payload split across the
        // outgoing queue and an in-flight bus transaction, with the
        // adaptive target already ramped off its floor.
        for i in 0..6 {
            assert!(link.put(p, Value::Int(i), &mut wires).unwrap().done);
        }
        for _ in 0..7 {
            link.pump(&mut wires, false).unwrap();
        }
        let snap = link.capture_state();
        let wires_snap = wires.clone();
        assert_eq!(snap.occupancy(), 6, "every queued value is captured");
        assert_eq!(snap.batch_target(), link.batch_target());

        // Drain the original to completion and log delivery order.
        let drain = |link: &mut BatchedLink, wires: &mut LocalWires| {
            let mut got = vec![];
            for _ in 0..60 {
                link.pump(wires, false).unwrap();
                if let Some(v) = link.get(c, wires).unwrap().result {
                    got.push(v.as_int().unwrap());
                }
            }
            got
        };
        let first = drain(&mut link, &mut wires);
        assert_eq!(first, vec![0, 1, 2, 3, 4, 5], "order preserved");
        let end_stats = link.stats();

        // Restore into a fresh identically-configured link and replay.
        let (mut twin, _) = fresh();
        let mut twin_wires = wires_snap;
        twin.restore_state(&snap).unwrap();
        assert_eq!(twin.capture_state(), snap, "captures are canonical");
        let second = drain(&mut twin, &mut twin_wires);
        assert_eq!(second, first, "replay delivers the same sequence");
        assert_eq!(twin.stats(), end_stats, "stats land on the same totals");
    }

    #[test]
    fn restore_refuses_misconfigured_target() {
        let (mut link, mut wires) = fresh();
        for i in 0..6 {
            link.put(CallerId(1), Value::Int(i), &mut wires).unwrap();
        }
        for _ in 0..7 {
            link.pump(&mut wires, false).unwrap();
        }
        let snap = link.capture_state();

        // Capacity smaller than the captured occupancy: refused, and the
        // target keeps its own state.
        let mut tiny = BatchedLink::new("bus", Type::INT16, 8, 4);
        let mut tiny_wires = LocalWires::new(tiny.spec());
        tiny.put(CallerId(1), Value::Int(99), &mut tiny_wires)
            .unwrap();
        let before = tiny.capture_state();
        let err = tiny.restore_state(&snap).unwrap_err();
        assert!(err.to_string().contains("capacity"));
        assert_eq!(tiny.capture_state(), before, "refused load is a no-op");

        // max_batch below the captured adaptive target: refused too.
        let mut narrow = BatchedLink::new("bus", Type::INT16, 1, 64);
        let err = narrow.restore_state(&snap).unwrap_err();
        assert!(err.to_string().contains("batch target"));
    }
}
