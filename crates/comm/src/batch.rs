//! Batched bus transactions: coalescing per-value protocol transfers
//! into one wire-level handshake per batch.
//!
//! The classic [`handshake_unit`](crate::handshake_unit) pays a full
//! 4-phase handshake (several clock cycles of wire traffic plus
//! controller activations) for *every* value. On a backplane with
//! hundreds of units that per-value cost dominates. A [`BatchedLink`]
//! instead models a burst-capable bus: producer-side `put` calls append
//! to a vec-backed payload queue with no wire traffic at all, and the
//! runtime moves whole batches with a *single* handshake whose `DATA`
//! wire carries the batch length — one arbitration per burst, exactly
//! like a bus master issuing a block transfer.
//!
//! Wire protocol (see [`batched_handshake_unit`]):
//!
//! * `PENDING` — bus-request level, raised when values are queued for
//!   transport and lowered once the queues drain. Schedulers that park
//!   idle links (the sharded backplane) watch it to wake up.
//! * `DATA`/`REQ`/`ACK`/`B_FULL` — the classic handshake, run once per
//!   batch by the link's internal bus sessions.
//!
//! Batch size is **adaptive**: the link carries a batch *target* in
//! `1..=max_batch` that doubles while the outgoing queue keeps up with
//! it (bus-bound traffic, amortize the arbitration) and halves while
//! the queue runs shallow (light traffic, don't batch latency in) —
//! `max_batch` is only the hard ceiling.
//!
//! Per-unit statistics record batch counts and sizes
//! ([`UnitStats::batches`], [`UnitStats::batched_values`],
//! [`UnitStats::max_batch_len`]) plus a power-of-two batch-length
//! histogram ([`UnitStats::batch_len_hist`]).

use crate::library::batched_handshake_unit;
use crate::runtime::{CallerId, FsmUnitRuntime, PeekedCall, UnitStats, WireStore};
use cosma_core::comm::CommUnitSpec;
use cosma_core::ids::PortId;
use cosma_core::{Bit, DeferredCall, EvalError, ServiceOutcome, Type, Value};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Internal caller driving the producer side of the wire handshake.
const BUS_PRODUCER: CallerId = CallerId(u64::MAX);
/// Internal caller draining the consumer side of the wire handshake.
const BUS_CONSUMER: CallerId = CallerId(u64::MAX - 1);

/// A burst-capable channel: vec-backed payload queues on both ends of a
/// single wire-level handshake that is run once per *batch*.
///
/// # Examples
///
/// Move eight values with one bus transaction:
///
/// ```
/// use cosma_comm::{BatchedLink, CallerId, LocalWires};
/// use cosma_core::{Type, Value};
///
/// let mut link = BatchedLink::new("bus", Type::INT16, 16, 32);
/// let mut wires = LocalWires::new(link.spec());
/// let (p, c) = (CallerId(1), CallerId(2));
/// for i in 0..8 {
///     assert!(link.put(p, Value::Int(i), &mut wires)?.done);
/// }
/// // Pump until the batch crosses the bus (a few activations: the
/// // handshake runs once, regardless of the batch size).
/// for _ in 0..10 {
///     link.pump(&mut wires, false)?;
/// }
/// let mut got = vec![];
/// while let Some(v) = link.get(c, &mut wires)?.result {
///     got.push(v);
/// }
/// assert_eq!(got, (0..8).map(Value::Int).collect::<Vec<_>>());
/// assert_eq!(link.stats().batches, 1);
/// assert_eq!(link.stats().batched_values, 8);
/// # Ok::<(), cosma_core::EvalError>(())
/// ```
pub struct BatchedLink {
    inner: FsmUnitRuntime,
    data_ty: Type,
    pending_wire: PortId,
    /// Hard bound on values per bus transaction.
    max_batch: usize,
    /// Adaptive batch target in `1..=max_batch`: doubled when the
    /// outgoing queue is at least this deep at batch-load time (the bus
    /// is falling behind — amortize more per arbitration), halved when
    /// the queue is at a quarter or less (light traffic — don't hold
    /// values back waiting for a big batch).
    batch_target: usize,
    /// Bound on total occupancy (outgoing + in flight + delivered).
    capacity: usize,
    /// Producer-enqueued values not yet on the bus.
    outgoing: Vec<Value>,
    /// The batch currently crossing the bus.
    in_flight: Vec<Value>,
    /// Values delivered to the consumer side, popped by `get`.
    delivered: VecDeque<Value>,
    /// Whether the producer-side wire handshake is in progress.
    sending: bool,
    /// Whether the last `put`/`get` was a provable no-op (pending, no
    /// state change) — see [`BatchedLink::last_call_stable`].
    last_call_stable: bool,
    stats: UnitStats,
}

impl fmt::Debug for BatchedLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchedLink")
            .field("outgoing", &self.outgoing.len())
            .field("in_flight", &self.in_flight.len())
            .field("delivered", &self.delivered.len())
            .finish_non_exhaustive()
    }
}

impl BatchedLink {
    /// Creates a batched link. `max_batch` bounds one bus transaction
    /// (capped at `i16::MAX`, the largest length the INT16 `DATA` wire
    /// can carry without wrapping), `capacity` bounds total occupancy
    /// (producer backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `capacity` is zero.
    #[must_use]
    pub fn new(name: &str, data_ty: Type, max_batch: usize, capacity: usize) -> Self {
        assert!(max_batch > 0, "batch size must be nonzero");
        assert!(capacity > 0, "link capacity must be nonzero");
        let max_batch = max_batch.min(i16::MAX as usize);
        let spec = batched_handshake_unit(name);
        let pending_wire = spec
            .wire_id("PENDING")
            .expect("batched handshake spec has a PENDING wire");
        BatchedLink {
            inner: FsmUnitRuntime::new(spec),
            data_ty,
            pending_wire,
            max_batch,
            batch_target: max_batch,
            capacity,
            outgoing: Vec::new(),
            in_flight: Vec::new(),
            delivered: VecDeque::new(),
            sending: false,
            last_call_stable: false,
            stats: UnitStats::default(),
        }
    }

    /// The wire-level spec (for declaring kernel signals / local wires).
    #[must_use]
    pub fn spec(&self) -> &Arc<CommUnitSpec> {
        self.inner.spec()
    }

    /// Current total occupancy across all queues.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.outgoing.len() + self.in_flight.len() + self.delivered.len()
    }

    /// The current adaptive batch target (values per bus transaction),
    /// in `1..=max_batch`. Doubled under backlog, halved under light
    /// traffic — see [`BatchedLink::pump`].
    #[must_use]
    pub fn batch_target(&self) -> usize {
        self.batch_target
    }

    /// Whether the last `put`/`get` was a provable no-op (pending
    /// outcome, nothing mutated). While true, re-calling with unchanged
    /// link state repeats the no-op, so the caller can be parked.
    #[must_use]
    pub fn last_call_stable(&self) -> bool {
        self.last_call_stable
    }

    /// The wires whose events can unblock a pending caller of `service`.
    ///
    /// * `get` — the inner bus protocol's consumer read-set plus the
    ///   `PENDING` bus-request wire: delivery always rides on wire-level
    ///   handshake activity, and `PENDING` rises the moment a producer
    ///   enqueues, so a parked consumer cannot miss an incoming value.
    /// * `put` — **empty**: a put blocks only on capacity, and capacity
    ///   is released by `get` popping the delivered queue, which is not
    ///   wire-visible. Producers blocked on backpressure must therefore
    ///   keep polling (schedulers must not park them).
    #[must_use]
    pub fn completion_signals(&self, service: &str) -> Vec<PortId> {
        match service {
            "get" => {
                let mut wires = self.inner.completion_signals("get");
                wires.push(self.pending_wire);
                wires.sort_unstable();
                wires.dedup();
                wires
            }
            _ => vec![],
        }
    }

    /// Validates a `put` payload against the link's data type: the value
    /// kind must match (an `Int` link cannot carry a `Bit`); integer
    /// widths are clamped like every other port/var write.
    fn check_payload(&self, v: &Value) -> Result<(), EvalError> {
        let clamped = self.data_ty.clamp(v.clone());
        if !self.data_ty.admits(&clamped) {
            return Err(EvalError::Service(format!(
                "batched link {}: put of {v:?} does not fit data type {}",
                self.inner.spec().name(),
                self.data_ty
            )));
        }
        Ok(())
    }

    /// Dispatches one service activation by name — the single call entry
    /// point used by both the immediate-application path and the
    /// commit-phase replay. A malformed call (unknown service, wrong
    /// arity, payload of the wrong kind) surfaces as a typed
    /// [`EvalError::Service`], never a panic.
    ///
    /// # Errors
    ///
    /// Typed validation errors as above; wire-store errors propagate.
    pub fn call(
        &mut self,
        caller: CallerId,
        service: &str,
        args: &[Value],
        wires: &mut dyn WireStore,
    ) -> Result<ServiceOutcome, EvalError> {
        match (service, args) {
            ("put", [v]) => {
                self.check_payload(v)?;
                self.put(caller, v.clone(), wires)
            }
            ("get", []) => self.get(caller, wires),
            ("put" | "get", _) => Err(EvalError::Service(format!(
                "batched link {}: service {service} called with {} argument(s)",
                self.inner.spec().name(),
                args.len()
            ))),
            (other, _) => Err(EvalError::Service(format!(
                "batched link {} has no service {other}",
                self.inner.spec().name()
            ))),
        }
    }

    /// Speculative (read-only) variant of [`BatchedLink::call`]: answers
    /// the outcome the call would produce against the current committed
    /// queue state, without mutating anything. Exact while no other
    /// same-cycle call moves the shared queues — a two-phase scheduler
    /// validates the answer again at commit time.
    ///
    /// # Errors
    ///
    /// Same typed validation as [`BatchedLink::call`].
    pub fn peek_call(&self, service: &str, args: &[Value]) -> Result<PeekedCall, EvalError> {
        match (service, args) {
            ("put", [v]) => {
                self.check_payload(v)?;
                if self.occupancy() >= self.capacity {
                    // Rejected by backpressure: a provable no-op.
                    Ok(PeekedCall {
                        outcome: ServiceOutcome::pending(),
                        stable: true,
                        delta: None,
                    })
                } else {
                    Ok(PeekedCall {
                        outcome: ServiceOutcome::done(),
                        stable: false,
                        delta: None,
                    })
                }
            }
            ("get", []) => match self.delivered.front() {
                Some(v) => Ok(PeekedCall {
                    outcome: ServiceOutcome::done_with(v.clone()),
                    stable: false,
                    delta: None,
                }),
                None => Ok(PeekedCall {
                    outcome: ServiceOutcome::pending(),
                    stable: true,
                    delta: None,
                }),
            },
            ("put" | "get", _) => Err(EvalError::Service(format!(
                "batched link {}: service {service} called with {} argument(s)",
                self.inner.spec().name(),
                args.len()
            ))),
            (other, _) => Err(EvalError::Service(format!(
                "batched link {} has no service {other}",
                self.inner.spec().name()
            ))),
        }
    }

    /// Standalone commit entry point of the two-phase model: applies a
    /// module's buffered call records in order (see
    /// [`crate::FsmUnitRuntime::apply_calls`] for the ordering contract
    /// and its relationship to the backplane's validating per-call
    /// commit, which routes through [`BatchedLink::call`]) and returns
    /// the actual outcomes for validation.
    ///
    /// # Errors
    ///
    /// Same typed validation as [`BatchedLink::call`].
    pub fn apply_calls(
        &mut self,
        caller: CallerId,
        calls: &[DeferredCall],
        wires: &mut dyn WireStore,
    ) -> Result<Vec<ServiceOutcome>, EvalError> {
        calls
            .iter()
            .map(|c| self.call(caller, &c.service, &c.args, wires))
            .collect()
    }

    /// Enqueues one value for transport. Completes immediately unless the
    /// link is at capacity; raises the `PENDING` bus-request wire.
    ///
    /// # Errors
    ///
    /// Propagates wire-store errors.
    pub fn put(
        &mut self,
        _caller: CallerId,
        v: Value,
        wires: &mut dyn WireStore,
    ) -> Result<ServiceOutcome, EvalError> {
        let full = self.occupancy() >= self.capacity;
        let stats = self.stats.services.entry("put".to_string()).or_default();
        stats.calls += 1;
        if full {
            // Rejected by backpressure: nothing changed, so the call is
            // a provable no-op — but note that capacity release is not
            // wire-visible (`get` pops without wire traffic), which is
            // why completion_signals("put") is empty and blocked
            // producers are never parked.
            self.last_call_stable = true;
            return Ok(ServiceOutcome::pending());
        }
        self.last_call_stable = false;
        stats.completions += 1;
        self.outgoing.push(self.data_ty.clamp(v));
        if wires.read_wire(self.pending_wire)? != Value::Bit(Bit::One) {
            wires.write_wire(self.pending_wire, Value::Bit(Bit::One))?;
        }
        Ok(ServiceOutcome::done())
    }

    /// Pops one delivered value, if any.
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` for interface symmetry with FSM
    /// services.
    pub fn get(
        &mut self,
        _caller: CallerId,
        _wires: &mut dyn WireStore,
    ) -> Result<ServiceOutcome, EvalError> {
        let stats = self.stats.services.entry("get".to_string()).or_default();
        stats.calls += 1;
        match self.delivered.pop_front() {
            Some(v) => {
                self.last_call_stable = false;
                stats.completions += 1;
                Ok(ServiceOutcome::done_with(v))
            }
            None => {
                // Empty: a no-op. Delivery always follows wire-level
                // handshake activity, so a parked consumer re-armed by
                // completion_signals("get") cannot miss it.
                self.last_call_stable = true;
                Ok(ServiceOutcome::pending())
            }
        }
    }

    /// One clock activation of the link's bus machinery: loads a batch
    /// onto the bus, advances the wire handshake, delivers completed
    /// batches, steps the controller and manages the `PENDING` line.
    ///
    /// Returns whether anything happened (or could happen next cycle) —
    /// `false` means the link is provably idle and need not be pumped
    /// again until a wire input changes or `put` raises `PENDING`.
    ///
    /// # Errors
    ///
    /// Propagates protocol evaluation errors.
    pub fn pump(
        &mut self,
        wires: &mut dyn WireStore,
        inputs_changed: bool,
    ) -> Result<bool, EvalError> {
        let mut active = false;
        if self.in_flight.is_empty() && !self.outgoing.is_empty() && !self.sending {
            // Adapt the batch target to the observed queue depth before
            // loading: a backlog at least one target deep means the bus
            // is the bottleneck (amortize more values per arbitration);
            // a queue at a quarter or less means traffic is light (ship
            // small batches promptly instead of batching latency in).
            let depth = self.outgoing.len();
            if depth >= self.batch_target {
                self.batch_target = (self.batch_target * 2).min(self.max_batch);
            } else if depth <= self.batch_target / 4 {
                self.batch_target = (self.batch_target / 2).max(1);
            }
            let take = depth.min(self.batch_target);
            self.in_flight.extend(self.outgoing.drain(..take));
            self.sending = true;
            active = true;
        }
        if self.sending {
            // One wire handshake carries the whole batch; DATA holds the
            // batch length (fits INT16: max_batch is capped at i16::MAX).
            let len = self.in_flight.len() as i64;
            let out = self
                .inner
                .call(BUS_PRODUCER, "put", &[Value::Int(len)], wires)?;
            active = true;
            if out.done {
                self.sending = false;
            }
        }
        if !self.in_flight.is_empty() && !self.sending {
            let out = self.inner.call(BUS_CONSUMER, "get", &[], wires)?;
            active = true;
            if out.done {
                let n = self.in_flight.len() as u64;
                self.stats.record_batch(n);
                self.delivered.extend(self.in_flight.drain(..));
            }
        }
        if self.outgoing.is_empty()
            && self.in_flight.is_empty()
            && wires.read_wire(self.pending_wire)? == Value::Bit(Bit::One)
        {
            wires.write_wire(self.pending_wire, Value::Bit(Bit::Zero))?;
            active = true;
        }
        let stepped = self
            .inner
            .step_controller_if_active(wires, inputs_changed || active)?;
        Ok(active || stepped)
    }

    /// Merged statistics: batch counters plus the inner controller's
    /// step/skip counts (the wire-level bus sessions are internal and not
    /// reported as services).
    #[must_use]
    pub fn stats(&self) -> UnitStats {
        let mut s = self.stats.clone();
        s.controller_steps = self.inner.stats().controller_steps;
        s.controller_skips = self.inner.stats().controller_skips;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::LocalWires;

    fn fresh() -> (BatchedLink, LocalWires) {
        let link = BatchedLink::new("bus", Type::INT16, 8, 64);
        let wires = LocalWires::new(link.spec());
        (link, wires)
    }

    #[test]
    fn one_handshake_carries_many_values() {
        let (mut link, mut wires) = fresh();
        let p = CallerId(1);
        for i in 0..5 {
            assert!(link.put(p, Value::Int(i), &mut wires).unwrap().done);
        }
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        let mut got = vec![];
        while let Some(v) = link.get(CallerId(2), &mut wires).unwrap().result {
            got.push(v.as_int().unwrap());
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        let st = link.stats();
        assert_eq!(st.batches, 1, "five values, one bus transaction");
        assert_eq!(st.batched_values, 5);
        assert_eq!(st.max_batch_len, 5);
    }

    #[test]
    fn batches_split_at_max_batch() {
        let mut link = BatchedLink::new("bus", Type::INT16, 3, 64);
        let mut wires = LocalWires::new(link.spec());
        let p = CallerId(1);
        for i in 0..7 {
            assert!(link.put(p, Value::Int(i), &mut wires).unwrap().done);
        }
        for _ in 0..64 {
            link.pump(&mut wires, false).unwrap();
        }
        let mut got = vec![];
        while let Some(v) = link.get(CallerId(2), &mut wires).unwrap().result {
            got.push(v.as_int().unwrap());
        }
        assert_eq!(got, (0..7).collect::<Vec<_>>(), "order preserved");
        let st = link.stats();
        assert_eq!(st.batches, 3, "7 values at max_batch 3 -> 3+3+1");
        assert_eq!(st.batched_values, 7);
        assert_eq!(st.max_batch_len, 3);
    }

    #[test]
    fn capacity_applies_backpressure() {
        let mut link = BatchedLink::new("bus", Type::INT16, 4, 2);
        let mut wires = LocalWires::new(link.spec());
        let p = CallerId(1);
        assert!(link.put(p, Value::Int(1), &mut wires).unwrap().done);
        assert!(link.put(p, Value::Int(2), &mut wires).unwrap().done);
        assert!(
            !link.put(p, Value::Int(3), &mut wires).unwrap().done,
            "at capacity"
        );
        // Drain one, space frees up.
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        assert!(link.get(CallerId(2), &mut wires).unwrap().done);
        assert!(link.put(p, Value::Int(3), &mut wires).unwrap().done);
    }

    #[test]
    fn pending_wire_tracks_queue_state() {
        let (mut link, mut wires) = fresh();
        let pending = link.spec().wire_id("PENDING").unwrap();
        assert_eq!(wires.value(pending), &Value::Bit(Bit::Zero));
        link.put(CallerId(1), Value::Int(9), &mut wires).unwrap();
        assert_eq!(
            wires.value(pending),
            &Value::Bit(Bit::One),
            "bus request raised"
        );
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        assert_eq!(
            wires.value(pending),
            &Value::Bit(Bit::Zero),
            "bus request lowered once the queues drained"
        );
        // Delivered-but-unconsumed values need no pumping: the link is idle.
        assert!(!link.pump(&mut wires, false).unwrap(), "provably idle");
        assert_eq!(
            link.get(CallerId(2), &mut wires).unwrap().result,
            Some(Value::Int(9))
        );
    }

    #[test]
    fn values_clamped_to_data_type() {
        let (mut link, mut wires) = fresh();
        link.put(CallerId(1), Value::Int(40_000), &mut wires)
            .unwrap();
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        let got = link.get(CallerId(2), &mut wires).unwrap().result.unwrap();
        assert_eq!(
            got,
            Value::Int(40_000 - 65_536),
            "wrapped into INT16 range, like every other port/var write"
        );
    }

    #[test]
    fn idle_link_is_stable_until_put() {
        let (mut link, mut wires) = fresh();
        // Settle the controller.
        for _ in 0..4 {
            link.pump(&mut wires, false).unwrap();
        }
        assert!(!link.pump(&mut wires, false).unwrap(), "idle link");
        link.put(CallerId(1), Value::Int(1), &mut wires).unwrap();
        assert!(link.pump(&mut wires, false).unwrap(), "work to do again");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_batch_panics() {
        let _ = BatchedLink::new("bus", Type::INT16, 0, 4);
    }

    #[test]
    fn batch_target_adapts_to_queue_depth() {
        let mut link = BatchedLink::new("bus", Type::INT16, 8, 64);
        let mut wires = LocalWires::new(link.spec());
        let p = CallerId(1);
        assert_eq!(link.batch_target(), 8, "starts at the ceiling");
        // A single queued value is light traffic: the target halves.
        link.put(p, Value::Int(0), &mut wires).unwrap();
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        assert_eq!(link.batch_target(), 4, "halved under light traffic");
        // A backlog at least one target deep doubles it back (capped).
        for i in 0..8 {
            link.put(p, Value::Int(i), &mut wires).unwrap();
        }
        for _ in 0..24 {
            link.pump(&mut wires, false).unwrap();
        }
        assert_eq!(link.batch_target(), 8, "doubled back under backlog");
        // Hard ceiling holds regardless of pressure.
        assert!(link.stats().max_batch_len <= 8);
    }

    #[test]
    fn batch_length_histogram_buckets_by_power_of_two() {
        let (mut link, mut wires) = fresh(); // max_batch 8
        let p = CallerId(1);
        // First transaction: 5 values (bucket 2: 4..=7).
        for i in 0..5 {
            link.put(p, Value::Int(i), &mut wires).unwrap();
        }
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        // Second transaction: 1 value (bucket 0).
        link.put(p, Value::Int(9), &mut wires).unwrap();
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        let st = link.stats();
        assert_eq!(st.batches, 2);
        assert_eq!(st.batch_len_hist, vec![1, 0, 1], "one 1-batch, one 5-batch");
        assert_eq!(
            st.batch_len_hist.iter().sum::<u64>(),
            st.batches,
            "histogram accounts for every transaction"
        );
    }

    #[test]
    fn completion_signals_name_consumer_wake_wires() {
        let (link, _) = fresh();
        let get_wires = link.completion_signals("get");
        let pending = link.spec().wire_id("PENDING").unwrap();
        let b_full = link.spec().wire_id("B_FULL").unwrap();
        assert!(get_wires.contains(&pending), "put raises PENDING");
        assert!(get_wires.contains(&b_full), "delivery rides on B_FULL");
        assert!(
            link.completion_signals("put").is_empty(),
            "capacity release is not wire-visible: blocked puts must poll"
        );
    }

    #[test]
    fn call_dispatch_validates_and_matches_direct_calls() {
        let (mut link, mut wires) = fresh();
        let p = CallerId(1);
        assert!(
            link.call(p, "put", &[Value::Int(3)], &mut wires)
                .unwrap()
                .done
        );
        // Typed errors for malformed calls: unknown service, bad arity,
        // wrong payload kind — never a panic.
        assert!(link.call(p, "bogus", &[], &mut wires).is_err());
        assert!(link.call(p, "put", &[], &mut wires).is_err());
        assert!(link.call(p, "get", &[Value::Int(1)], &mut wires).is_err());
        let err = link
            .call(p, "put", &[Value::Bool(true)], &mut wires)
            .unwrap_err();
        assert!(
            err.to_string().contains("does not fit"),
            "kind mismatch is typed: {err}"
        );
    }

    #[test]
    fn peek_matches_real_call_on_committed_state() {
        let (mut link, mut wires) = fresh();
        let p = CallerId(1);
        let c = CallerId(2);
        // Empty link: get peeks pending+stable; put peeks done.
        assert_eq!(
            link.peek_call("get", &[]).unwrap(),
            PeekedCall {
                outcome: ServiceOutcome::pending(),
                stable: true,
                delta: None
            }
        );
        let peek = link.peek_call("put", &[Value::Int(5)]).unwrap();
        let real = link.put(p, Value::Int(5), &mut wires).unwrap();
        assert_eq!(peek.outcome, real);
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        // Delivered value: peek names it without popping.
        let peek = link.peek_call("get", &[]).unwrap();
        assert_eq!(peek.outcome, ServiceOutcome::done_with(Value::Int(5)));
        let real = link.get(c, &mut wires).unwrap();
        assert_eq!(peek.outcome, real);
        // At capacity: put peeks pending+stable.
        let mut tight = BatchedLink::new("bus", Type::INT16, 4, 1);
        let mut tw = LocalWires::new(tight.spec());
        tight.put(p, Value::Int(1), &mut tw).unwrap();
        assert_eq!(
            tight.peek_call("put", &[Value::Int(2)]).unwrap(),
            PeekedCall {
                outcome: ServiceOutcome::pending(),
                stable: true,
                delta: None
            }
        );
    }

    #[test]
    fn blocked_get_is_stable_until_delivery() {
        let (mut link, mut wires) = fresh();
        assert!(!link.get(CallerId(2), &mut wires).unwrap().done);
        assert!(link.last_call_stable(), "empty get is a provable no-op");
        link.put(CallerId(1), Value::Int(4), &mut wires).unwrap();
        assert!(!link.last_call_stable(), "put mutated the link");
        for _ in 0..12 {
            link.pump(&mut wires, false).unwrap();
        }
        assert!(link.get(CallerId(2), &mut wires).unwrap().done);
        assert!(!link.last_call_stable(), "a completing get pops state");
    }
}
