//! The library of FSM-described communication units.
//!
//! These are the renderable, signal-level protocols: each constructor
//! returns a [`CommUnitSpec`] whose services can be executed (through
//! [`crate::FsmUnitRuntime`]), co-simulated over kernel signals, rendered
//! into all views (`cosma_core::view`) and synthesized to hardware.

use cosma_core::comm::{
    CommUnitBuilder, CommUnitSpec, ServiceSpecBuilder, SERVICE_DONE_VAR, SERVICE_RESULT_VAR,
};
use cosma_core::{Bit, Expr, FsmBuilder, Stmt, Type, Value};
use std::sync::Arc;

/// Builds the paper's Figure 2/3 unit: a one-deep buffered handshake
/// channel offering `put(REQUEST)` and `get() -> data`.
///
/// Wires:
///
/// * `DATA` — the payload register,
/// * `B_FULL` — buffer-full flag, raised by the controller, cleared by
///   the consumer,
/// * `REQ` — producer request level,
/// * `ACK` — controller acknowledge level back to the producer.
///
/// The protocol is a classic 4-phase handshake with *level* signalling in
/// both directions, so it is robust to arbitrary speed mismatch between
/// the software and hardware sides — the first of the paper's three
/// communication problems. The `put` protocol is the Figure 3 FSM; the
/// controller is the conflict-resolution process of Figure 2.
///
/// # Examples
///
/// ```
/// use cosma_comm::handshake_unit;
/// use cosma_core::Type;
///
/// let unit = handshake_unit("swhw_link", Type::INT16);
/// assert!(unit.service("put").is_some());
/// assert!(unit.service("get").is_some());
/// assert_eq!(unit.wires().len(), 4);
/// ```
#[must_use]
pub fn handshake_unit(name: &str, data_ty: Type) -> Arc<CommUnitSpec> {
    build_handshake(name, data_ty, false)
}

/// Builds the wire-level carrier of a batched bus link: the
/// [`handshake_unit`] protocol (DATA here carries a *batch length*, not a
/// payload value) plus a `PENDING` bus-request wire that the batching
/// runtime raises while values are queued for transport. The extra wire
/// lets a scheduler that has parked an idle link (the sharded backplane)
/// learn that a new batch is waiting without polling.
///
/// Used by [`BatchedLink`](crate::BatchedLink); rarely instantiated
/// directly.
#[must_use]
pub fn batched_handshake_unit(name: &str) -> Arc<CommUnitSpec> {
    build_handshake(name, Type::INT16, true)
}

fn build_handshake(name: &str, data_ty: Type, with_pending: bool) -> Arc<CommUnitSpec> {
    let mut u = CommUnitBuilder::new(name);
    let data = u.wire("DATA", data_ty.clone(), data_ty.default_value());
    let b_full = u.wire("B_FULL", Type::Bit, Value::Bit(Bit::Zero));
    let req = u.wire("REQ", Type::Bit, Value::Bit(Bit::Zero));
    let ack = u.wire("ACK", Type::Bit, Value::Bit(Bit::Zero));
    if with_pending {
        // Raised/cleared by the batching runtime, never by the protocol
        // FSMs; placed last so the classic handshake's wire ids are
        // unchanged.
        u.wire("PENDING", Type::Bit, Value::Bit(Bit::Zero));
        // Beat-boundary marker under cycle-accurate payload streaming
        // ([`crate::BusTiming::PayloadBeats`]): held One on every cycle
        // a payload word occupies DATA, Zero during the arbitration
        // length word — so a snooping observer can count payload beats
        // without decoding the protocol. Never written under
        // [`crate::BusTiming::LengthOnly`].
        u.wire("B_VALID", Type::Bit, Value::Bit(Bit::Zero));
        // Burst-completion strobe (AXI RLAST-style): One on the cycle
        // the final payload beat of a batch crosses DATA (the cycle the
        // batch is delivered), Zero otherwise. Parked consumers watch
        // it instead of DATA, so a length-`n` burst wakes them once at
        // delivery rather than once per beat. Never written under
        // [`crate::BusTiming::LengthOnly`].
        u.wire("B_LAST", Type::Bit, Value::Bit(Bit::Zero));
    }

    // --- put(REQUEST) ---------------------------------------------------
    let mut put = ServiceSpecBuilder::new("put");
    put.arg("REQUEST", data_ty.clone());
    let p_init = put.state("INIT");
    let p_wait = put.state("WAIT_ACK");
    // Start a transaction only when the previous one fully unwound
    // (ACK low) and the buffer is free.
    put.transition_with(
        p_init,
        Some(
            Expr::port(ack)
                .eq(Expr::bit(Bit::Zero))
                .and(Expr::port(b_full).eq(Expr::bit(Bit::Zero))),
        ),
        vec![
            Stmt::drive(data, Expr::arg(0)),
            Stmt::drive(req, Expr::bit(Bit::One)),
        ],
        p_wait,
    );
    // ACK is a level held by the controller until REQ drops, so a slow
    // caller cannot miss it.
    put.transition_with(
        p_wait,
        Some(Expr::port(ack).eq(Expr::bit(Bit::One))),
        vec![
            Stmt::drive(req, Expr::bit(Bit::Zero)),
            Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true)),
        ],
        p_init,
    );
    put.initial(p_init);
    u.service(put.build().expect("put protocol is well-formed"));

    // --- get() -> data ---------------------------------------------------
    let mut get = ServiceSpecBuilder::new("get");
    get.returns(data_ty);
    let g_try = get.state("TRY");
    // B_FULL is a level held until the consumer itself clears it.
    get.transition_with(
        g_try,
        Some(Expr::port(b_full).eq(Expr::bit(Bit::One))),
        vec![
            Stmt::assign(SERVICE_RESULT_VAR, Expr::port(data)),
            Stmt::drive(b_full, Expr::bit(Bit::Zero)),
            Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true)),
        ],
        g_try,
    );
    get.initial(g_try);
    u.service(get.build().expect("get protocol is well-formed"));

    // --- controller -------------------------------------------------------
    let mut ctrl = FsmBuilder::new();
    let c_idle = ctrl.state("IDLE");
    let c_acked = ctrl.state("ACKED");
    ctrl.transition_with(
        c_idle,
        Some(
            Expr::port(req)
                .eq(Expr::bit(Bit::One))
                .and(Expr::port(b_full).eq(Expr::bit(Bit::Zero))),
        ),
        vec![
            Stmt::drive(b_full, Expr::bit(Bit::One)),
            Stmt::drive(ack, Expr::bit(Bit::One)),
        ],
        c_acked,
    );
    ctrl.transition_with(
        c_acked,
        Some(Expr::port(req).eq(Expr::bit(Bit::Zero))),
        vec![Stmt::drive(ack, Expr::bit(Bit::Zero))],
        c_idle,
    );
    ctrl.initial(c_idle);
    u.controller(vec![], ctrl.build().expect("controller is well-formed"));

    u.build().expect("handshake unit is well-formed")
}

/// Builds a shared-register unit with lock-based mutual exclusion —
/// the paper's "shared resources" communication property.
///
/// Services:
///
/// * `acquire()` — completes once the lock was free and is now held,
/// * `release()` — always completes, freeing the lock,
/// * `write(VAL)` / `read() -> data` — single-activation register access.
///
/// The lock discipline is advisory (callers should bracket accesses with
/// acquire/release), which is how a bus semaphore on a shared memory
/// behaves.
#[must_use]
pub fn shared_reg_unit(name: &str, data_ty: Type) -> Arc<CommUnitSpec> {
    let mut u = CommUnitBuilder::new(name);
    let reg = u.wire("REG", data_ty.clone(), data_ty.default_value());
    let lock = u.wire("LOCK", Type::Bit, Value::Bit(Bit::Zero));

    let mut acq = ServiceSpecBuilder::new("acquire");
    let a0 = acq.state("TRY");
    acq.transition_with(
        a0,
        Some(Expr::port(lock).eq(Expr::bit(Bit::Zero))),
        vec![
            Stmt::drive(lock, Expr::bit(Bit::One)),
            Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true)),
        ],
        a0,
    );
    acq.initial(a0);
    u.service(acq.build().expect("acquire is well-formed"));

    let mut rel = ServiceSpecBuilder::new("release");
    let r0 = rel.state("FREE");
    rel.actions(
        r0,
        vec![
            Stmt::drive(lock, Expr::bit(Bit::Zero)),
            Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true)),
        ],
    );
    rel.transition(r0, None, r0);
    rel.initial(r0);
    u.service(rel.build().expect("release is well-formed"));

    let mut wr = ServiceSpecBuilder::new("write");
    wr.arg("VAL", data_ty.clone());
    let w0 = wr.state("STORE");
    wr.actions(
        w0,
        vec![
            Stmt::drive(reg, Expr::arg(0)),
            Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true)),
        ],
    );
    wr.transition(w0, None, w0);
    wr.initial(w0);
    u.service(wr.build().expect("write is well-formed"));

    let mut rd = ServiceSpecBuilder::new("read");
    rd.returns(data_ty);
    let d0 = rd.state("LOAD");
    rd.actions(
        d0,
        vec![
            Stmt::assign(SERVICE_RESULT_VAR, Expr::port(reg)),
            Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true)),
        ],
    );
    rd.transition(d0, None, d0);
    rd.initial(d0);
    u.service(rd.build().expect("read is well-formed"));

    u.build().expect("shared register unit is well-formed")
}

/// Builds a register-bank unit: one data wire per named register with
/// `put_<reg>(VAL)` and `get_<reg>() -> data` single-activation services,
/// plus a `STROBE_<reg>` bit wire pulsed on writes so hardware can detect
/// updates.
///
/// This models a memory-mapped parallel interface (the paper's 16-bit
/// PC-AT bus window): software sees named registers, hardware sees wires.
#[must_use]
pub fn register_bank_unit(name: &str, regs: &[(&str, Type)]) -> Arc<CommUnitSpec> {
    let mut u = CommUnitBuilder::new(name);
    let mut wires = Vec::with_capacity(regs.len());
    for (rname, ty) in regs {
        let data = u.wire((*rname).to_string(), ty.clone(), ty.default_value());
        let strobe = u.wire(format!("STROBE_{rname}"), Type::Bit, Value::Bit(Bit::Zero));
        wires.push((data, strobe, ty.clone()));
    }
    for ((rname, _), (data, strobe, ty)) in regs.iter().zip(&wires) {
        let mut put = ServiceSpecBuilder::new(format!("put_{rname}"));
        put.arg("VAL", ty.clone());
        let s0 = put.state("WRITE");
        let s1 = put.state("PULSE");
        put.actions(
            s0,
            vec![
                Stmt::drive(*data, Expr::arg(0)),
                Stmt::drive(*strobe, Expr::bit(Bit::One)),
            ],
        );
        put.transition(s0, None, s1);
        put.actions(
            s1,
            vec![
                Stmt::drive(*strobe, Expr::bit(Bit::Zero)),
                Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true)),
            ],
        );
        put.transition(s1, None, s0);
        put.initial(s0);
        u.service(put.build().expect("put_<reg> is well-formed"));

        let mut get = ServiceSpecBuilder::new(format!("get_{rname}"));
        get.returns(ty.clone());
        let g0 = get.state("READ");
        get.actions(
            g0,
            vec![
                Stmt::assign(SERVICE_RESULT_VAR, Expr::port(*data)),
                Stmt::assign(SERVICE_DONE_VAR, Expr::bool(true)),
            ],
        );
        get.transition(g0, None, g0);
        get.initial(g0);
        u.service(get.build().expect("get_<reg> is well-formed"));
    }
    u.build().expect("register bank unit is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{CallerId, FsmUnitRuntime, LocalWires};

    #[test]
    fn handshake_full_exchange() {
        let spec = handshake_unit("hs", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let p = CallerId(1);
        let c = CallerId(2);
        let mut got = None;
        let mut put_done_at = None;
        for i in 0..20 {
            let pd = unit.call(p, "put", &[Value::Int(300)], &mut wires).unwrap();
            if pd.done && put_done_at.is_none() {
                put_done_at = Some(i);
            }
            let g = unit.call(c, "get", &[], &mut wires).unwrap();
            if g.done {
                got = g.result;
                break;
            }
            unit.step_controller(&mut wires).unwrap();
        }
        assert_eq!(got, Some(Value::Int(300)));
        assert!(put_done_at.is_some(), "put must complete before get");
    }

    #[test]
    fn handshake_get_blocks_on_empty() {
        let spec = handshake_unit("hs", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        for _ in 0..10 {
            let g = unit.call(CallerId(1), "get", &[], &mut wires).unwrap();
            assert!(!g.done, "get must not complete on an empty channel");
            unit.step_controller(&mut wires).unwrap();
        }
    }

    #[test]
    fn handshake_put_blocks_when_full() {
        let spec = handshake_unit("hs", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let p = CallerId(1);
        // First put completes (no consumer yet).
        let mut first_done = false;
        for _ in 0..10 {
            if unit
                .call(p, "put", &[Value::Int(1)], &mut wires)
                .unwrap()
                .done
            {
                first_done = true;
                break;
            }
            unit.step_controller(&mut wires).unwrap();
        }
        assert!(first_done);
        // Second put cannot complete while the buffer stays full.
        for _ in 0..10 {
            let d = unit.call(p, "put", &[Value::Int(2)], &mut wires).unwrap();
            assert!(!d.done, "second put must stall while B_FULL");
            unit.step_controller(&mut wires).unwrap();
        }
    }

    #[test]
    fn handshake_values_in_order() {
        let spec = handshake_unit("hs", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let p = CallerId(1);
        let c = CallerId(2);
        let inputs = [5i64, -3, 77, 0, 1000];
        let mut sent = 0;
        let mut received = vec![];
        for _ in 0..400 {
            if sent < inputs.len()
                && unit
                    .call(p, "put", &[Value::Int(inputs[sent])], &mut wires)
                    .unwrap()
                    .done
            {
                sent += 1;
            }
            let g = unit.call(c, "get", &[], &mut wires).unwrap();
            if g.done {
                received.push(g.result.unwrap().as_int().unwrap());
            }
            unit.step_controller(&mut wires).unwrap();
            if received.len() == inputs.len() {
                break;
            }
        }
        assert_eq!(received, inputs.to_vec());
    }

    #[test]
    fn shared_reg_lock_discipline() {
        let spec = shared_reg_unit("mem", Type::INT16);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let a = CallerId(1);
        let b = CallerId(2);
        assert!(unit.call(a, "acquire", &[], &mut wires).unwrap().done);
        // B cannot acquire while A holds the lock.
        for _ in 0..5 {
            assert!(!unit.call(b, "acquire", &[], &mut wires).unwrap().done);
        }
        assert!(
            unit.call(a, "write", &[Value::Int(7)], &mut wires)
                .unwrap()
                .done
        );
        assert!(unit.call(a, "release", &[], &mut wires).unwrap().done);
        assert!(unit.call(b, "acquire", &[], &mut wires).unwrap().done);
        let r = unit.call(b, "read", &[], &mut wires).unwrap();
        assert_eq!(r.result, Some(Value::Int(7)));
    }

    #[test]
    fn register_bank_roundtrip_and_strobe() {
        let spec = register_bank_unit("bank", &[("POS", Type::INT16), ("SPEED", Type::INT16)]);
        let mut unit = FsmUnitRuntime::new(spec.clone());
        let mut wires = LocalWires::new(&spec);
        let sw = CallerId(1);
        // put_POS takes two activations (write+pulse, then strobe clear).
        assert!(
            !unit
                .call(sw, "put_POS", &[Value::Int(55)], &mut wires)
                .unwrap()
                .done
        );
        let strobe = spec.wire_id("STROBE_POS").unwrap();
        assert_eq!(wires.value(strobe), &Value::Bit(Bit::One), "strobe pulsed");
        assert!(
            unit.call(sw, "put_POS", &[Value::Int(55)], &mut wires)
                .unwrap()
                .done
        );
        assert_eq!(
            wires.value(strobe),
            &Value::Bit(Bit::Zero),
            "strobe cleared"
        );
        let g = unit.call(sw, "get_POS", &[], &mut wires).unwrap();
        assert_eq!(g.result, Some(Value::Int(55)));
        // Registers are independent.
        let g = unit.call(sw, "get_SPEED", &[], &mut wires).unwrap();
        assert_eq!(g.result, Some(Value::Int(0)));
    }

    #[test]
    fn units_render_all_views() {
        // Every library unit must render in every view (the multi-view
        // library requirement of the paper).
        for spec in [
            handshake_unit("hs", Type::INT16),
            shared_reg_unit("mem", Type::INT16),
            register_bank_unit("bank", &[("A", Type::INT16)]),
        ] {
            for svc in spec.services() {
                let views =
                    cosma_core::render_service_views(&spec, svc, &cosma_core::SwTarget::ALL);
                assert!(!views.hw_vhdl.is_empty());
                assert!(!views.sw_sim.is_empty());
                assert_eq!(views.sw_synth.len(), 3);
            }
        }
    }
}
