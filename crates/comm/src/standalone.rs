//! A uniform wrapper over FSM and native units for standalone (kernel-less)
//! execution — used by tests, examples and the software-only platform.

use crate::native::NativeUnit;
use crate::runtime::{CallerId, FsmUnitRuntime, LocalWires, UnitStats, WireStore};
use cosma_core::comm::CommUnitSpec;
use cosma_core::{EvalError, ServiceOutcome, Value};
use std::fmt;
use std::sync::Arc;

enum Inner {
    // Boxed: the FSM runtime is much larger than the native trait
    // object, and StandaloneUnit values move around in tests.
    Fsm(Box<FsmInner>),
    Native(Box<dyn NativeUnit>),
}

struct FsmInner {
    runtime: FsmUnitRuntime,
    wires: LocalWires,
}

/// One live communication unit, FSM-described or native, with in-process
/// state.
///
/// # Examples
///
/// ```
/// use cosma_comm::{StandaloneUnit, handshake_unit, CallerId};
/// use cosma_core::{Type, Value};
///
/// let mut unit = StandaloneUnit::from_spec(handshake_unit("link", Type::INT16));
/// let (p, c) = (CallerId(1), CallerId(2));
/// let mut got = None;
/// for _ in 0..20 {
///     unit.call(p, "put", &[Value::Int(7)])?;
///     let g = unit.call(c, "get", &[])?;
///     if g.done { got = g.result; break; }
///     unit.step()?;
/// }
/// assert_eq!(got, Some(Value::Int(7)));
/// # Ok::<(), cosma_core::EvalError>(())
/// ```
pub struct StandaloneUnit {
    name: String,
    inner: Inner,
}

impl fmt::Debug for StandaloneUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StandaloneUnit({})", self.name)
    }
}

impl StandaloneUnit {
    /// Wraps an FSM unit spec with its own local wires.
    #[must_use]
    pub fn from_spec(spec: Arc<CommUnitSpec>) -> Self {
        let wires = LocalWires::new(&spec);
        StandaloneUnit {
            name: spec.name().to_string(),
            inner: Inner::Fsm(Box::new(FsmInner {
                runtime: FsmUnitRuntime::new(spec),
                wires,
            })),
        }
    }

    /// Wraps a native unit.
    #[must_use]
    pub fn from_native(unit: Box<dyn NativeUnit>) -> Self {
        StandaloneUnit {
            name: unit.name().to_string(),
            inner: Inner::Native(unit),
        }
    }

    /// Unit name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One service activation.
    ///
    /// # Errors
    ///
    /// Propagates protocol and argument errors from the underlying unit.
    pub fn call(
        &mut self,
        caller: CallerId,
        service: &str,
        args: &[Value],
    ) -> Result<ServiceOutcome, EvalError> {
        match &mut self.inner {
            Inner::Fsm(f) => f.runtime.call(caller, service, args, &mut f.wires),
            Inner::Native(unit) => unit.call(caller, service, args),
        }
    }

    /// Repeatedly activates a service until it completes or `max_steps`
    /// activations elapse, stepping the unit's background activity between
    /// attempts. Returns the outcome of the completing call, or `None` if
    /// the budget ran out.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors.
    pub fn call_blocking(
        &mut self,
        caller: CallerId,
        service: &str,
        args: &[Value],
        max_steps: u32,
    ) -> Result<Option<ServiceOutcome>, EvalError> {
        for _ in 0..max_steps {
            let out = self.call(caller, service, args)?;
            if out.done {
                return Ok(Some(out));
            }
            self.step()?;
        }
        Ok(None)
    }

    /// One background activation (controller step / native step).
    ///
    /// # Errors
    ///
    /// Propagates controller evaluation errors.
    pub fn step(&mut self) -> Result<(), EvalError> {
        match &mut self.inner {
            Inner::Fsm(f) => f.runtime.step_controller(&mut f.wires),
            Inner::Native(unit) => {
                unit.step();
                Ok(())
            }
        }
    }

    /// Call statistics.
    #[must_use]
    pub fn stats(&self) -> UnitStats {
        match &self.inner {
            Inner::Fsm(f) => f.runtime.stats().clone(),
            Inner::Native(unit) => unit.stats().clone(),
        }
    }

    /// Reads a wire value, for FSM units.
    ///
    /// # Errors
    ///
    /// Returns an error for native units or unknown wires.
    pub fn wire(&self, name: &str) -> Result<Value, EvalError> {
        match &self.inner {
            Inner::Fsm(f) => {
                let id = f
                    .runtime
                    .spec()
                    .wire_id(name)
                    .ok_or_else(|| EvalError::Service(format!("no wire {name}")))?;
                f.wires.read_wire(id)
            }
            Inner::Native(_) => Err(EvalError::Service("native units have no wires".to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::handshake_unit;
    use crate::native::FifoChannel;
    use cosma_core::Type;

    #[test]
    fn fsm_and_native_share_interface() {
        let mut units = vec![
            StandaloneUnit::from_spec(handshake_unit("hs", Type::INT16)),
            StandaloneUnit::from_native(Box::new(FifoChannel::new("fifo", 4))),
        ];
        for unit in &mut units {
            let out = unit
                .call_blocking(CallerId(1), "put", &[Value::Int(5)], 50)
                .unwrap()
                .expect("put completes");
            assert!(out.done);
            let got = unit
                .call_blocking(CallerId(2), "get", &[], 50)
                .unwrap()
                .expect("get completes");
            assert_eq!(got.result, Some(Value::Int(5)));
        }
    }

    #[test]
    fn call_blocking_gives_none_on_budget() {
        let mut unit = StandaloneUnit::from_native(Box::new(FifoChannel::new("fifo", 1)));
        // Empty fifo: get never completes.
        let r = unit.call_blocking(CallerId(1), "get", &[], 5).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn wire_access_for_fsm_units_only() {
        let unit = StandaloneUnit::from_spec(handshake_unit("hs", Type::INT16));
        assert!(unit.wire("B_FULL").is_ok());
        assert!(unit.wire("NOPE").is_err());
        let native = StandaloneUnit::from_native(Box::new(FifoChannel::new("fifo", 1)));
        assert!(native.wire("B_FULL").is_err());
    }

    #[test]
    fn names_surface() {
        let unit = StandaloneUnit::from_spec(handshake_unit("hs", Type::INT16));
        assert_eq!(unit.name(), "hs");
    }
}
