//! Native communication units: platform-provided channels.
//!
//! The paper notes that a communication unit "may correspond to an
//! existing communication platform" whose internals are not synthesized —
//! only its access procedures are swapped per target (e.g. UNIX IPC
//! message queues on a software-only platform). Native units model those:
//! their behaviour is Rust code rather than an FSM, but they expose the
//! same call interface as [`crate::FsmUnitRuntime`].

use crate::runtime::{CallerId, ServiceStats, UnitStats};
use cosma_core::{EvalError, ServiceOutcome, Type, Value};
use std::collections::VecDeque;
use std::fmt;

/// Description of a native service (for system validation and docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeServiceDesc {
    /// Service name.
    pub name: String,
    /// Number of arguments.
    pub arity: usize,
    /// Return type, if any.
    pub returns: Option<Type>,
}

/// A value-bag capture of a native unit's mutable state, produced by
/// [`NativeUnit::save_state`] and consumed by [`NativeUnit::load_state`].
///
/// Native units are arbitrary Rust, so the capture is generic: each
/// implementation packs its state into the three buckets in a layout of
/// its own choosing and unpacks the same layout on load. Statistics ride
/// along so post-restore counter deltas match an uninterrupted run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NativeUnitState {
    /// Scalar state (flags, counters, ids), implementation-defined order.
    pub ints: Vec<i64>,
    /// Flat value state (e.g. memory cells).
    pub values: Vec<Value>,
    /// Queue contents, front first, implementation-defined order.
    pub queues: Vec<Vec<Value>>,
    /// Call statistics at capture time.
    pub stats: UnitStats,
}

/// A communication unit implemented natively (an "existing platform").
///
/// `Sync` is required so a two-phase scheduler can share the unit table
/// read-only across step-phase worker threads (native units are never
/// *called* from those threads — calls to natives always fall back to
/// the sequential commit phase — but the table they live in is).
pub trait NativeUnit: fmt::Debug + Send + Sync {
    /// Unit type name.
    fn name(&self) -> &str;

    /// Offered services.
    fn services(&self) -> Vec<NativeServiceDesc>;

    /// One activation of a service. Must follow the same convention as
    /// FSM services: return `done=false` to make the caller retry.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::Service`] for unknown services or bad
    /// arguments.
    fn call(
        &mut self,
        caller: CallerId,
        service: &str,
        args: &[Value],
    ) -> Result<ServiceOutcome, EvalError>;

    /// Background activity per co-simulation cycle (defaults to none).
    fn step(&mut self) {}

    /// Whether [`NativeUnit::step`] ever does anything. Units that keep
    /// the default no-op `step` return `false` so schedulers (the sharded
    /// backplane) can park them instead of stepping them every cycle;
    /// units with real background activity must return `true` (the
    /// conservative default).
    fn needs_step(&self) -> bool {
        true
    }

    /// The wires whose events can unblock a pending caller of `service`.
    ///
    /// Native units have no wire-level protocol — their state changes
    /// through direct calls from other modules, which produce no kernel
    /// signal events — so the default is the empty set, which tells
    /// schedulers a caller blocked on this unit must **not** be parked
    /// (there is no wire whose event could wake it; it has to keep
    /// polling). A native unit that does mirror its state onto kernel
    /// signals can override this to make its callers parkable.
    fn completion_signals(&self, _service: &str) -> Vec<cosma_core::ids::PortId> {
        vec![]
    }

    /// Queue occupancy to mirror onto a kernel signal, if this unit has
    /// one. A `Some` answer makes the backplane declare an `OCC` signal
    /// for the unit and drive it after every state change, so callers
    /// blocked on the unit can *park* on occupancy events instead of
    /// polling every cycle. `None` (the default) keeps the unit
    /// wire-invisible and its blocked callers polling.
    fn occupancy(&self) -> Option<i64> {
        None
    }

    /// Whether the most recent [`NativeUnit::call`] was a provable no-op
    /// (pending outcome, no state change). Mirrors
    /// [`crate::FsmUnitRuntime::last_call_stable`]: while true, repeating
    /// the call against unchanged unit state yields the identical no-op,
    /// so a scheduler may park the blocked caller — provided the unit
    /// also exposes wake-up wires ([`NativeUnit::occupancy`] or
    /// [`NativeUnit::completion_signals`]). The conservative default is
    /// `false` (callers always poll).
    fn last_call_stable(&self) -> bool {
        false
    }

    /// Call statistics.
    fn stats(&self) -> &UnitStats;

    /// Captures the unit's mutable state as a [`NativeUnitState`] value
    /// bag, or `None` if this unit does not support checkpointing (the
    /// default). A whole-backplane snapshot fails cleanly on a `None`
    /// rather than silently skipping the unit.
    fn save_state(&self) -> Option<NativeUnitState> {
        None
    }

    /// Restores a state previously produced by this implementation's
    /// [`NativeUnit::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::Service`] if the unit does not support
    /// checkpointing (the default) or the bag's layout doesn't match.
    fn load_state(&mut self, _state: &NativeUnitState) -> Result<(), EvalError> {
        Err(EvalError::Service(format!(
            "native unit {} does not support state restore",
            self.name()
        )))
    }

    /// Creates a fresh, state-empty unit of the same kind and
    /// configuration (for [`NativeUnit::load_state`] by a backplane
    /// fork), or `None` if this unit cannot be replicated (the
    /// default) — forking a backplane containing it then fails cleanly.
    fn fork_fresh(&self) -> Option<Box<dyn NativeUnit>> {
        None
    }
}

fn bump(stats: &mut UnitStats, service: &str, done: bool) {
    let s: &mut ServiceStats = stats.services.entry(service.to_string()).or_default();
    s.calls += 1;
    if done {
        s.completions += 1;
    }
}

/// A bounded FIFO channel: `put(v)` completes when space is available,
/// `get() -> v` when data is available. Models an OS pipe / message
/// queue.
///
/// # Examples
///
/// ```
/// use cosma_comm::{FifoChannel, NativeUnit, CallerId};
/// use cosma_core::Value;
///
/// let mut ch = FifoChannel::new("pipe", 2);
/// assert!(ch.call(CallerId(1), "put", &[Value::Int(1)])?.done);
/// assert!(ch.call(CallerId(1), "put", &[Value::Int(2)])?.done);
/// assert!(!ch.call(CallerId(1), "put", &[Value::Int(3)])?.done, "full");
/// let got = ch.call(CallerId(2), "get", &[])?;
/// assert_eq!(got.result, Some(Value::Int(1)));
/// # Ok::<(), cosma_core::EvalError>(())
/// ```
#[derive(Debug)]
pub struct FifoChannel {
    name: String,
    capacity: usize,
    queue: VecDeque<Value>,
    stats: UnitStats,
    /// Whether the last call was a provable no-op (empty get, full put).
    stable: bool,
    /// Rejected puts (channel full) — failure-injection observability.
    pub rejected_puts: u64,
    /// High-water mark of queue occupancy.
    pub high_water: usize,
}

impl FifoChannel {
    /// Creates a channel with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be nonzero");
        FifoChannel {
            name: name.into(),
            capacity,
            queue: VecDeque::new(),
            stats: UnitStats::default(),
            stable: false,
            rejected_puts: 0,
            high_water: 0,
        }
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the channel is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

impl NativeUnit for FifoChannel {
    fn name(&self) -> &str {
        &self.name
    }

    fn needs_step(&self) -> bool {
        false // pure call-driven state, no background activity
    }

    fn occupancy(&self) -> Option<i64> {
        // Wire-visible: the backplane mirrors this onto an `OCC` kernel
        // signal, so callers blocked on an empty get (or a full put) can
        // park on occupancy events instead of polling.
        Some(self.queue.len() as i64)
    }

    fn last_call_stable(&self) -> bool {
        self.stable
    }

    fn services(&self) -> Vec<NativeServiceDesc> {
        vec![
            NativeServiceDesc {
                name: "put".into(),
                arity: 1,
                returns: None,
            },
            NativeServiceDesc {
                name: "get".into(),
                arity: 0,
                returns: Some(Type::INT16),
            },
        ]
    }

    fn call(
        &mut self,
        _caller: CallerId,
        service: &str,
        args: &[Value],
    ) -> Result<ServiceOutcome, EvalError> {
        match service {
            "put" => {
                let [v] = args else {
                    return Err(EvalError::Service("put expects 1 argument".into()));
                };
                if self.queue.len() < self.capacity {
                    self.queue.push_back(v.clone());
                    self.high_water = self.high_water.max(self.queue.len());
                    self.stable = false;
                    bump(&mut self.stats, "put", true);
                    Ok(ServiceOutcome::done())
                } else {
                    self.rejected_puts += 1;
                    self.stable = true;
                    bump(&mut self.stats, "put", false);
                    Ok(ServiceOutcome::pending())
                }
            }
            "get" => {
                if !args.is_empty() {
                    return Err(EvalError::Service("get expects no arguments".into()));
                }
                match self.queue.pop_front() {
                    Some(v) => {
                        self.stable = false;
                        bump(&mut self.stats, "get", true);
                        Ok(ServiceOutcome::done_with(v))
                    }
                    None => {
                        self.stable = true;
                        bump(&mut self.stats, "get", false);
                        Ok(ServiceOutcome::pending())
                    }
                }
            }
            other => Err(EvalError::Service(format!(
                "fifo {} has no service {other}",
                self.name
            ))),
        }
    }

    fn stats(&self) -> &UnitStats {
        &self.stats
    }

    fn save_state(&self) -> Option<NativeUnitState> {
        Some(NativeUnitState {
            ints: vec![
                i64::from(self.stable),
                self.rejected_puts as i64,
                self.high_water as i64,
            ],
            values: vec![],
            queues: vec![self.queue.iter().cloned().collect()],
            stats: self.stats.clone(),
        })
    }

    fn load_state(&mut self, state: &NativeUnitState) -> Result<(), EvalError> {
        let ([stable, rejected, high_water], [queue]) = (&state.ints[..], &state.queues[..]) else {
            return Err(EvalError::Service(format!(
                "fifo {}: snapshot layout mismatch",
                self.name
            )));
        };
        if queue.len() > self.capacity {
            return Err(EvalError::Service(format!(
                "fifo {}: snapshot holds {} values, capacity is {}",
                self.name,
                queue.len(),
                self.capacity
            )));
        }
        self.queue.clear();
        self.queue.extend(queue.iter().cloned());
        self.stable = *stable != 0;
        self.rejected_puts = *rejected as u64;
        self.high_water = *high_water as usize;
        self.stats.clone_from(&state.stats);
        Ok(())
    }

    fn fork_fresh(&self) -> Option<Box<dyn NativeUnit>> {
        Some(Box::new(FifoChannel::new(self.name.clone(), self.capacity)))
    }
}

/// A bidirectional mailbox: two FIFO directions, `send_a`/`recv_a` for
/// the A side and `send_b`/`recv_b` for the B side. Models a UNIX IPC
/// message-queue pair between two processes.
#[derive(Debug)]
pub struct Mailbox {
    name: String,
    a_to_b: VecDeque<Value>,
    b_to_a: VecDeque<Value>,
    capacity: usize,
    stats: UnitStats,
    /// Whether the last call was a provable no-op (empty recv, full send).
    stable: bool,
}

impl Mailbox {
    /// Creates a mailbox with per-direction capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "mailbox capacity must be nonzero");
        Mailbox {
            name: name.into(),
            a_to_b: VecDeque::new(),
            b_to_a: VecDeque::new(),
            capacity,
            stats: UnitStats::default(),
            stable: false,
        }
    }

    /// Messages waiting toward B.
    #[must_use]
    pub fn pending_to_b(&self) -> usize {
        self.a_to_b.len()
    }

    /// Messages waiting toward A.
    #[must_use]
    pub fn pending_to_a(&self) -> usize {
        self.b_to_a.len()
    }
}

impl NativeUnit for Mailbox {
    fn name(&self) -> &str {
        &self.name
    }

    fn needs_step(&self) -> bool {
        false // pure call-driven state, no background activity
    }

    fn occupancy(&self) -> Option<i64> {
        // Total queued messages across both directions: any enqueue or
        // dequeue is then wire-visible, so blocked receivers can park.
        Some((self.a_to_b.len() + self.b_to_a.len()) as i64)
    }

    fn last_call_stable(&self) -> bool {
        self.stable
    }

    fn services(&self) -> Vec<NativeServiceDesc> {
        vec![
            NativeServiceDesc {
                name: "send_a".into(),
                arity: 1,
                returns: None,
            },
            NativeServiceDesc {
                name: "recv_a".into(),
                arity: 0,
                returns: Some(Type::INT16),
            },
            NativeServiceDesc {
                name: "send_b".into(),
                arity: 1,
                returns: None,
            },
            NativeServiceDesc {
                name: "recv_b".into(),
                arity: 0,
                returns: Some(Type::INT16),
            },
        ]
    }

    fn call(
        &mut self,
        _caller: CallerId,
        service: &str,
        args: &[Value],
    ) -> Result<ServiceOutcome, EvalError> {
        let (queue, is_send) = match service {
            "send_a" => (&mut self.a_to_b, true),
            "recv_b" => (&mut self.a_to_b, false),
            "send_b" => (&mut self.b_to_a, true),
            "recv_a" => (&mut self.b_to_a, false),
            other => {
                return Err(EvalError::Service(format!(
                    "mailbox {} has no service {other}",
                    self.name
                )))
            }
        };
        if is_send {
            let [v] = args else {
                return Err(EvalError::Service(format!("{service} expects 1 argument")));
            };
            if queue.len() < self.capacity {
                queue.push_back(v.clone());
                self.stable = false;
                bump(&mut self.stats, service, true);
                Ok(ServiceOutcome::done())
            } else {
                self.stable = true;
                bump(&mut self.stats, service, false);
                Ok(ServiceOutcome::pending())
            }
        } else {
            if !args.is_empty() {
                return Err(EvalError::Service(format!(
                    "{service} expects no arguments"
                )));
            }
            match queue.pop_front() {
                Some(v) => {
                    self.stable = false;
                    bump(&mut self.stats, service, true);
                    Ok(ServiceOutcome::done_with(v))
                }
                None => {
                    self.stable = true;
                    bump(&mut self.stats, service, false);
                    Ok(ServiceOutcome::pending())
                }
            }
        }
    }

    fn stats(&self) -> &UnitStats {
        &self.stats
    }

    fn save_state(&self) -> Option<NativeUnitState> {
        Some(NativeUnitState {
            ints: vec![i64::from(self.stable)],
            values: vec![],
            queues: vec![
                self.a_to_b.iter().cloned().collect(),
                self.b_to_a.iter().cloned().collect(),
            ],
            stats: self.stats.clone(),
        })
    }

    fn load_state(&mut self, state: &NativeUnitState) -> Result<(), EvalError> {
        let ([stable], [a_to_b, b_to_a]) = (&state.ints[..], &state.queues[..]) else {
            return Err(EvalError::Service(format!(
                "mailbox {}: snapshot layout mismatch",
                self.name
            )));
        };
        if a_to_b.len() > self.capacity || b_to_a.len() > self.capacity {
            return Err(EvalError::Service(format!(
                "mailbox {}: snapshot exceeds per-direction capacity {}",
                self.name, self.capacity
            )));
        }
        self.a_to_b.clear();
        self.a_to_b.extend(a_to_b.iter().cloned());
        self.b_to_a.clear();
        self.b_to_a.extend(b_to_a.iter().cloned());
        self.stable = *stable != 0;
        self.stats.clone_from(&state.stats);
        Ok(())
    }

    fn fork_fresh(&self) -> Option<Box<dyn NativeUnit>> {
        Some(Box::new(Mailbox::new(self.name.clone(), self.capacity)))
    }
}

/// A lock-guarded shared memory with addressed `load(addr)` /
/// `store(addr, v)` plus `acquire()` / `release()`.
#[derive(Debug)]
pub struct SharedMemory {
    name: String,
    cells: Vec<Value>,
    holder: Option<CallerId>,
    stats: UnitStats,
    /// Accesses performed without holding the lock (race detector).
    pub unlocked_accesses: u64,
}

impl SharedMemory {
    /// Creates a memory of `size` 16-bit words, zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, size: usize) -> Self {
        assert!(size > 0, "shared memory size must be nonzero");
        SharedMemory {
            name: name.into(),
            cells: vec![Value::Int(0); size],
            holder: None,
            stats: UnitStats::default(),
            unlocked_accesses: 0,
        }
    }

    fn addr_of(&self, v: &Value) -> Result<usize, EvalError> {
        let a = v.as_int().map_err(|e| EvalError::Service(e.to_string()))?;
        if a < 0 || a as usize >= self.cells.len() {
            return Err(EvalError::Service(format!(
                "address {a} out of range (size {})",
                self.cells.len()
            )));
        }
        Ok(a as usize)
    }
}

impl NativeUnit for SharedMemory {
    fn name(&self) -> &str {
        &self.name
    }

    fn needs_step(&self) -> bool {
        false // pure call-driven state, no background activity
    }

    fn services(&self) -> Vec<NativeServiceDesc> {
        vec![
            NativeServiceDesc {
                name: "acquire".into(),
                arity: 0,
                returns: None,
            },
            NativeServiceDesc {
                name: "release".into(),
                arity: 0,
                returns: None,
            },
            NativeServiceDesc {
                name: "load".into(),
                arity: 1,
                returns: Some(Type::INT16),
            },
            NativeServiceDesc {
                name: "store".into(),
                arity: 2,
                returns: None,
            },
        ]
    }

    fn call(
        &mut self,
        caller: CallerId,
        service: &str,
        args: &[Value],
    ) -> Result<ServiceOutcome, EvalError> {
        match service {
            "acquire" => match self.holder {
                None => {
                    self.holder = Some(caller);
                    bump(&mut self.stats, service, true);
                    Ok(ServiceOutcome::done())
                }
                Some(h) if h == caller => {
                    bump(&mut self.stats, service, true);
                    Ok(ServiceOutcome::done())
                }
                Some(_) => {
                    bump(&mut self.stats, service, false);
                    Ok(ServiceOutcome::pending())
                }
            },
            "release" => {
                if self.holder == Some(caller) {
                    self.holder = None;
                }
                bump(&mut self.stats, service, true);
                Ok(ServiceOutcome::done())
            }
            "load" => {
                let [addr] = args else {
                    return Err(EvalError::Service("load expects 1 argument".into()));
                };
                if self.holder != Some(caller) {
                    self.unlocked_accesses += 1;
                }
                let a = self.addr_of(addr)?;
                bump(&mut self.stats, service, true);
                Ok(ServiceOutcome::done_with(self.cells[a].clone()))
            }
            "store" => {
                let [addr, v] = args else {
                    return Err(EvalError::Service("store expects 2 arguments".into()));
                };
                if self.holder != Some(caller) {
                    self.unlocked_accesses += 1;
                }
                let a = self.addr_of(addr)?;
                self.cells[a] = v.clone();
                bump(&mut self.stats, service, true);
                Ok(ServiceOutcome::done())
            }
            other => Err(EvalError::Service(format!(
                "shared memory {} has no service {other}",
                self.name
            ))),
        }
    }

    fn stats(&self) -> &UnitStats {
        &self.stats
    }

    fn save_state(&self) -> Option<NativeUnitState> {
        Some(NativeUnitState {
            ints: vec![
                i64::from(self.holder.is_some()),
                // CallerId bits, cast-preserved through i64.
                self.holder.map_or(0, |c| c.0 as i64),
                self.unlocked_accesses as i64,
            ],
            values: self.cells.clone(),
            queues: vec![],
            stats: self.stats.clone(),
        })
    }

    fn load_state(&mut self, state: &NativeUnitState) -> Result<(), EvalError> {
        let [has_holder, holder_bits, unlocked] = state.ints[..] else {
            return Err(EvalError::Service(format!(
                "shared memory {}: snapshot layout mismatch",
                self.name
            )));
        };
        if state.values.len() != self.cells.len() {
            return Err(EvalError::Service(format!(
                "shared memory {}: snapshot has {} cells, memory has {}",
                self.name,
                state.values.len(),
                self.cells.len()
            )));
        }
        self.cells.clone_from(&state.values);
        self.holder = (has_holder != 0).then_some(CallerId(holder_bits as u64));
        self.unlocked_accesses = unlocked as u64;
        self.stats.clone_from(&state.stats);
        Ok(())
    }

    fn fork_fresh(&self) -> Option<Box<dyn NativeUnit>> {
        Some(Box::new(SharedMemory::new(
            self.name.clone(),
            self.cells.len(),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_preserves_order_and_bounds() {
        let mut ch = FifoChannel::new("q", 3);
        for i in 0..3 {
            assert!(ch.call(CallerId(0), "put", &[Value::Int(i)]).unwrap().done);
        }
        assert!(!ch.call(CallerId(0), "put", &[Value::Int(99)]).unwrap().done);
        assert_eq!(ch.rejected_puts, 1);
        assert_eq!(ch.high_water, 3);
        for i in 0..3 {
            let g = ch.call(CallerId(1), "get", &[]).unwrap();
            assert_eq!(g.result, Some(Value::Int(i)));
        }
        assert!(!ch.call(CallerId(1), "get", &[]).unwrap().done);
        assert!(ch.is_empty());
    }

    #[test]
    fn fifo_bad_calls_are_errors() {
        let mut ch = FifoChannel::new("q", 1);
        assert!(ch.call(CallerId(0), "nope", &[]).is_err());
        assert!(ch.call(CallerId(0), "put", &[]).is_err());
        assert!(ch.call(CallerId(0), "get", &[Value::Int(1)]).is_err());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_fifo_panics() {
        let _ = FifoChannel::new("q", 0);
    }

    #[test]
    fn mailbox_directions_are_independent() {
        let mut mb = Mailbox::new("ipc", 4);
        assert!(
            mb.call(CallerId(1), "send_a", &[Value::Int(10)])
                .unwrap()
                .done
        );
        assert!(
            mb.call(CallerId(2), "send_b", &[Value::Int(20)])
                .unwrap()
                .done
        );
        assert_eq!(mb.pending_to_b(), 1);
        assert_eq!(mb.pending_to_a(), 1);
        let at_b = mb.call(CallerId(2), "recv_b", &[]).unwrap();
        assert_eq!(at_b.result, Some(Value::Int(10)));
        let at_a = mb.call(CallerId(1), "recv_a", &[]).unwrap();
        assert_eq!(at_a.result, Some(Value::Int(20)));
        assert!(!mb.call(CallerId(1), "recv_a", &[]).unwrap().done);
    }

    #[test]
    fn shared_memory_lock_and_addressing() {
        let mut sm = SharedMemory::new("mem", 8);
        let a = CallerId(1);
        let b = CallerId(2);
        assert!(sm.call(a, "acquire", &[]).unwrap().done);
        assert!(
            sm.call(a, "acquire", &[]).unwrap().done,
            "reentrant for holder"
        );
        assert!(!sm.call(b, "acquire", &[]).unwrap().done);
        assert!(
            sm.call(a, "store", &[Value::Int(3), Value::Int(42)])
                .unwrap()
                .done
        );
        let v = sm.call(a, "load", &[Value::Int(3)]).unwrap();
        assert_eq!(v.result, Some(Value::Int(42)));
        assert_eq!(sm.unlocked_accesses, 0);
        assert!(sm.call(a, "release", &[]).unwrap().done);
        assert!(sm.call(b, "acquire", &[]).unwrap().done);
    }

    #[test]
    fn shared_memory_detects_unlocked_access() {
        let mut sm = SharedMemory::new("mem", 4);
        assert!(
            sm.call(CallerId(9), "store", &[Value::Int(0), Value::Int(1)])
                .unwrap()
                .done
        );
        assert_eq!(sm.unlocked_accesses, 1);
    }

    #[test]
    fn shared_memory_address_bounds() {
        let mut sm = SharedMemory::new("mem", 4);
        assert!(sm.call(CallerId(0), "load", &[Value::Int(4)]).is_err());
        assert!(sm.call(CallerId(0), "load", &[Value::Int(-1)]).is_err());
    }

    #[test]
    fn release_by_non_holder_is_harmless() {
        let mut sm = SharedMemory::new("mem", 4);
        assert!(sm.call(CallerId(1), "acquire", &[]).unwrap().done);
        assert!(sm.call(CallerId(2), "release", &[]).unwrap().done);
        // CallerId(1) still holds it.
        assert!(!sm.call(CallerId(2), "acquire", &[]).unwrap().done);
    }

    #[test]
    fn service_descriptions() {
        let ch = FifoChannel::new("q", 1);
        let svcs = ch.services();
        assert_eq!(svcs.len(), 2);
        assert_eq!(svcs[0].name, "put");
        assert_eq!(svcs[0].arity, 1);
        assert_eq!(svcs[1].returns, Some(Type::INT16));
    }

    #[test]
    fn fifo_save_load_fork_round_trip() {
        let mut ch = FifoChannel::new("q", 3);
        for i in 0..3 {
            ch.call(CallerId(0), "put", &[Value::Int(i)]).unwrap();
        }
        // One rejected put and one drained value: non-trivial counters.
        ch.call(CallerId(0), "put", &[Value::Int(99)]).unwrap();
        ch.call(CallerId(1), "get", &[]).unwrap();
        let snap = ch.save_state().expect("fifo supports checkpointing");

        // Fork an empty twin of the same configuration and load: every
        // observable — contents, counters, stats — matches the original.
        let mut twin = ch.fork_fresh().expect("fifo supports forking");
        assert_eq!(twin.name(), ch.name());
        assert!(twin.stats().services.is_empty(), "fork starts fresh");
        twin.load_state(&snap).unwrap();
        assert_eq!(twin.save_state(), Some(snap.clone()));
        assert_eq!(twin.stats(), ch.stats());

        // Both drain the same remaining sequence.
        for want in [1, 2] {
            let a = ch.call(CallerId(1), "get", &[]).unwrap();
            let b = twin.call(CallerId(1), "get", &[]).unwrap();
            assert_eq!(a.result, Some(Value::Int(want)));
            assert_eq!(b.result, a.result);
        }

        // A smaller-capacity target refuses the snapshot untouched.
        let mut tiny = FifoChannel::new("q", 1);
        tiny.call(CallerId(0), "put", &[Value::Int(5)]).unwrap();
        let before = tiny.save_state();
        let err = tiny.load_state(&snap).unwrap_err();
        assert!(err.to_string().contains("capacity"));
        assert_eq!(tiny.save_state(), before, "refused load is a no-op");

        // A malformed value bag is a typed error, not a panic.
        let err = ch.load_state(&NativeUnitState::default()).unwrap_err();
        assert!(err.to_string().contains("layout"));
    }

    #[test]
    fn mailbox_and_shared_memory_round_trip() {
        let mut mb = Mailbox::new("ipc", 4);
        mb.call(CallerId(1), "send_a", &[Value::Int(10)]).unwrap();
        mb.call(CallerId(2), "send_b", &[Value::Int(20)]).unwrap();
        mb.call(CallerId(1), "send_a", &[Value::Int(11)]).unwrap();
        let snap = mb.save_state().expect("mailbox supports checkpointing");
        let mut twin = mb.fork_fresh().expect("mailbox supports forking");
        twin.load_state(&snap).unwrap();
        assert_eq!(twin.save_state(), Some(snap));
        // Both directions survive with their order intact.
        let b1 = twin.call(CallerId(2), "recv_b", &[]).unwrap();
        let b2 = twin.call(CallerId(2), "recv_b", &[]).unwrap();
        let a1 = twin.call(CallerId(1), "recv_a", &[]).unwrap();
        assert_eq!(b1.result, Some(Value::Int(10)));
        assert_eq!(b2.result, Some(Value::Int(11)));
        assert_eq!(a1.result, Some(Value::Int(20)));

        let mut sm = SharedMemory::new("mem", 8);
        sm.call(CallerId(1), "acquire", &[]).unwrap();
        sm.call(CallerId(1), "store", &[Value::Int(3), Value::Int(42)])
            .unwrap();
        let snap = sm.save_state().expect("shared memory checkpoints");
        let mut twin = sm.fork_fresh().expect("shared memory forks");
        twin.load_state(&snap).unwrap();
        assert_eq!(twin.save_state(), Some(snap));
        // The lock holder survives the restore: others still blocked,
        // the holder still sees its store.
        assert!(!twin.call(CallerId(2), "acquire", &[]).unwrap().done);
        let v = twin.call(CallerId(1), "load", &[Value::Int(3)]).unwrap();
        assert_eq!(v.result, Some(Value::Int(42)));
    }
}
