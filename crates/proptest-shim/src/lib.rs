//! A minimal, dependency-free stand-in for the `proptest`
//! property-testing framework, so the workspace's property tests run in
//! offline build environments.
//!
//! It covers the API slice this workspace uses: the [`proptest!`] macro
//! (with optional `#![proptest_config(..)]`), [`Strategy`] with
//! `prop_map` / `prop_recursive` / `boxed`, [`BoxedStrategy`], [`Just`],
//! [`any`], integer-range and tuple strategies,
//! [`collection::vec`](collection::vec), [`prop_oneof!`],
//! [`prop_assert!`] and [`prop_assert_eq!`].
//!
//! Generation is a deterministic splitmix64 stream seeded per test case,
//! so failures are reproducible run-to-run. There is no shrinking: a
//! failing case reports its case index and seed.

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic test RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------

/// Why a test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with a message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runs a property body over generated cases, panicking on the first
/// failure with its case index and seed.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner.
    #[must_use]
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `body` once per case with a per-case deterministic RNG.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case.
    pub fn run(&mut self, mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
        for case in 0..self.config.cases {
            let seed = 0xC05F_A000 ^ u64::from(case).wrapping_mul(0x2545_F491_4F6C_DD1D);
            let mut rng = TestRng::new(seed);
            if let Err(e) = body(&mut rng) {
                panic!("property failed at case {case} (seed {seed:#x}): {e}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: up to `depth` levels of `expand`
    /// applied over this leaf strategy. The extra parameters mirror
    /// proptest's signature (target size, expected branch factor) and
    /// are accepted for compatibility.
    fn prop_recursive<F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value>,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let expanded = expand(current);
            current = Union::new(vec![leaf.clone(), expanded]).boxed();
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        self.inner.gen(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (the engine behind
/// [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; `options` must be nonempty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].gen(rng)
    }
}

// ---------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` (full range for integers/bool).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.below(span);
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy behind [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.gen(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (@impl ($config:expr) $(
        #[test]
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut runner = $crate::TestRunner::new(config);
            runner.run(|rng| {
                $(
                    let strategy = $strategy;
                    let $arg = $crate::Strategy::gen(&strategy, rng);
                )+
                (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })()
            });
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($alt)),+])
    };
}

/// The usual glob import: strategies, macros, config.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::gen(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
            let u = Strategy::gen(&(1usize..16), &mut rng);
            assert!((1..16).contains(&u));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let v = Strategy::gen(&crate::collection::vec(0u8..3, 1..5), &mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let s = crate::collection::vec(-100i64..100, 3..10);
        let a = Strategy::gen(&s, &mut TestRng::new(99));
        let b = Strategy::gen(&s, &mut TestRng::new(99));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_roundtrip(xs in crate::collection::vec(any::<u16>(), 1..20), k in 1u64..5) {
            let doubled: Vec<u64> = xs.iter().map(|&x| u64::from(x) * k).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            prop_assert!(k >= 1, "k was {}", k);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1i64), 10i64..20, (0i64..3).prop_map(|x| x * 100)]) {
            prop_assert!(v == 1 || (10..20).contains(&v) || v % 100 == 0);
        }
    }
}
