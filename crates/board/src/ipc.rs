//! The software-only target platform: modules scheduled in-process,
//! communicating through native units (the paper's "communication
//! procedure calls expanded into UNIX IPC system calls").
//!
//! On this platform there is no synthesis step for the modules — the C
//! code runs on the host OS; our executable equivalent activates the
//! module FSMs directly, with each service call dispatched to a native
//! unit (mailbox, FIFO, shared memory). Retargeting the unchanged system
//! here demonstrates the paper's multi-platform claim.

use cosma_comm::{CallerId, StandaloneUnit};
use cosma_core::ids::{PortId, VarId};
use cosma_core::{
    Env, EvalError, FsmExec, Module, ReadEnv, ServiceCall, ServiceOutcome, Type, Value,
};
use cosma_cosim::TraceLog;
use std::fmt;

/// Identifies a module on the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IpcModuleId(usize);

/// Identifies a unit on the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IpcUnitId(usize);

struct IpcModule {
    name: String,
    module: Module,
    exec: FsmExec,
    vars: Vec<Value>,
    var_tys: Vec<Type>,
    ports: Vec<Value>,
    port_tys: Vec<Type>,
    /// Unit index per binding.
    bindings: Vec<usize>,
}

/// Platform errors.
#[derive(Debug, Clone, PartialEq)]
pub enum IpcError {
    /// Module setup problems.
    Setup(String),
    /// Evaluation error during a run.
    Runtime(String),
}

impl fmt::Display for IpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpcError::Setup(m) | IpcError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for IpcError {}

struct IpcEnv<'a> {
    vars: &'a mut [Value],
    var_tys: &'a [Type],
    ports: &'a mut [Value],
    port_tys: &'a [Type],
    units: &'a mut [StandaloneUnit],
    bindings: &'a [usize],
    caller_base: u64,
    trace: &'a mut TraceLog,
    source: &'a str,
    now: u64,
}

impl ReadEnv for IpcEnv<'_> {
    fn read_var(&self, v: VarId) -> Result<Value, EvalError> {
        self.vars
            .get(v.index())
            .cloned()
            .ok_or(EvalError::NoSuchVar(v))
    }
    fn read_port(&self, p: PortId) -> Result<Value, EvalError> {
        self.ports
            .get(p.index())
            .cloned()
            .ok_or(EvalError::NoSuchPort(p))
    }
}

impl Env for IpcEnv<'_> {
    fn write_var(&mut self, v: VarId, value: Value) -> Result<(), EvalError> {
        let ty = self.var_tys.get(v.index()).ok_or(EvalError::NoSuchVar(v))?;
        let slot = self
            .vars
            .get_mut(v.index())
            .ok_or(EvalError::NoSuchVar(v))?;
        *slot = ty.clamp(value);
        Ok(())
    }
    fn drive_port(&mut self, p: PortId, value: Value) -> Result<(), EvalError> {
        let ty = self
            .port_tys
            .get(p.index())
            .ok_or(EvalError::NoSuchPort(p))?;
        let slot = self
            .ports
            .get_mut(p.index())
            .ok_or(EvalError::NoSuchPort(p))?;
        *slot = ty.clamp(value);
        Ok(())
    }
    fn call_service(
        &mut self,
        call: &ServiceCall,
        args: &[Value],
    ) -> Result<ServiceOutcome, EvalError> {
        let ui = *self
            .bindings
            .get(call.binding.index())
            .ok_or_else(|| EvalError::Service(format!("binding {} unbound", call.binding)))?;
        let caller = CallerId(self.caller_base * 256 + call.binding.raw() as u64);
        let unit = self.units.get_mut(ui).ok_or_else(|| {
            EvalError::Service(format!("binding {} resolved to missing unit", call.binding))
        })?;
        unit.call(caller, &call.service, args)
    }
    fn trace(&mut self, label: &str, values: &[Value]) {
        self.trace.record(self.now, self.source, label, values);
    }
}

/// The software-only platform: round-robin module activation over native
/// units.
///
/// # Examples
///
/// See `examples/multi_platform.rs`, which retargets the motor system
/// here unchanged.
pub struct IpcPlatform {
    modules: Vec<IpcModule>,
    units: Vec<StandaloneUnit>,
    trace: TraceLog,
    steps: u64,
}

impl fmt::Debug for IpcPlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IpcPlatform")
            .field("modules", &self.modules.len())
            .field("units", &self.units.len())
            .finish_non_exhaustive()
    }
}

impl Default for IpcPlatform {
    fn default() -> Self {
        Self::new()
    }
}

impl IpcPlatform {
    /// Creates an empty platform.
    #[must_use]
    pub fn new() -> Self {
        IpcPlatform {
            modules: vec![],
            units: vec![],
            trace: TraceLog::new(),
            steps: 0,
        }
    }

    /// Installs a communication unit (typically a native mailbox/FIFO;
    /// FSM units also work).
    pub fn add_unit(&mut self, unit: StandaloneUnit) -> IpcUnitId {
        self.units.push(unit);
        IpcUnitId(self.units.len() - 1)
    }

    /// Schedules a module, resolving its bindings to installed units.
    ///
    /// # Errors
    ///
    /// Returns [`IpcError::Setup`] if a binding name is missing.
    pub fn add_module(
        &mut self,
        module: &Module,
        bindings: &[(&str, IpcUnitId)],
    ) -> Result<IpcModuleId, IpcError> {
        let mut resolved = vec![usize::MAX; module.bindings().len()];
        for (name, uid) in bindings {
            let Some(bid) = module.binding_id(name) else {
                return Err(IpcError::Setup(format!(
                    "module {} has no binding {name}",
                    module.name()
                )));
            };
            resolved[bid.index()] = uid.0;
        }
        if let Some(i) = resolved.iter().position(|&u| u == usize::MAX) {
            return Err(IpcError::Setup(format!(
                "module {}: binding {} unbound",
                module.name(),
                module.bindings()[i].name()
            )));
        }
        let id = IpcModuleId(self.modules.len());
        self.modules.push(IpcModule {
            name: module.name().to_string(),
            exec: FsmExec::new(module.fsm()),
            vars: module.vars().iter().map(|v| v.init().clone()).collect(),
            var_tys: module.vars().iter().map(|v| v.ty().clone()).collect(),
            ports: module
                .ports()
                .iter()
                .map(|p| p.ty().default_value())
                .collect(),
            port_tys: module.ports().iter().map(|p| p.ty().clone()).collect(),
            bindings: resolved,
            module: module.clone(),
        });
        Ok(id)
    }

    /// One scheduler round: every module is activated once (one FSM
    /// transition), then every unit performs its background step.
    ///
    /// # Errors
    ///
    /// Returns [`IpcError::Runtime`] on evaluation errors.
    pub fn step(&mut self) -> Result<(), IpcError> {
        self.steps += 1;
        for (mi, m) in self.modules.iter_mut().enumerate() {
            let mut env = IpcEnv {
                vars: &mut m.vars,
                var_tys: &m.var_tys,
                ports: &mut m.ports,
                port_tys: &m.port_tys,
                units: &mut self.units,
                bindings: &m.bindings,
                caller_base: mi as u64,
                trace: &mut self.trace,
                source: &m.name,
                now: self.steps,
            };
            m.exec
                .step(m.module.fsm(), &mut env)
                .map_err(|e| IpcError::Runtime(format!("module {}: {e}", m.name)))?;
        }
        for u in &mut self.units {
            u.step()
                .map_err(|e| IpcError::Runtime(format!("unit {}: {e}", u.name())))?;
        }
        Ok(())
    }

    /// Runs `n` scheduler rounds.
    ///
    /// # Errors
    ///
    /// Propagates the first runtime error.
    pub fn run(&mut self, n: u64) -> Result<(), IpcError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Current FSM state name of a module.
    #[must_use]
    pub fn module_state(&self, id: IpcModuleId) -> &str {
        let m = &self.modules[id.0];
        m.module.fsm().state(m.exec.current()).name()
    }

    /// Current value of a module variable.
    #[must_use]
    pub fn module_var(&self, id: IpcModuleId, var: &str) -> Option<Value> {
        let m = &self.modules[id.0];
        let vid = m.module.var_id(var)?;
        m.vars.get(vid.index()).cloned()
    }

    /// Snapshot of the trace log.
    #[must_use]
    pub fn trace_log(&self) -> TraceLog {
        self.trace.clone()
    }

    /// Access to an installed unit (stats).
    #[must_use]
    pub fn unit(&self, id: IpcUnitId) -> &StandaloneUnit {
        &self.units[id.0]
    }

    /// Scheduler rounds executed.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma_comm::{FifoChannel, Mailbox};
    use cosma_core::{Expr, ModuleBuilder, ModuleKind, Stmt};

    fn producer(service: &str, n: i64) -> Module {
        let mut b = ModuleBuilder::new("producer", ModuleKind::Software);
        let done = b.var("D", Type::Bool, Value::Bool(false));
        let i = b.var("I", Type::INT16, Value::Int(0));
        let bid = b.binding("chan", "ipc");
        let s = b.state("SEND");
        let e = b.state("END");
        b.actions(
            s,
            vec![Stmt::Call(ServiceCall {
                binding: bid,
                service: service.into(),
                args: vec![Expr::var(i).mul(Expr::int(10))],
                done: Some(done),
                result: None,
            })],
        );
        b.transition_with(
            s,
            Some(Expr::var(done).and(Expr::var(i).ge(Expr::int(n - 1)))),
            vec![],
            e,
        );
        b.transition_with(
            s,
            Some(Expr::var(done)),
            vec![Stmt::assign(i, Expr::var(i).add(Expr::int(1)))],
            s,
        );
        b.transition(e, None, e);
        b.initial(s);
        b.build().unwrap()
    }

    fn consumer(service: &str, n: i64) -> Module {
        let mut b = ModuleBuilder::new("consumer", ModuleKind::Software);
        let done = b.var("D", Type::Bool, Value::Bool(false));
        let got = b.var("GOT", Type::INT16, Value::Int(0));
        let sum = b.var("SUM", Type::INT16, Value::Int(0));
        let cnt = b.var("CNT", Type::INT16, Value::Int(0));
        let bid = b.binding("chan", "ipc");
        let s = b.state("RECV");
        let e = b.state("END");
        b.actions(
            s,
            vec![Stmt::Call(ServiceCall {
                binding: bid,
                service: service.into(),
                args: vec![],
                done: Some(done),
                result: Some(got),
            })],
        );
        b.transition_with(
            s,
            Some(Expr::var(done).and(Expr::var(cnt).ge(Expr::int(n - 1)))),
            vec![Stmt::assign(sum, Expr::var(sum).add(Expr::var(got)))],
            e,
        );
        b.transition_with(
            s,
            Some(Expr::var(done)),
            vec![
                Stmt::assign(sum, Expr::var(sum).add(Expr::var(got))),
                Stmt::assign(cnt, Expr::var(cnt).add(Expr::int(1))),
            ],
            s,
        );
        b.transition(e, None, e);
        b.initial(s);
        b.build().unwrap()
    }

    #[test]
    fn fifo_pipeline_runs() {
        let mut plat = IpcPlatform::new();
        let ch = plat.add_unit(StandaloneUnit::from_native(Box::new(FifoChannel::new(
            "pipe", 4,
        ))));
        let p = plat
            .add_module(&producer("put", 4), &[("chan", ch)])
            .unwrap();
        let c = plat
            .add_module(&consumer("get", 4), &[("chan", ch)])
            .unwrap();
        plat.run(50).unwrap();
        assert_eq!(plat.module_state(p), "END");
        assert_eq!(plat.module_state(c), "END");
        // 0 + 10 + 20 + 30
        assert_eq!(plat.module_var(c, "SUM"), Some(Value::Int(60)));
    }

    #[test]
    fn mailbox_bidirectional() {
        // A sends on send_a, B replies on send_b; both complete.
        let mut a = ModuleBuilder::new("a", ModuleKind::Software);
        let done = a.var("D", Type::Bool, Value::Bool(false));
        let got = a.var("GOT", Type::INT16, Value::Int(0));
        let bid = a.binding("mb", "ipc");
        let s1 = a.state("SEND");
        let s2 = a.state("RECV");
        let e = a.state("END");
        a.actions(
            s1,
            vec![Stmt::Call(ServiceCall {
                binding: bid,
                service: "send_a".into(),
                args: vec![Expr::int(5)],
                done: Some(done),
                result: None,
            })],
        );
        a.transition(s1, Some(Expr::var(done)), s2);
        a.actions(
            s2,
            vec![Stmt::Call(ServiceCall {
                binding: bid,
                service: "recv_a".into(),
                args: vec![],
                done: Some(done),
                result: Some(got),
            })],
        );
        a.transition(s2, Some(Expr::var(done)), e);
        a.transition(e, None, e);
        a.initial(s1);
        let a = a.build().unwrap();

        let mut b = ModuleBuilder::new("b", ModuleKind::Software);
        let done = b.var("D", Type::Bool, Value::Bool(false));
        let got = b.var("GOT", Type::INT16, Value::Int(0));
        let bid = b.binding("mb", "ipc");
        let s1 = b.state("RECV");
        let s2 = b.state("REPLY");
        let e = b.state("END");
        b.actions(
            s1,
            vec![Stmt::Call(ServiceCall {
                binding: bid,
                service: "recv_b".into(),
                args: vec![],
                done: Some(done),
                result: Some(got),
            })],
        );
        b.transition(s1, Some(Expr::var(done)), s2);
        b.actions(
            s2,
            vec![Stmt::Call(ServiceCall {
                binding: bid,
                service: "send_b".into(),
                args: vec![Expr::var(got).add(Expr::int(1))],
                done: Some(done),
                result: None,
            })],
        );
        b.transition(s2, Some(Expr::var(done)), e);
        b.transition(e, None, e);
        b.initial(s1);
        let b = b.build().unwrap();

        let mut plat = IpcPlatform::new();
        let mb = plat.add_unit(StandaloneUnit::from_native(Box::new(Mailbox::new("mb", 2))));
        let aid = plat.add_module(&a, &[("mb", mb)]).unwrap();
        let bid2 = plat.add_module(&b, &[("mb", mb)]).unwrap();
        plat.run(20).unwrap();
        assert_eq!(plat.module_state(aid), "END");
        assert_eq!(plat.module_state(bid2), "END");
        assert_eq!(plat.module_var(aid, "GOT"), Some(Value::Int(6)));
        assert_eq!(plat.module_var(bid2, "GOT"), Some(Value::Int(5)));
    }

    #[test]
    fn unbound_binding_rejected() {
        let mut plat = IpcPlatform::new();
        let err = plat.add_module(&producer("put", 1), &[]).unwrap_err();
        assert!(matches!(err, IpcError::Setup(_)));
    }

    #[test]
    fn unknown_service_is_runtime_error() {
        let mut plat = IpcPlatform::new();
        let ch = plat.add_unit(StandaloneUnit::from_native(Box::new(FifoChannel::new(
            "pipe", 1,
        ))));
        plat.add_module(&producer("bogus", 1), &[("chan", ch)])
            .unwrap();
        let err = plat.run(5).unwrap_err();
        assert!(matches!(err, IpcError::Runtime(_)));
        assert!(err.to_string().contains("bogus"));
    }
}
