//! The wire bank: the register file at the FPGA's bus interface.
//!
//! Co-synthesis surfaces every communication-unit wire as a named slot
//! here. The CPU reaches slots through `IN`/`OUT` at mapped addresses;
//! synthesized netlists read them as inputs and drive them through their
//! write-enable outputs; peripherals (the motor model) sample and poke
//! them directly.

use std::collections::HashMap;
use std::fmt;

/// Index of a wire slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(pub(crate) usize);

/// A named register file of bus-visible wires.
#[derive(Debug, Clone, Default)]
pub struct WireBank {
    slots: Vec<Slot>,
    by_name: HashMap<String, SlotId>,
}

#[derive(Debug, Clone)]
struct Slot {
    name: String,
    width: u32,
    value: u64,
    writes: u64,
}

impl WireBank {
    /// Creates an empty bank.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a wire slot; re-declaring a name returns the existing
    /// slot (widths must agree).
    ///
    /// # Panics
    ///
    /// Panics if the name exists with a different width.
    pub fn add(&mut self, name: &str, width: u32, init: u64) -> SlotId {
        if let Some(&id) = self.by_name.get(name) {
            assert_eq!(
                self.slots[id.0].width, width,
                "wire {name} redeclared with different width"
            );
            return id;
        }
        let id = SlotId(self.slots.len());
        self.slots.push(Slot {
            name: name.to_string(),
            width,
            value: init & mask(width),
            writes: 0,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Finds a slot by name.
    #[must_use]
    pub fn index(&self, name: &str) -> Option<SlotId> {
        self.by_name.get(name).copied()
    }

    /// Reads a slot.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this bank.
    #[must_use]
    pub fn read(&self, id: SlotId) -> u64 {
        self.slots[id.0].value
    }

    /// Writes a slot (masked to its width).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this bank.
    pub fn write(&mut self, id: SlotId, value: u64) {
        let slot = &mut self.slots[id.0];
        slot.value = value & mask(slot.width);
        slot.writes += 1;
    }

    /// Reads by name.
    #[must_use]
    pub fn read_named(&self, name: &str) -> Option<u64> {
        self.index(name).map(|id| self.read(id))
    }

    /// Writes by name; returns `false` if the name is unknown.
    pub fn write_named(&mut self, name: &str, value: u64) -> bool {
        match self.index(name) {
            Some(id) => {
                self.write(id, value);
                true
            }
            None => false,
        }
    }

    /// Lifetime write count of a slot.
    #[must_use]
    pub fn write_count(&self, id: SlotId) -> u64 {
        self.slots[id.0].writes
    }

    /// Slot name.
    #[must_use]
    pub fn name(&self, id: SlotId) -> &str {
        &self.slots[id.0].name
    }

    /// Slot width.
    #[must_use]
    pub fn width(&self, id: SlotId) -> u32 {
        self.slots[id.0].width
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the bank is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.slots.iter().map(|s| (s.name.as_str(), s.value))
    }
}

impl fmt::Display for WireBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.slots {
            writeln!(f, "{} = {:#x} ({} bits)", s.name, s.value, s.width)?;
        }
        Ok(())
    }
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_read_write() {
        let mut bank = WireBank::new();
        let a = bank.add("link_DATA", 16, 0);
        let b = bank.add("link_B_FULL", 1, 0);
        assert_ne!(a, b);
        bank.write(a, 0x1234);
        assert_eq!(bank.read(a), 0x1234);
        bank.write(b, 3);
        assert_eq!(bank.read(b), 1, "masked to width");
        assert_eq!(bank.write_count(b), 1);
        assert_eq!(bank.len(), 2);
    }

    #[test]
    fn redeclare_same_width_is_idempotent() {
        let mut bank = WireBank::new();
        let a = bank.add("X", 8, 5);
        let b = bank.add("X", 8, 9);
        assert_eq!(a, b);
        assert_eq!(bank.read(a), 5, "original init kept");
    }

    #[test]
    #[should_panic(expected = "different width")]
    fn redeclare_other_width_panics() {
        let mut bank = WireBank::new();
        bank.add("X", 8, 0);
        bank.add("X", 16, 0);
    }

    #[test]
    fn named_access() {
        let mut bank = WireBank::new();
        bank.add("Y", 4, 2);
        assert_eq!(bank.read_named("Y"), Some(2));
        assert!(bank.write_named("Y", 7));
        assert_eq!(bank.read_named("Y"), Some(7));
        assert!(!bank.write_named("Z", 1));
        assert_eq!(bank.read_named("Z"), None);
    }

    #[test]
    fn iteration() {
        let mut bank = WireBank::new();
        bank.add("A", 1, 1);
        bank.add("B", 1, 0);
        let pairs: Vec<_> = bank.iter().collect();
        assert_eq!(pairs, vec![("A", 1), ("B", 0)]);
        assert!(!bank.is_empty());
    }
}
