//! The FPGA fabric: synthesized netlists clocked against the wire bank.
//!
//! Each fabric tick is one FPGA clock cycle: every netlist samples the
//! bank, evaluates, and drives back the wires whose write-enable outputs
//! are asserted. All netlists see the same pre-tick bank state and writes
//! are applied together afterwards — the same two-phase discipline as the
//! co-simulation kernel, so execution order cannot change results.

use crate::wire_bank::{SlotId, WireBank};
use cosma_synth::{Netlist, NetlistSim};
use std::fmt;

struct Instance {
    name: String,
    sim: NetlistSim,
    /// Bank slot per netlist input (by input index); `None` = unconnected
    /// (reads 0).
    input_slots: Vec<Option<SlotId>>,
    /// `(out node name base, value node, we node, slot)` per driven wire.
    drives: Vec<(String, cosma_synth::NodeId, cosma_synth::NodeId, SlotId)>,
}

/// The fabric hosting synthesized hardware.
#[derive(Default)]
pub struct Fabric {
    instances: Vec<Instance>,
    ticks: u64,
    /// Write conflicts observed (two instances driving one wire in the
    /// same tick).
    pub conflicts: u64,
}

impl fmt::Debug for Fabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fabric")
            .field("instances", &self.instances.len())
            .field("ticks", &self.ticks)
            .finish_non_exhaustive()
    }
}

impl Fabric {
    /// Creates an empty fabric.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Places a synthesized netlist into the fabric, connecting its
    /// inputs and `__out`/`__we` output pairs to like-named bank slots.
    /// Missing slots are created with the input/port widths.
    pub fn place(&mut self, netlist: &Netlist, bank: &mut WireBank) {
        let sim = netlist.simulator();
        let input_slots: Vec<Option<SlotId>> = netlist
            .inputs()
            .iter()
            .map(|(name, width)| Some(bank.add(name, *width, 0)))
            .collect();
        let mut drives = vec![];
        for (oname, node) in netlist.outputs() {
            if let Some(base) = oname.strip_suffix("__out") {
                let we_name = format!("{base}__we");
                if let Some(we_node) = netlist.output(&we_name) {
                    let width = netlist.width(*node);
                    let slot = bank.add(base, width, 0);
                    drives.push((base.to_string(), *node, we_node, slot));
                }
            }
        }
        self.instances.push(Instance {
            name: netlist.name().to_string(),
            sim,
            input_slots,
            drives,
        });
    }

    /// One FPGA clock cycle.
    pub fn tick(&mut self, bank: &mut WireBank) {
        let mut pending: Vec<(SlotId, u64)> = vec![];
        for inst in &mut self.instances {
            let inputs: Vec<u64> = inst
                .input_slots
                .iter()
                .map(|s| s.map(|id| bank.read(id)).unwrap_or(0))
                .collect();
            inst.sim.step(&inputs);
            for (_, value_node, we_node, slot) in &inst.drives {
                if inst.sim.node_value(*we_node) & 1 == 1 {
                    pending.push((*slot, inst.sim.node_value(*value_node)));
                }
            }
        }
        // Two-phase commit; detect multi-driver conflicts.
        pending.sort_by_key(|(s, _)| s.0);
        for w in pending.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 != w[1].1 {
                self.conflicts += 1;
            }
        }
        for (slot, v) in pending {
            bank.write(slot, v);
        }
        self.ticks += 1;
    }

    /// Number of placed netlists.
    #[must_use]
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Total fabric clock cycles.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Aggregate technology report over all placed instances.
    #[must_use]
    pub fn tech_report(&self) -> cosma_synth::TechReport {
        let mut luts = 0;
        let mut ffs = 0;
        let mut clbs = 0;
        let mut depth = 0;
        let mut crit: f64 = 0.0;
        for inst in &self.instances {
            let r = inst.sim.netlist().tech_report();
            luts += r.luts;
            ffs += r.ffs;
            clbs += r.clbs;
            depth = depth.max(r.depth);
            crit = crit.max(r.crit_ns);
        }
        cosma_synth::TechReport {
            luts,
            ffs,
            clbs,
            depth,
            crit_ns: crit,
            fmax_mhz: if crit > 0.0 { 1000.0 / crit } else { 500.0 },
        }
    }

    /// Names of placed instances.
    pub fn instance_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.instances.iter().map(|i| i.name.as_str())
    }

    /// Register value inside a placed instance (debug/observability).
    #[must_use]
    pub fn reg_value(&self, instance: &str, reg: &str) -> Option<u64> {
        let inst = self.instances.iter().find(|i| i.name == instance)?;
        let r = inst.sim.netlist().find_reg(reg)?;
        Some(inst.sim.reg_value(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma_synth::{Netlist, Op};

    /// A netlist that increments the bank wire `N` every cycle.
    fn incrementer() -> Netlist {
        let mut n = Netlist::new("inc");
        let (_, cur) = n.input("N", 16);
        let one = n.constant(1, 16);
        let next = n.bin(Op::Add, cur, one);
        let we = n.constant(1, 1);
        n.mark_output("N__out", next);
        n.mark_output("N__we", we);
        n
    }

    #[test]
    fn placed_netlist_drives_bank() {
        let mut bank = WireBank::new();
        let mut fabric = Fabric::new();
        fabric.place(&incrementer(), &mut bank);
        assert_eq!(fabric.instance_count(), 1);
        for _ in 0..5 {
            fabric.tick(&mut bank);
        }
        assert_eq!(bank.read_named("N"), Some(5));
        assert_eq!(fabric.ticks(), 5);
    }

    #[test]
    fn conditional_write_enable_respected() {
        // Drives only when EN is set.
        let mut n = Netlist::new("cond");
        let (_, en) = n.input("EN", 1);
        let (_, x) = n.input("X", 8);
        let one = n.constant(1, 8);
        let next = n.bin(Op::Add, x, one);
        n.mark_output("X__out", next);
        n.mark_output("X__we", en);

        let mut bank = WireBank::new();
        let mut fabric = Fabric::new();
        fabric.place(&n, &mut bank);
        fabric.tick(&mut bank);
        assert_eq!(bank.read_named("X"), Some(0), "EN low: no write");
        bank.write_named("EN", 1);
        fabric.tick(&mut bank);
        assert_eq!(bank.read_named("X"), Some(1));
    }

    #[test]
    fn instances_share_wires_two_phase() {
        // Two incrementers of the same wire in one tick: both read the
        // same pre-tick value, so the result is +1 (and a conflict is
        // *not* flagged because both drive the same value).
        let mut bank = WireBank::new();
        let mut fabric = Fabric::new();
        fabric.place(&incrementer(), &mut bank);
        fabric.place(&incrementer(), &mut bank);
        fabric.tick(&mut bank);
        assert_eq!(bank.read_named("N"), Some(1));
        assert_eq!(fabric.conflicts, 0);
    }

    #[test]
    fn conflicting_drivers_counted() {
        let mut a = Netlist::new("a");
        let c5 = a.constant(5, 8);
        let we = a.constant(1, 1);
        a.mark_output("W__out", c5);
        a.mark_output("W__we", we);
        let mut b = Netlist::new("b");
        let c9 = b.constant(9, 8);
        let we = b.constant(1, 1);
        b.mark_output("W__out", c9);
        b.mark_output("W__we", we);
        let mut bank = WireBank::new();
        let mut fabric = Fabric::new();
        fabric.place(&a, &mut bank);
        fabric.place(&b, &mut bank);
        fabric.tick(&mut bank);
        assert_eq!(fabric.conflicts, 1);
    }

    #[test]
    fn aggregate_tech_report() {
        let mut bank = WireBank::new();
        let mut fabric = Fabric::new();
        fabric.place(&incrementer(), &mut bank);
        fabric.place(&incrementer(), &mut bank);
        let single = incrementer().tech_report();
        let agg = fabric.tech_report();
        assert_eq!(agg.luts, 2 * single.luts);
        assert!(fabric.instance_names().count() == 2);
    }

    #[test]
    fn reg_observability() {
        let mut n = Netlist::new("regs");
        let r = n.reg("STATE", 4, 3);
        let cur = n.read_reg(r);
        n.set_reg_next(r, cur);
        let mut bank = WireBank::new();
        let mut fabric = Fabric::new();
        fabric.place(&n, &mut bank);
        fabric.tick(&mut bank);
        assert_eq!(fabric.reg_value("regs", "STATE"), Some(3));
        assert_eq!(fabric.reg_value("regs", "NOPE"), None);
        assert_eq!(fabric.reg_value("nope", "STATE"), None);
    }
}
