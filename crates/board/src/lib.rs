//! # cosma-board — target platform models
//!
//! Executable models of the architectures the paper maps systems onto:
//!
//! * [`Board`] — the Figure 8 prototype: MC16 CPU(s) running synthesized
//!   programs, a 10 MHz extension bus with wait states, an FPGA
//!   [`Fabric`] executing synthesized netlists over a shared
//!   [`WireBank`], and pluggable [`Peripheral`]s (the motor). Supports
//!   multiple CPUs for the multiprocessor target.
//! * [`IpcPlatform`] — the software-only target where communication
//!   procedures expand to OS IPC: modules run in-process over native
//!   units.
//!
//! Both platforms produce [`cosma_cosim::TraceLog`]s, so a co-synthesis
//! run is directly comparable with the co-simulation of the same
//! description — the paper's coherence property, measured.

#![warn(missing_docs)]

mod board;
mod fabric;
mod ipc;
mod wire_bank;

pub use board::{Board, BoardConfig, BoardError, BusStats, CpuId, Peripheral};
pub use fabric::Fabric;
pub use ipc::{IpcError, IpcModuleId, IpcPlatform, IpcUnitId};
pub use wire_bank::{SlotId, WireBank};
