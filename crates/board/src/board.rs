//! The PC-AT + FPGA prototype board (the paper's Figure 8), generalized
//! to any number of processors for the multiprocessor target.
//!
//! Timing model: each CPU runs at `cpu_hz` and pays `bus_wait_cycles`
//! extra cycles per `IN`/`OUT` transaction (the 10 MHz 16-bit extension
//! bus); the FPGA fabric ticks at `fpga_hz`. Board time advances by an
//! event loop over those clocks, so "meets the real-time constraints" is
//! a measurable property of a run.

use crate::fabric::Fabric;
use crate::wire_bank::{SlotId, WireBank};
use cosma_core::Value;
use cosma_cosim::TraceLog;
use cosma_isa::{Cpu, CpuError, PortBus};
use cosma_synth::{SwProgram, TRACE_PORT_BASE, TRACE_SLOTS};
use std::collections::HashMap;
use std::fmt;

/// Femtoseconds per second.
const FS_PER_SEC: u64 = 1_000_000_000_000_000;

/// Board clocking and bus parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoardConfig {
    /// CPU clock (default 16 MHz, a period-correct 386SX).
    pub cpu_hz: u64,
    /// Extension-bus clock (default 10 MHz, as in the paper).
    pub bus_hz: u64,
    /// Extra CPU cycles consumed by each bus transaction (wait states).
    pub bus_wait_cycles: u32,
    /// FPGA fabric clock (default 10 MHz).
    pub fpga_hz: u64,
}

impl Default for BoardConfig {
    fn default() -> Self {
        BoardConfig {
            cpu_hz: 16_000_000,
            bus_hz: 10_000_000,
            bus_wait_cycles: 2,
            fpga_hz: 10_000_000,
        }
    }
}

/// A device sampled/driven once per FPGA tick (the motor model plugs in
/// here).
pub trait Peripheral {
    /// One fabric-clock tick.
    fn tick(&mut self, bank: &mut WireBank, trace: &mut TraceLog, now_fs: u64);
}

/// Identifies a CPU on the board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuId(usize);

/// Per-CPU bus statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Bus read transactions.
    pub reads: u64,
    /// Bus write transactions.
    pub writes: u64,
    /// Accesses to unmapped addresses.
    pub unmapped: u64,
}

struct CpuSlot {
    name: String,
    cpu: Cpu,
    io_slots: HashMap<u16, SlotId>,
    trace_labels: Vec<(String, usize)>,
    pending_trace: Vec<Vec<u64>>,
    time_fs: u64,
    period_fs: u64,
    stats: BusStats,
    var_addrs: HashMap<String, u16>,
}

/// Board-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoardError {
    /// A CPU faulted.
    Cpu {
        /// CPU name.
        cpu: String,
        /// Fault.
        source: CpuError,
    },
    /// Assembly error (unknown wires, duplicate CPUs...).
    Setup(String),
}

impl fmt::Display for BoardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoardError::Cpu { cpu, source } => write!(f, "cpu {cpu}: {source}"),
            BoardError::Setup(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for BoardError {}

/// Bridges one CPU's port space onto the wire bank and the trace window.
struct BusAdapter<'a> {
    bank: &'a mut WireBank,
    io_slots: &'a HashMap<u16, SlotId>,
    trace_labels: &'a [(String, usize)],
    pending_trace: &'a mut Vec<Vec<u64>>,
    trace: &'a mut TraceLog,
    stats: &'a mut BusStats,
    wait: u32,
    now_fs: u64,
    source: &'a str,
}

impl PortBus for BusAdapter<'_> {
    fn port_in(&mut self, port: u16) -> (u16, u32) {
        self.stats.reads += 1;
        match self.io_slots.get(&port) {
            Some(&slot) => (self.bank.read(slot) as u16, self.wait),
            None => {
                self.stats.unmapped += 1;
                (0, self.wait)
            }
        }
    }

    fn port_out(&mut self, port: u16, value: u16) -> u32 {
        self.stats.writes += 1;
        if port >= TRACE_PORT_BASE {
            let off = port - TRACE_PORT_BASE;
            let label_idx = (off / TRACE_SLOTS) as usize;
            let slot = (off % TRACE_SLOTS) as usize;
            if let (Some((label, arity)), Some(pend)) = (
                self.trace_labels.get(label_idx),
                self.pending_trace.get_mut(label_idx),
            ) {
                if slot < pend.len() {
                    pend[slot] = u64::from(value);
                }
                if slot + 1 == *arity {
                    let values: Vec<Value> = pend
                        .iter()
                        .take(*arity)
                        .map(|&w| Value::Int((w as u16) as i16 as i64))
                        .collect();
                    self.trace
                        .record(self.now_fs, self.source, label.clone(), values);
                }
            }
            return 0; // trace ports live off-bus (debug port, no wait)
        }
        match self.io_slots.get(&port) {
            Some(&slot) => {
                self.bank.write(slot, u64::from(value));
                self.wait
            }
            None => {
                self.stats.unmapped += 1;
                self.wait
            }
        }
    }
}

/// The prototype board: CPUs + bus + FPGA fabric + peripherals.
///
/// See the crate docs for a complete assembled example.
pub struct Board {
    config: BoardConfig,
    bank: WireBank,
    fabric: Fabric,
    cpus: Vec<CpuSlot>,
    peripherals: Vec<Box<dyn Peripheral>>,
    trace: TraceLog,
    fabric_time_fs: u64,
    fpga_period_fs: u64,
    now_fs: u64,
}

impl fmt::Debug for Board {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Board")
            .field("cpus", &self.cpus.len())
            .field("now_fs", &self.now_fs)
            .finish_non_exhaustive()
    }
}

impl Board {
    /// Creates an empty board.
    #[must_use]
    pub fn new(config: BoardConfig) -> Self {
        Board {
            config,
            bank: WireBank::new(),
            fabric: Fabric::new(),
            cpus: vec![],
            peripherals: vec![],
            trace: TraceLog::new(),
            fabric_time_fs: 0,
            fpga_period_fs: FS_PER_SEC / config.fpga_hz,
            now_fs: 0,
        }
    }

    /// The wire bank (peripheral-style pokes, assertions).
    #[must_use]
    pub fn bank(&self) -> &WireBank {
        &self.bank
    }

    /// Mutable wire bank access.
    pub fn bank_mut(&mut self) -> &mut WireBank {
        &mut self.bank
    }

    /// The FPGA fabric.
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Places a synthesized netlist into the fabric.
    pub fn place_netlist(&mut self, netlist: &cosma_synth::Netlist) {
        self.fabric.place(netlist, &mut self.bank);
    }

    /// Attaches a peripheral.
    pub fn attach(&mut self, p: Box<dyn Peripheral>) {
        self.peripherals.push(p);
    }

    /// Installs a compiled program on a new CPU. Bank slots for all its
    /// mapped ports are created (widths from the program's port table).
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::Setup`] for a duplicate CPU name, a wire
    /// redeclared with a different width, or two ports mapped to the same
    /// bus address.
    pub fn add_cpu(&mut self, name: &str, program: &SwProgram) -> Result<CpuId, BoardError> {
        if self.cpus.iter().any(|c| c.name == name) {
            return Err(BoardError::Setup(format!("duplicate CPU name {name}")));
        }
        let widths: HashMap<&str, u32> = program
            .port_widths
            .iter()
            .map(|(n, w)| (n.as_str(), *w))
            .collect();
        // Validate everything before touching the bank, so a rejected
        // program leaves the board exactly as it was.
        let mut seen_addrs = std::collections::HashSet::new();
        for (pname, addr) in program.io.entries() {
            let width = widths.get(pname.as_str()).copied().unwrap_or(16);
            if let Some(existing) = self.bank.index(pname) {
                if self.bank.width(existing) != width {
                    return Err(BoardError::Setup(format!(
                        "cpu {name}: wire {pname} already declared {} bits wide, program wants {width}",
                        self.bank.width(existing)
                    )));
                }
            }
            if !seen_addrs.insert(*addr) {
                return Err(BoardError::Setup(format!(
                    "cpu {name}: two ports mapped at bus address {addr:#06x}"
                )));
            }
        }
        let mut io_slots = HashMap::new();
        for (pname, addr) in program.io.entries() {
            let width = widths.get(pname.as_str()).copied().unwrap_or(16);
            io_slots.insert(*addr, self.bank.add(pname, width, 0));
        }
        let mut cpu = Cpu::new();
        cpu.load_image(&program.image);
        let pending_trace = program
            .trace_labels
            .iter()
            .map(|(_, arity)| vec![0u64; *arity])
            .collect();
        let id = CpuId(self.cpus.len());
        self.cpus.push(CpuSlot {
            name: name.to_string(),
            cpu,
            io_slots,
            trace_labels: program.trace_labels.clone(),
            pending_trace,
            time_fs: 0,
            period_fs: FS_PER_SEC / self.config.cpu_hz,
            stats: BusStats::default(),
            var_addrs: program.var_addrs.clone(),
        });
        Ok(id)
    }

    /// Installs a whole-system synthesis result: one CPU per compiled
    /// program (named after its module) and every netlist in the fabric.
    /// Returns the CPU ids in program order.
    ///
    /// # Errors
    ///
    /// Propagates [`Board::add_cpu`] setup errors. Programs installed
    /// before the failing one remain installed (each individual
    /// `add_cpu` is atomic); no netlists are placed on error.
    pub fn install_synthesis(
        &mut self,
        synth: &cosma_synth::SystemSynthesis,
    ) -> Result<Vec<CpuId>, BoardError> {
        let ids = synth
            .programs
            .iter()
            .map(|(name, program)| self.add_cpu(name, program))
            .collect::<Result<_, _>>()?;
        for nl in &synth.netlists {
            self.place_netlist(nl);
        }
        Ok(ids)
    }

    /// Runs the board for a span of femtoseconds.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::Cpu`] if a CPU faults.
    pub fn run_for_fs(&mut self, d_fs: u64) -> Result<(), BoardError> {
        let deadline = self.now_fs + d_fs;
        loop {
            // Earliest pending event: a CPU instruction boundary or a
            // fabric tick. Ties go to the fabric (hardware edges first).
            let next_cpu = self
                .cpus
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.cpu.is_halted())
                .min_by_key(|(_, c)| c.time_fs)
                .map(|(i, c)| (i, c.time_fs));
            let fab_t = self.fabric_time_fs;
            let cpu_event = match next_cpu {
                Some((i, ct)) if ct < fab_t => Some((i, ct)),
                _ => None,
            };
            let t = cpu_event.map_or(fab_t, |(_, ct)| ct);
            if t >= deadline {
                break;
            }
            if let Some((i, _)) = cpu_event {
                let Board {
                    bank,
                    cpus,
                    trace,
                    config,
                    ..
                } = self;
                let slot = &mut cpus[i];
                let mut bus = BusAdapter {
                    bank,
                    io_slots: &slot.io_slots,
                    trace_labels: &slot.trace_labels,
                    pending_trace: &mut slot.pending_trace,
                    trace,
                    stats: &mut slot.stats,
                    wait: config.bus_wait_cycles,
                    now_fs: slot.time_fs,
                    source: &slot.name,
                };
                let info = slot.cpu.step(&mut bus).map_err(|source| BoardError::Cpu {
                    cpu: slot.name.clone(),
                    source,
                })?;
                slot.time_fs += u64::from(info.cycles) * slot.period_fs;
            } else {
                self.fabric.tick(&mut self.bank);
                for p in &mut self.peripherals {
                    p.tick(&mut self.bank, &mut self.trace, self.fabric_time_fs);
                }
                self.fabric_time_fs += self.fpga_period_fs;
            }
        }
        self.now_fs = deadline;
        Ok(())
    }

    /// Runs for a span of nanoseconds.
    ///
    /// # Errors
    ///
    /// Same as [`Board::run_for_fs`].
    pub fn run_for_ns(&mut self, ns: u64) -> Result<(), BoardError> {
        self.run_for_fs(ns * 1_000_000)
    }

    /// Whether anything on the board can still change state: a CPU that
    /// has not halted, or clocked hardware (netlists / peripherals) in
    /// the fabric. The board-side counterpart of the kernel's
    /// `pending_activity`, used by run-to-completion loops to stop
    /// polling a dead system.
    #[must_use]
    pub fn pending_activity(&self) -> bool {
        self.cpus.iter().any(|c| !c.cpu.is_halted())
            || self.fabric.instance_count() > 0
            || !self.peripherals.is_empty()
    }

    /// Current board time in femtoseconds.
    #[must_use]
    pub fn now_fs(&self) -> u64 {
        self.now_fs
    }

    /// A CPU's memory word (for assertions on synthesized variables).
    #[must_use]
    pub fn cpu_mem(&self, id: CpuId, addr: u16) -> u16 {
        self.cpus[id.0].cpu.mem(addr)
    }

    /// A synthesized variable's current value on a CPU, by name.
    #[must_use]
    pub fn cpu_var(&self, id: CpuId, var: &str) -> Option<i64> {
        let slot = &self.cpus[id.0];
        let addr = slot.var_addrs.get(var)?;
        Some(i64::from(slot.cpu.mem(*addr) as i16))
    }

    /// Total cycles a CPU has executed.
    #[must_use]
    pub fn cpu_cycles(&self, id: CpuId) -> u64 {
        self.cpus[id.0].cpu.cycles()
    }

    /// Bus statistics for a CPU.
    #[must_use]
    pub fn bus_stats(&self, id: CpuId) -> BusStats {
        self.cpus[id.0].stats
    }

    /// Snapshot of the trace log (CPU trace ports + peripheral events).
    #[must_use]
    pub fn trace_log(&self) -> TraceLog {
        self.trace.clone()
    }

    /// Number of fabric ticks executed.
    #[must_use]
    pub fn fabric_ticks(&self) -> u64 {
        self.fabric.ticks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma_core::{Expr, ModuleBuilder, ModuleKind, PortDir, Stmt, Type};
    use cosma_synth::{compile_sw, IoMap, Netlist, Op};

    /// SW module that writes 5 then 6 to port W, tracing each write.
    fn writer_module() -> cosma_core::Module {
        let mut b = ModuleBuilder::new("writer", ModuleKind::Software);
        let w = b.port("W", PortDir::Out, Type::INT16);
        let s1 = b.state("S1");
        let s2 = b.state("S2");
        let end = b.state("END");
        b.actions(
            s1,
            vec![
                Stmt::drive(w, Expr::int(5)),
                Stmt::Trace("w".into(), vec![Expr::int(5)]),
            ],
        );
        b.transition(s1, None, s2);
        b.actions(
            s2,
            vec![
                Stmt::drive(w, Expr::int(6)),
                Stmt::Trace("w".into(), vec![Expr::int(6)]),
            ],
        );
        b.transition(s2, None, end);
        b.transition(end, None, end);
        b.initial(s1);
        b.build().unwrap()
    }

    #[test]
    fn cpu_writes_reach_bank_and_trace() {
        let m = writer_module();
        let io = IoMap::for_module(0x300, &m);
        let prog = compile_sw(&m, &io).unwrap();
        let mut board = Board::new(BoardConfig::default());
        let cpu = board.add_cpu("writer", &prog).unwrap();
        board.run_for_ns(100_000).unwrap();
        assert_eq!(board.bank().read_named("W"), Some(6));
        let log = board.trace_log();
        let ws: Vec<i64> = log
            .with_label("w")
            .map(|e| e.values[0].as_int().unwrap())
            .collect();
        assert_eq!(ws, vec![5, 6]);
        let stats = board.bus_stats(cpu);
        assert!(stats.writes >= 2);
        assert_eq!(stats.unmapped, 0);
    }

    #[test]
    fn fabric_and_cpu_share_wires() {
        // CPU busy-waits on wire READY (driven by a fabric counter netlist
        // when its count reaches 8), then writes DONE_FLAG=1.
        let mut b = ModuleBuilder::new("waiter", ModuleKind::Software);
        let ready = b.port("READY", PortDir::In, Type::Bit);
        let done = b.port("DONE_FLAG", PortDir::Out, Type::INT16);
        let wait = b.state("WAIT");
        let fin = b.state("FIN");
        b.transition(
            wait,
            Some(Expr::port(ready).eq(Expr::bit(cosma_core::Bit::One))),
            fin,
        );
        b.actions(fin, vec![Stmt::drive(done, Expr::int(1))]);
        b.transition(fin, None, fin);
        b.initial(wait);
        let m = b.build().unwrap();
        let io = IoMap::for_module(0x300, &m);
        let prog = compile_sw(&m, &io).unwrap();

        // Fabric: counter asserting READY after 8 ticks.
        let mut nl = Netlist::new("ticker");
        let r = nl.reg("T", 8, 0);
        let cur = nl.read_reg(r);
        let one = nl.constant(1, 8);
        let next = nl.bin(Op::Add, cur, one);
        nl.set_reg_next(r, next);
        let eight = nl.constant(8, 8);
        let ge = nl.bin(Op::Le, eight, cur);
        let we = nl.constant(1, 1);
        nl.mark_output("READY__out", ge);
        nl.mark_output("READY__we", we);

        let mut board = Board::new(BoardConfig::default());
        let cpu = board.add_cpu("waiter", &prog).unwrap();
        board.place_netlist(&nl);
        board.run_for_ns(50_000).unwrap(); // 50 us: hundreds of fabric ticks
        assert_eq!(board.bank().read_named("DONE_FLAG"), Some(1));
        assert!(board.fabric_ticks() >= 9);
        assert!(board.cpu_cycles(cpu) > 0);
    }

    #[test]
    fn bus_wait_states_slow_io() {
        let m = writer_module();
        let io = IoMap::for_module(0x300, &m);
        let prog = compile_sw(&m, &io).unwrap();
        let mut fast = Board::new(BoardConfig {
            bus_wait_cycles: 0,
            ..BoardConfig::default()
        });
        let fcpu = fast.add_cpu("w", &prog).unwrap();
        fast.run_for_ns(20_000).unwrap();
        let mut slow = Board::new(BoardConfig {
            bus_wait_cycles: 20,
            ..BoardConfig::default()
        });
        let scpu = slow.add_cpu("w", &prog).unwrap();
        slow.run_for_ns(20_000).unwrap();
        // Same wall-clock budget, more cycles burnt on waits -> fewer
        // instructions retired; both still finish this tiny program, so
        // compare cycle counters at equal retired work instead.
        assert!(fast.cpu_cycles(fcpu) <= slow.cpu_cycles(scpu) + 1);
        let _ = scpu;
    }

    #[test]
    fn peripheral_ticks_with_fabric() {
        struct Blinker {
            count: u64,
        }
        impl Peripheral for Blinker {
            fn tick(&mut self, bank: &mut WireBank, trace: &mut TraceLog, now_fs: u64) {
                self.count += 1;
                if self.count == 5 {
                    bank.write_named("BLINK", 1);
                    trace.record(now_fs, "blinker", "on", vec![Value::Int(1)]);
                }
            }
        }
        let mut board = Board::new(BoardConfig::default());
        board.bank_mut().add("BLINK", 1, 0);
        board.attach(Box::new(Blinker { count: 0 }));
        board.run_for_ns(1_000).unwrap(); // 10 fabric ticks at 10 MHz
        assert_eq!(board.bank().read_named("BLINK"), Some(1));
        assert_eq!(board.trace_log().with_label("on").count(), 1);
    }

    #[test]
    fn duplicate_cpu_name_is_setup_error() {
        let m = writer_module();
        let io = IoMap::for_module(0x300, &m);
        let prog = compile_sw(&m, &io).unwrap();
        let mut board = Board::new(BoardConfig::default());
        board.add_cpu("w", &prog).unwrap();
        let err = board.add_cpu("w", &prog).unwrap_err();
        assert!(matches!(err, BoardError::Setup(_)));
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn cpu_fault_surfaces() {
        // A program with a division by zero.
        let mut b = ModuleBuilder::new("crash", ModuleKind::Software);
        let v = b.var("V", Type::INT16, Value::Int(1));
        let s = b.state("S");
        b.actions(s, vec![Stmt::assign(v, Expr::var(v).div(Expr::int(0)))]);
        b.transition(s, None, s);
        b.initial(s);
        let m = b.build().unwrap();
        let prog = compile_sw(&m, &IoMap::new(0x300)).unwrap();
        let mut board = Board::new(BoardConfig::default());
        board.add_cpu("crash", &prog).unwrap();
        let err = board.run_for_ns(10_000).unwrap_err();
        assert!(matches!(err, BoardError::Cpu { .. }));
        assert!(err.to_string().contains("division"));
    }

    #[test]
    fn cpu_var_observability() {
        let mut b = ModuleBuilder::new("vars", ModuleKind::Software);
        let v = b.var("SCORE", Type::INT16, Value::Int(0));
        let s = b.state("S");
        let e = b.state("E");
        b.actions(s, vec![Stmt::assign(v, Expr::int(-7))]);
        b.transition(s, None, e);
        b.transition(e, None, e);
        b.initial(s);
        let m = b.build().unwrap();
        let prog = compile_sw(&m, &IoMap::new(0x300)).unwrap();
        let mut board = Board::new(BoardConfig::default());
        let cpu = board.add_cpu("vars", &prog).unwrap();
        board.run_for_ns(50_000).unwrap();
        assert_eq!(board.cpu_var(cpu, "SCORE"), Some(-7));
        assert_eq!(board.cpu_var(cpu, "NOPE"), None);
    }

    #[test]
    fn two_cpus_interleave() {
        // Two CPUs each bump their own wire; both must make progress.
        fn bumper(name: &str, port_name: &str) -> (cosma_core::Module, IoMap) {
            let mut b = ModuleBuilder::new(name, ModuleKind::Software);
            let p = b.port(port_name, PortDir::Out, Type::INT16);
            let v = b.var("N", Type::INT16, Value::Int(0));
            let s = b.state("S");
            b.actions(
                s,
                vec![
                    Stmt::assign(v, Expr::var(v).add(Expr::int(1))),
                    Stmt::drive(p, Expr::var(v)),
                ],
            );
            b.transition(s, None, s);
            b.initial(s);
            let m = b.build().unwrap();
            let io = IoMap::for_module(0x300, &m);
            (m, io)
        }
        let (m1, io1) = bumper("a", "WIRE_A");
        let (m2, io2) = bumper("b", "WIRE_B");
        let p1 = compile_sw(&m1, &io1).unwrap();
        let p2 = compile_sw(&m2, &io2).unwrap();
        let mut board = Board::new(BoardConfig::default());
        board.add_cpu("a", &p1).unwrap();
        board.add_cpu("b", &p2).unwrap();
        board.run_for_ns(100_000).unwrap();
        let a = board.bank().read_named("WIRE_A").unwrap();
        let b2 = board.bank().read_named("WIRE_B").unwrap();
        assert!(a > 3 && b2 > 3, "both progressed: {a} {b2}");
    }
}
