//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, so `cargo bench` works in offline build environments.
//!
//! It implements exactly the slice of the criterion API this workspace
//! uses: `Criterion::default().sample_size(..)`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a plain
//! wall-clock mean over `sample_size` samples with a warm-up pass —
//! good enough for before/after comparisons, not for statistics.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. Ignored by the shim (every
/// batch has one iteration) but kept for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `"{name}/{param}"`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{param}", name.into()),
        }
    }

    /// Creates an id from a bare parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up.
        std_black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std_black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = self.samples as u64;
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std_black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = self.samples as u64;
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(full_id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.total / u32::try_from(b.iters).unwrap_or(u32::MAX)
    };
    println!(
        "bench {full_id:<48} {:>12}/iter  ({} samples)",
        human(mean),
        b.iters
    );
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into().id, self.sample_size, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.parent.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.parent.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (cosmetic in the shim).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
